//! Quickstart: run a small MapReduce workload on HOG and on the dedicated
//! cluster, and print what happened.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hog_repro::prelude::*;
use hog_workload::facebook::Bin;

fn main() {
    // A small synthetic workload: 6 jobs of 10 maps / 3 reduces each,
    // submitted with exponential inter-arrivals (mean 14 s).
    let bin = Bin {
        number: 3,
        maps_at_facebook: (10, 10),
        fraction_at_facebook: 1.0,
        maps: 10,
        jobs_in_benchmark: 6,
        reduces: 3,
    };
    let schedule = SubmissionSchedule::from_bins(&[bin], 7);
    let horizon = SimDuration::from_secs(12 * 3600);

    println!("== HOG with a 30-glidein pool on five OSG sites ==");
    let hog = run_workload(ClusterConfig::hog(30, 1), &schedule, horizon);
    report(&hog);

    println!("\n== Dedicated 30-node / 100-core cluster (Table III) ==");
    let cluster = run_workload(ClusterConfig::dedicated(1), &schedule, horizon);
    report(&cluster);
}

fn report(r: &RunResult) {
    println!(
        "workload response: {:.0}s  ({} of {} jobs succeeded)",
        r.response_time.map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
        r.jobs_succeeded(),
        r.jobs.len()
    );
    println!(
        "map locality: {} node-local, {} site-local, {} remote",
        r.jt.node_local, r.jt.site_local, r.jt.remote
    );
    for j in &r.jobs {
        println!(
            "  job {:>2} (bin {}): {:>4} maps, {:>2} reduces -> {}",
            j.index,
            j.bin,
            j.maps,
            j.reduces,
            match j.response() {
                Some(d) => format!("{:.0}s response", d.as_secs_f64()),
                None => "did not finish".to_string(),
            }
        );
    }
    if let Some((preempted, outages, starts)) = r.grid {
        println!("grid: {starts} node starts, {preempted} preemptions, {outages} site outages");
    }
}
