//! Replay the paper's Facebook workload (Tables I & II: 88 jobs from the
//! first six bins, exponential inter-arrival with mean 14 s) on HOG at a
//! chosen pool size, and print a per-bin response-time breakdown.
//!
//! ```sh
//! cargo run --release --example facebook_workload -- [nodes] [seed]
//! ```

use hog_repro::prelude::*;
use std::collections::BTreeMap;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes: usize = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(100);
    let seed: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(1);

    let schedule = SubmissionSchedule::facebook_truncated(1000 + seed);
    println!(
        "Facebook workload: {} jobs / {} maps / {} reduces, submission span {:.0}s",
        schedule.len(),
        schedule.total_maps(),
        schedule.total_reduces(),
        schedule.last_submission().as_secs_f64()
    );

    let r = run_workload(
        ClusterConfig::hog(nodes, seed),
        &schedule,
        SimDuration::from_secs(60 * 3600),
    );
    println!(
        "\nHOG-{nodes}: workload response {:.0}s, {}/{} jobs succeeded",
        r.response_time.map(|d| d.as_secs_f64()).unwrap_or(f64::NAN),
        r.jobs_succeeded(),
        r.jobs.len()
    );

    // Per-bin breakdown: small jobs should see near-interactive response
    // while the big bins dominate the makespan.
    let mut per_bin: BTreeMap<u8, Vec<f64>> = BTreeMap::new();
    for j in &r.jobs {
        if let Some(d) = j.response() {
            per_bin.entry(j.bin).or_default().push(d.as_secs_f64());
        }
    }
    println!("\nbin  jobs  mean response  min     max");
    for (bin, times) in per_bin {
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(0.0_f64, f64::max);
        println!(
            "{bin:>3}  {:>4}  {mean:>10.0}s   {min:>6.0}s {max:>6.0}s",
            times.len()
        );
    }

    println!(
        "\nmap locality: {:.1}% node-local ({} node / {} site / {} remote)",
        100.0 * r.jt.node_local as f64
            / (r.jt.node_local + r.jt.site_local + r.jt.remote).max(1) as f64,
        r.jt.node_local,
        r.jt.site_local,
        r.jt.remote
    );
}
