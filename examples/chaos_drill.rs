//! Chaos drill: run the paper workload while hog-chaos injects a scripted
//! incident — a whole site drops off the network five minutes into the
//! workload, a zombie outbreak hits at ten, and the WAN sags to a third
//! of its bandwidth in between — with the invariant auditor checking the
//! namenode/JobTracker/network books on every master tick and the
//! livelock watchdog armed. The pool heals, the workload completes, and
//! no invariant breaks.
//!
//! ```sh
//! cargo run --release --example chaos_drill
//! # with a full structured trace exported as JSONL:
//! HOG_TRACE_JSONL=drill.jsonl cargo run --release --example chaos_drill
//! ```

use hog_repro::obs::to_jsonl;
use hog_repro::prelude::*;

fn main() {
    let plan = FaultPlan::new()
        .at(
            SimDuration::from_mins(5),
            Fault::SitePartition {
                site: "UCSDT2".into(),
                duration: SimDuration::from_mins(10),
            },
        )
        .at(
            SimDuration::from_mins(7),
            Fault::WanDegrade {
                factor: 0.33,
                duration: SimDuration::from_mins(8),
            },
        )
        .at(
            SimDuration::from_mins(10),
            Fault::ZombieOutbreak { count: 3 },
        );
    println!("fault plan:");
    for tf in plan.faults() {
        println!("  T+{:>4}s  {:?}", tf.at.as_millis() / 1000, tf.fault);
    }

    let trace_out = std::env::var("HOG_TRACE_JSONL").ok();
    let mut cfg = ClusterConfig::hog(60, 31)
        .with_fault_plan(plan)
        .with_audit(true)
        .with_watchdog(SimDuration::from_secs(3600));
    if trace_out.is_some() {
        cfg = cfg.with_tracing(TraceMode::Full);
    }
    let schedule = SubmissionSchedule::facebook_truncated(2026);
    println!("\nrunning 60-node HOG through the incident (auditing every master tick)…");
    let r = run_workload(cfg, &schedule, SimDuration::from_secs(60 * 3600));

    if let (Some(path), Some(log)) = (&trace_out, &r.trace) {
        std::fs::write(path, to_jsonl(&log.events)).expect("write trace");
        println!(
            "trace: {} events ({} layers of the incident, causally ordered) -> {path}",
            log.recorded,
            log.events.iter().map(|e| e.layer).collect::<std::collections::BTreeSet<_>>().len()
        );
    }

    match &r.chaos_failure {
        None => println!("auditor: clean — every cross-layer invariant held"),
        Some(f) => {
            println!("CHAOS FAILURE:\n{}", f.dump());
            std::process::exit(1);
        }
    }
    println!(
        "workload: {}/{} jobs succeeded, response {:.0}s",
        r.jobs_succeeded(),
        r.jobs.len(),
        r.response_time.map(|d| d.as_secs_f64()).unwrap_or(f64::NAN)
    );
    println!(
        "grid: {} preemptions, {} node starts; hdfs: {} repl completed, {} blocks lost",
        r.grid.map_or(0, |g| g.0),
        r.grid.map_or(0, |g| g.2),
        r.nn_counters.0,
        r.nn_counters.2
    );
    assert!(r.chaos_failure.is_none());
    assert!(r.jobs_succeeded() > 0, "the drill must not kill the workload");
    println!("\nThe site partition silences ~1/5 of the pool: the masters time the");
    println!("nodes out, re-replication refills block deficits from surviving sites,");
    println!("and when the partition heals the members re-register and rejoin. The");
    println!("paper's operational claim — graceful degradation on an unreliable");
    println!("grid — held under a scripted multi-fault incident.");
}
