//! The abandoned-datanode ("zombie") story of paper §IV-D.1, end to end.
//!
//! In HOG's first iteration the Hadoop startup scripts double-forked, so
//! site preemption killed the wrapper but left the daemons running with a
//! deleted working directory: they kept heartbeating, accepted tasks, and
//! failed every one of them. This example replays a preemption-heavy run
//! in three modes — no zombies, zombies without the fix, zombies with the
//! 3-minute working-directory self-check — and shows the damage and the
//! repair.
//!
//! ```sh
//! cargo run --release --example zombie_outbreak
//! ```

use hog_repro::prelude::*;
use hog_workload::facebook::Bin;

fn main() {
    let bin = Bin {
        number: 4,
        maps_at_facebook: (30, 30),
        fraction_at_facebook: 1.0,
        maps: 30,
        jobs_in_benchmark: 6,
        reduces: 6,
    };
    let schedule = SubmissionSchedule::from_bins(&[bin], 23);
    let churn = SimDuration::from_secs(30 * 60);
    let horizon = SimDuration::from_secs(24 * 3600);

    // The paper's remedy was two-part: (1) a periodic working-directory
    // self-check so zombie daemons exit within 3 minutes, and (2) starting
    // daemons inside the wrapper's process tree so preemption kills them
    // outright — i.e. no zombies at all. The rows below are the three
    // stages of that story.
    println!("mode                     response   jobs ok  zombie task failures  attempt failures");
    for (label, zombie_p, fix) in [
        ("first iteration        ", 0.4, false),
        ("disk-check mitigation  ", 0.4, true),
        ("process-tree fix (HOG) ", 0.0, false),
    ] {
        let mut cfg = ClusterConfig::hog(30, 7).with_mean_lifetime(churn);
        if zombie_p > 0.0 {
            cfg = cfg.with_zombies(zombie_p, fix);
        }
        let r = run_workload(cfg.named(label.trim().to_string()), &schedule, horizon);
        println!(
            "{label} {:>7}   {:>3}/{}   {:>18}  {:>16}",
            r.response_time
                .map(|d| format!("{:.0}s", d.as_secs_f64()))
                .unwrap_or_else(|| "DNF".into()),
            r.jobs_succeeded(),
            r.jobs.len(),
            r.cluster.zombie_task_failures,
            r.jt.failures,
        );
    }
    println!(
        "\nZombies accept-and-fail tasks until per-job blacklisting walls \
         them off; the periodic\nworking-directory check (the paper's \
         Datanode.java patch) makes them self-terminate\nwithin 3 minutes, \
         and the process-tree fix prevents them existing at all — which is\n\
         why production HOG behaves like the bottom row."
    );
}
