//! Site-failure drill: run the workload while whole OSG sites go down
//! (the failure domain HOG's site awareness exists for), and compare
//! site-aware placement against topology-oblivious placement.
//!
//! ```sh
//! cargo run --release --example site_failure_drill
//! ```

use hog_core::config::ResourceConfig;
use hog_repro::prelude::*;
use hog_sim_core::dist::{Exponential, UniformDuration};
use hog_workload::facebook::Bin;

fn outage_prone(mut cfg: ClusterConfig) -> ClusterConfig {
    if let ResourceConfig::Grid { sites, .. } = &mut cfg.resource {
        for s in sites.iter_mut() {
            // Every site fails for 5–15 minutes every ~90 minutes.
            s.outage_mtbf = Some(Exponential::from_mean(SimDuration::from_secs(90 * 60)));
            s.outage_duration = UniformDuration::new(
                SimDuration::from_mins(5),
                SimDuration::from_mins(15),
            );
        }
    }
    cfg
}

fn main() {
    let bin = Bin {
        number: 4,
        maps_at_facebook: (50, 50),
        fraction_at_facebook: 1.0,
        maps: 50,
        jobs_in_benchmark: 8,
        reduces: 10,
    };
    let schedule = SubmissionSchedule::from_bins(&[bin], 11);
    let horizon = SimDuration::from_secs(24 * 3600);

    for placement in [PlacementKind::SiteAware, PlacementKind::RackOblivious] {
        // Replication 2 so the placement choice actually decides whether a
        // whole-site outage can eat every replica of a block. (At HOG's
        // replication 10 even random placement almost always straddles
        // sites; §III-B.1's point is that you need *both* mechanisms.)
        let cfg = outage_prone(
            ClusterConfig::hog(60, 5)
                .with_replication(2)
                .with_placement(placement.clone())
                .named(format!("{placement:?}")),
        );
        let r = run_workload(cfg, &schedule, horizon);
        let (_, outages, _) = r.grid.unwrap();
        println!(
            "{placement:?}: response={:>6}  jobs {}/{}  site outages={}  blocks lost={}  missing inputs={}",
            r.response_time
                .map(|d| format!("{:.0}s", d.as_secs_f64()))
                .unwrap_or_else(|| "DNF".into()),
            r.jobs_succeeded(),
            r.jobs.len(),
            outages,
            r.nn_counters.2,
            r.missing_input_blocks,
        );
    }
    println!(
        "\nSite-aware placement spreads every block over all five sites, so a \
         whole-site outage never takes out every replica; oblivious placement \
         can stack replicas inside one failure domain."
    );
}
