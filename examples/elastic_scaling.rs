//! Elastic scaling: the same workload at increasing HOG pool sizes —
//! the paper's scalability story (§IV-C) in miniature. Response time
//! falls as glideins are added, with diminishing returns once the
//! workload stops being slot-bound.
//!
//! ```sh
//! cargo run --release --example elastic_scaling
//! ```

use hog_core::sweep::{run_sweep, SweepPoint};
use hog_repro::prelude::*;

fn main() {
    let sizes = [30usize, 60, 120, 240];
    let points: Vec<SweepPoint> = sizes
        .iter()
        .map(|&n| SweepPoint {
            cfg: ClusterConfig::hog(n, 9),
            workload_seed: 2024,
        })
        .collect();
    println!("sweeping pool sizes {sizes:?} in parallel…");
    let results = run_sweep(points, SimDuration::from_secs(60 * 3600), sizes.len());

    println!("\nnodes  response    speedup  node-local%");
    let base = results[0]
        .response_time
        .map(|d| d.as_secs_f64())
        .unwrap_or(f64::NAN);
    for (n, r) in sizes.iter().zip(&results) {
        let resp = r.response_time.map(|d| d.as_secs_f64()).unwrap_or(f64::NAN);
        let total = (r.jt.node_local + r.jt.site_local + r.jt.remote).max(1);
        println!(
            "{n:>5}  {resp:>8.0}s  {:>6.2}x  {:>10.1}%",
            base / resp,
            100.0 * r.jt.node_local as f64 / total as f64
        );
    }
    println!(
        "\nGrowing the pool is one `condor_submit` away (the paper's `queue N`);\n\
         shrinking just removes glidein jobs. The central server never moves."
    );
}
