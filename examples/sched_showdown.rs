//! Scheduler showdown: the same 100-node pool and Facebook workload
//! under each slot-assignment policy (DESIGN.md §11). FIFO is the
//! paper's scheduler; Fair adds delay scheduling and wins on locality
//! and mean job response; FailureAware only differs once the pool
//! starts killing trackers (see `hog-bench --bin sched -- --ablation`
//! for that story).
//!
//! ```sh
//! cargo run --release --example sched_showdown
//! ```

use hog_repro::prelude::*;

fn main() {
    let policies = [
        SchedPolicy::Fifo,
        SchedPolicy::Fair,
        SchedPolicy::FailureAware,
    ];
    let schedule = SubmissionSchedule::facebook_truncated(1007);
    let horizon = SimDuration::from_secs(60 * 3600);

    println!("policy          makespan  mean-job  node%  rack%  site%  remote%");
    for policy in policies {
        let cfg = ClusterConfig::hog(100, 7)
            .with_scheduler(policy)
            .named(format!("showdown-{policy:?}"));
        let r = run_workload(cfg, &schedule, horizon);

        let makespan = r.response_time.map(|d| d.as_secs_f64()).unwrap_or(f64::NAN);
        let (mut sum, mut n) = (0.0, 0u32);
        for j in &r.jobs {
            if let Some(d) = j.response() {
                sum += d.as_secs_f64();
                n += 1;
            }
        }
        let mean_job = if n > 0 { sum / n as f64 } else { f64::NAN };
        let total = (r.jt.node_local + r.jt.rack_local + r.jt.site_local + r.jt.remote).max(1);
        let pct = |c: u64| 100.0 * c as f64 / total as f64;
        println!(
            "{:<14}  {makespan:>7.0}s  {mean_job:>7.0}s  {:>4.1}  {:>5.1}  {:>5.1}  {:>6.1}",
            format!("{policy:?}"),
            pct(r.jt.node_local),
            pct(r.jt.rack_local),
            pct(r.jt.site_local),
            pct(r.jt.remote),
        );
    }
    println!(
        "\nDelay scheduling trades a little makespan for node-local maps and\n\
         much lower per-job response; FailureAware is inert on a healthy\n\
         pool by design — its win shows up under preemption bursts."
    );
}
