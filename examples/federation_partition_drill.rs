//! Federation partition drill: two HOG pools share datasets over the
//! inter-pool WAN while hog-chaos severs that backbone for twenty
//! minutes mid-workload. In-flight cross-pool stagings must freeze (not
//! abort), jobs awaiting them must stay accounted for, and once the
//! partition heals every job must still complete — the federation-level
//! no-lost-jobs auditor checks the books on every tick.
//!
//! ```sh
//! cargo run --release --example federation_partition_drill
//! ```

use hog_repro::prelude::*;

fn main() {
    let plan = FaultPlan::new().at(
        SimDuration::from_mins(5),
        Fault::PoolPartition {
            duration: SimDuration::from_mins(20),
        },
    );
    println!("fault plan (pool 0):");
    for tf in plan.faults() {
        println!("  T+{:>4}s  {:?}", tf.at.as_millis() / 1000, tf.fault);
    }

    // The partition lives in pool 0's chaos plan but acts on the
    // federation's WAN tier; the pool itself treats it as a no-op.
    let pools = vec![
        ClusterConfig::hog(30, 41).with_fault_plan(plan),
        ClusterConfig::hog(30, 42),
    ];
    let cfg = FedConfig::new(pools, 41)
        .with_sharing(0.5, 1, 2)
        .with_audit(true)
        .named("partition-drill");
    let schedule = SubmissionSchedule::facebook_truncated(2041);

    println!("\nrunning 2x30-node federation through the partition (auditing every tick)…");
    let r = run_federation(cfg, &schedule, SimDuration::from_secs(60 * 3600));

    println!(
        "partitions={}  jobs {}/{}  mean job response={:.0}s  wan={} B over {} transfers ({} on-demand stagings)",
        r.partitions,
        r.jobs_succeeded(),
        r.jobs.len(),
        r.mean_job_response_secs(),
        r.wan_bytes,
        r.wan_transfers,
        r.route_stagings,
    );

    if let Some(f) = &r.chaos_failure {
        println!("CHAOS FAILURE:\n{}", f.dump());
        std::process::exit(1);
    }
    assert_eq!(r.partitions, 1, "the scripted partition never fired");
    assert!(r.completed, "jobs lost across the partition");
    assert_eq!(r.jobs_succeeded(), r.jobs.len(), "a job failed");
    println!("auditor: clean — no job lost across the inter-pool partition");
}
