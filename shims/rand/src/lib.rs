//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors the narrow slice of `rand` it actually uses: [`rngs::SmallRng`]
//! (implemented as xoshiro256++, the same algorithm rand 0.8 uses on
//! 64-bit targets, seeded through the same SplitMix64 expansion) and the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits with `gen`, `gen_range` and
//! `next_u64`. Draws are uniform and deterministic per seed; the exact
//! bit-stream matches the upstream algorithm family, which is all the
//! simulation relies on (its own determinism tests compare runs against
//! runs, never against hard-coded upstream values).

/// Core low-level generator interface (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// Seedable construction (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Build a generator from a 64-bit seed (SplitMix64-expanded).
    fn seed_from_u64(state: u64) -> Self;
}

/// Types that can be sampled uniformly from their full value domain
/// (stand-in for sampling with the `Standard` distribution).
pub trait StandardSample {
    /// Draw one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 effective mantissa bits, uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for u64 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Integer types usable with [`Rng::gen_range`] over half-open ranges.
pub trait SampleUniform: Copy {
    /// Uniform draw in `[lo, hi)`; panics when the range is empty.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

/// Unbiased bounded draw in `[0, span)` via Lemire's widening-multiply
/// rejection method.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (span as u128);
        let low = m as u64;
        if low < span {
            let threshold = span.wrapping_neg() % span;
            if low < threshold {
                continue;
            }
        }
        return (m >> 64) as u64;
    }
}

macro_rules! impl_sample_uniform {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                assert!(lo < hi, "gen_range called with empty range");
                let span = (hi as u64).wrapping_sub(lo as u64);
                lo.wrapping_add(bounded_u64(rng, span) as $ty)
            }
        }
    )*};
}

impl_sample_uniform!(u8, u16, u32, u64, usize);

impl SampleUniform for i64 {
    #[inline]
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        assert!(lo < hi, "gen_range called with empty range");
        let span = (hi as u64).wrapping_sub(lo as u64);
        lo.wrapping_add(bounded_u64(rng, span) as i64)
    }
}

/// High-level convenience methods (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Sample a value uniformly from the type's full domain.
    #[inline]
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Uniform draw from a half-open range.
    #[inline]
    fn gen_range<T: SampleUniform>(&mut self, range: core::ops::Range<T>) -> T
    where
        Self: Sized,
    {
        T::sample_range(self, range.start, range.end)
    }

    /// Bernoulli trial.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (subset of `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic PRNG: xoshiro256++, the algorithm
    /// `rand 0.8`'s `SmallRng` resolves to on 64-bit platforms.
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                *word = splitmix64(&mut state);
            }
            // xoshiro forbids the all-zero state; SplitMix64 cannot emit
            // four zero words in a row, but guard anyway.
            if s == [0; 4] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(99);
        let mut b = SmallRng::seed_from_u64(99);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = SmallRng::seed_from_u64(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.gen_range(0usize..10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..1000 {
            let x = r.gen_range(50u64..60);
            assert!((50..60).contains(&x));
        }
    }

    #[test]
    fn mean_of_units_is_centered() {
        let mut r = SmallRng::seed_from_u64(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
