//! Offline stand-in for the `crossbeam` crate.
//!
//! Only [`scope`] is provided (the sole API this workspace uses). It is
//! implemented over `std::thread::scope`, with crossbeam's semantics of
//! returning `Err` with the panic payload when any spawned thread
//! panicked instead of propagating the panic.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Result of a scope: `Err` carries the payload of the first panic.
pub type ScopeResult<T> = Result<T, Box<dyn Any + Send + 'static>>;

/// A scope handle that can spawn threads borrowing from the enclosing
/// stack frame.
pub struct Scope<'scope, 'env> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawn a scoped thread. The closure receives a scope handle (like
    /// crossbeam's) so nested spawns are possible.
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        self.inner.spawn(move || f(&Scope { inner }))
    }
}

/// Create a scope for spawning threads that may borrow local state; all
/// threads are joined before `scope` returns.
pub fn scope<'env, F, R>(f: F) -> ScopeResult<R>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_and_join() {
        let counter = AtomicUsize::new(0);
        let out = scope(|s| {
            for _ in 0..4 {
                s.spawn(|_| counter.fetch_add(1, Ordering::SeqCst));
            }
        });
        assert!(out.is_ok());
        assert_eq!(counter.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn panics_surface_as_err() {
        let out = scope(|s| {
            s.spawn(|_| panic!("boom"));
        });
        assert!(out.is_err());
    }
}
