//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the workspace's microbenches use
//! (`criterion_group!`/`criterion_main!`, `Criterion::bench_function`,
//! `benchmark_group`, `Bencher::iter`/`iter_batched`, [`BatchSize`]) as a
//! plain wall-clock harness: each benchmark runs a short warmup, then a
//! fixed sample of timed iterations, and prints min/median per-iteration
//! times. No statistics engine, no HTML reports — enough to compare hot
//! paths between commits in this offline environment.

use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` (criterion's `black_box`).
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// How batched inputs are grouped (accepted for API parity; the stand-in
/// always regenerates the input for every timed iteration).
#[derive(Clone, Copy, Debug)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    results: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            results: Vec::new(),
        }
    }

    /// Time `routine` over the configured number of samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One warmup iteration, then timed samples.
        std_black_box(routine());
        for _ in 0..self.samples {
            let start = Instant::now();
            std_black_box(routine());
            self.results.push(start.elapsed());
        }
    }

    /// Time `routine` on fresh inputs from `setup` (setup excluded from
    /// the measurement).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        std_black_box(routine(setup()));
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.results.push(start.elapsed());
        }
    }
}

fn report(id: &str, results: &mut [Duration]) {
    if results.is_empty() {
        println!("{id:<44} (no samples)");
        return;
    }
    results.sort_unstable();
    let median = results[results.len() / 2];
    println!(
        "{id:<44} min {:>12?}  median {:>12?}  ({} samples)",
        results[0],
        median,
        results.len()
    );
}

/// Top-level benchmark registry (criterion's `Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let sample_size = std::env::var("CRITERION_SAMPLES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(10);
        Criterion { sample_size }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        report(id, &mut b.results);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            parent: self,
            name: name.to_string(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks with shared settings.
pub struct BenchmarkGroup<'a> {
    parent: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Override the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Run one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let samples = self.sample_size.unwrap_or(self.parent.sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        report(&format!("{}/{id}", self.name), &mut b.results);
        self
    }

    /// Finish the group (no-op beyond API parity).
    pub fn finish(self) {}
}

/// Declare a group function running the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declare `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8; 64], |v| v.len(), BatchSize::SmallInput)
        });
        let mut g = c.benchmark_group("grp");
        g.sample_size(3);
        g.bench_function("inner", |b| b.iter(|| 2 * 2));
        g.finish();
    }

    criterion_group!(benches, trivial);

    #[test]
    fn harness_runs() {
        benches();
    }
}
