//! Value-generation strategies: integer ranges, regex-lite string
//! literals, tuples, [`Just`], [`Map`] (`prop_map`) and [`Union`]
//! (`prop_oneof!`).

use crate::TestRng;
use std::fmt::Debug;
use std::ops::Range;

/// A recipe for producing values of one type from the generation RNG.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values (proptest's `prop_map`).
    fn prop_map<U: Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Draw one value from a (possibly unsized) strategy. Used by the
/// `proptest!` macro so `&'static str` regex literals work alongside
/// sized strategies.
pub fn generate_one<S: Strategy + ?Sized>(strat: &S, rng: &mut TestRng) -> S::Value {
    strat.generate(rng)
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(rng.below(span) as $ty)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

/// Always produce a clone of one value (proptest's `Just`).
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone + Debug>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Mapped strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Object-safe strategy view, so [`Union`] can hold heterogeneous arms
/// with one value type.
pub trait DynStrategy<V> {
    /// Draw one value.
    fn generate_dyn(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

/// Uniform choice over strategies (proptest's `prop_oneof!`).
pub struct Union<V> {
    arms: Vec<Box<dyn DynStrategy<V>>>,
}

impl<V: Debug> Union<V> {
    /// An empty union; populate with [`Union::or`].
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        Union { arms: Vec::new() }
    }

    /// Add one arm.
    pub fn or<S: DynStrategy<V> + 'static>(mut self, arm: S) -> Self {
        self.arms.push(Box::new(arm));
        self
    }
}

impl<V: Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        assert!(!self.arms.is_empty(), "prop_oneof! with no arms");
        let idx = rng.below(self.arms.len() as u64) as usize;
        self.arms[idx].generate_dyn(rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}

/// One parsed atom of the regex-lite subset: a set of candidate chars
/// plus a repetition range.
struct Atom {
    chars: Vec<char>,
    min: usize,
    max: usize,
}

/// Parse the regex subset proptest string-literal strategies use here:
/// literal characters, `\x` escapes, `[a-z0-9_]`-style classes (ranges
/// and singletons), and `{m}` / `{m,n}` repetition suffixes.
fn parse_regex_lite(pattern: &str) -> Vec<Atom> {
    let mut chars = pattern.chars().peekable();
    let mut atoms: Vec<Atom> = Vec::new();
    while let Some(c) = chars.next() {
        match c {
            '[' => {
                let mut set = Vec::new();
                let mut prev: Option<char> = None;
                for d in chars.by_ref() {
                    match d {
                        ']' => break,
                        '-' if prev.is_some() => {
                            // Range marker: resolved when the end char arrives.
                            set.push('\u{0}');
                        }
                        d => {
                            if set.last() == Some(&'\u{0}') {
                                set.pop();
                                let lo = prev.expect("range start");
                                set.pop();
                                for r in lo..=d {
                                    set.push(r);
                                }
                                prev = None;
                            } else {
                                set.push(d);
                                prev = Some(d);
                            }
                        }
                    }
                }
                atoms.push(Atom { chars: set, min: 1, max: 1 });
            }
            '{' => {
                let mut spec = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    spec.push(d);
                }
                let atom = atoms.last_mut().expect("repetition without atom");
                let (lo, hi) = match spec.split_once(',') {
                    Some((lo, hi)) => (lo.trim().parse().unwrap(), hi.trim().parse().unwrap()),
                    None => {
                        let n = spec.trim().parse().unwrap();
                        (n, n)
                    }
                };
                atom.min = lo;
                atom.max = hi;
            }
            '\\' => {
                let d = chars.next().expect("dangling escape");
                atoms.push(Atom { chars: vec![d], min: 1, max: 1 });
            }
            c => atoms.push(Atom { chars: vec![c], min: 1, max: 1 }),
        }
    }
    atoms
}

impl Strategy for str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for atom in parse_regex_lite(self) {
            let n = if atom.max > atom.min {
                atom.min + rng.below((atom.max - atom.min + 1) as u64) as usize
            } else {
                atom.min
            };
            for _ in 0..n {
                out.push(atom.chars[rng.below(atom.chars.len() as u64) as usize]);
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        (**self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regex_lite_shapes() {
        let mut rng = TestRng::new(1);
        for _ in 0..200 {
            let host = generate_one("[a-z]{1,8}", &mut rng);
            assert!((1..=8).contains(&host.len()), "{host}");
            assert!(host.chars().all(|c| c.is_ascii_lowercase()));
            let dom = generate_one("[a-z]{2,8}\\.[a-z]{2,3}", &mut rng);
            let (l, r) = dom.split_once('.').expect("dot");
            assert!((2..=8).contains(&l.len()) && (2..=3).contains(&r.len()), "{dom}");
        }
    }

    #[test]
    fn union_covers_all_arms() {
        let s = Union::new().or(Just(0u8)).or(Just(1u8)).or(Just(2u8));
        let mut rng = TestRng::new(3);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&x| x));
    }
}
