//! Offline stand-in for the `proptest` crate.
//!
//! The build environment cannot reach crates.io, so this crate implements
//! the slice of proptest's API the workspace uses: the [`proptest!`] macro
//! (with `#![proptest_config]`), integer-range / regex-string / tuple /
//! [`Just`] / [`prop_oneof!`] / [`collection::vec`] strategies,
//! `prop_map`, the `prop_assert*` macros, and deterministic case
//! generation with **regression-seed replay** compatible with
//! `proptest-regressions/<file>.txt` files (`cc <seed>` lines).
//!
//! Differences from upstream, by design:
//!
//! * case generation is fully deterministic (seed derived from the test's
//!   file + name, overridable via `PROPTEST_RNG_SEED`), so CI replays the
//!   same cases every run;
//! * no shrinking — a failing case reports the seed that reproduces it
//!   and persists it to the regression file, which is replayed first on
//!   the next run.

use std::fmt;
use std::io::Write as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

pub mod strategy;

pub use strategy::{Just, Strategy};

/// Test-runner configuration and error types.
pub mod test_runner {
    use super::*;

    /// Subset of proptest's runner configuration.
    #[derive(Clone, Debug)]
    pub struct ProptestConfig {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Default config with an explicit case count.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            let cases = std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(64);
            ProptestConfig { cases }
        }
    }

    /// Why a single test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The property was falsified.
        Fail(String),
        /// The input was rejected (unused here, kept for API parity).
        Reject(String),
    }

    impl TestCaseError {
        /// A falsification with a message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "{m}"),
                TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            }
        }
    }
}

pub use test_runner::{ProptestConfig, TestCaseError};

/// Per-case result type used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// The deterministic generation RNG handed to strategies (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a generation stream.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, span)`; `span` must be non-zero.
    #[inline]
    pub fn below(&mut self, span: u64) -> u64 {
        debug_assert!(span > 0);
        let m = (self.next_u64() as u128) * (span as u128);
        (m >> 64) as u64
    }

    /// Fair coin.
    #[inline]
    pub fn flip(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }
}

/// Boolean strategies (`proptest::bool::ANY`).
pub mod bool {
    use super::strategy::Strategy;
    use super::TestRng;

    /// Strategy yielding arbitrary booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct Any;

    /// Either boolean, uniformly.
    pub const ANY: Any = Any;

    impl Strategy for Any {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.flip()
        }
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from a half-open range.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// A vector of `size` elements drawn from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy { elem, len: size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// The most common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Derive the regression-file path for a test source file, mirroring
/// proptest's source-parallel layout: `crates/net/src/fluid.rs` →
/// `<crate root>/proptest-regressions/fluid.txt`.
fn regression_path(source_file: &str) -> Option<PathBuf> {
    let comps: Vec<&str> = source_file.split(['/', '\\']).collect();
    let idx = comps.iter().position(|c| *c == "src" || *c == "tests")?;
    let manifest = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    let mut path = PathBuf::from(manifest);
    path.push("proptest-regressions");
    for mid in &comps[idx + 1..comps.len().saturating_sub(1)] {
        path.push(mid);
    }
    let stem = comps.last()?.strip_suffix(".rs")?;
    path.push(format!("{stem}.txt"));
    Some(path)
}

fn load_regression_seeds(path: &PathBuf) -> Vec<u64> {
    let Ok(text) = std::fs::read_to_string(path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|l| l.trim().strip_prefix("cc "))
        .filter_map(|s| s.trim().parse().ok())
        .collect()
}

fn persist_regression_seed(path: &Option<PathBuf>, seed: u64) {
    let Some(path) = path else { return };
    if load_regression_seeds(path).contains(&seed) {
        return;
    }
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let header_needed = !path.exists();
    if let Ok(mut f) = std::fs::OpenOptions::new().create(true).append(true).open(path) {
        if header_needed {
            let _ = writeln!(
                f,
                "# Seeds for failure cases proptest has generated in the past. It is\n\
                 # automatically read and these particular cases re-run before any\n\
                 # novel cases are generated."
            );
        }
        let _ = writeln!(f, "cc {seed}");
    }
}

#[inline]
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.rotate_left(31);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Execute one property: replay persisted regression seeds first, then run
/// `config.cases` deterministically derived fresh cases. Used by the
/// [`proptest!`] macro; not part of the public proptest API.
pub fn run_property<F>(config: &ProptestConfig, source_file: &str, test_name: &str, body: F)
where
    F: Fn(&mut TestRng) -> TestCaseResult,
{
    let reg_path = regression_path(source_file);
    let persisted = reg_path.as_ref().map(load_regression_seeds).unwrap_or_default();
    let base = std::env::var("PROPTEST_RNG_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| mix(fnv1a(source_file), fnv1a(test_name)));

    let fresh = (0..config.cases as u64).map(|i| mix(base, i));
    for (replayed, seed) in persisted
        .into_iter()
        .map(|s| (true, s))
        .chain(fresh.map(|s| (false, s)))
    {
        let outcome = catch_unwind(AssertUnwindSafe(|| body(&mut TestRng::new(seed))));
        let message = match outcome {
            Ok(Ok(())) => continue,
            Ok(Err(TestCaseError::Reject(_))) => continue,
            Ok(Err(TestCaseError::Fail(m))) => m,
            Err(payload) => payload
                .downcast_ref::<String>()
                .cloned()
                .or_else(|| payload.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "test body panicked".to_string()),
        };
        if !replayed {
            persist_regression_seed(&reg_path, seed);
        }
        panic!(
            "proptest property `{test_name}` failed{}: {message}\n\
             reproduce with seed {seed} (persisted to {})",
            if replayed { " (replayed regression seed)" } else { "" },
            reg_path
                .as_ref()
                .map(|p| p.display().to_string())
                .unwrap_or_else(|| "<no regression path>".into()),
        );
    }
}

/// Property-test entry point; see crate docs. Supports an optional
/// `#![proptest_config(...)]` header and any number of `#[test]` functions
/// whose arguments are drawn from strategies via `name in strategy`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_each! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Internal recursive expansion of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_each {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::run_property(&config, file!(), stringify!($name), |rng| {
                $(let $arg = $crate::strategy::generate_one(&$strat, rng);)+
                $crate::TestCaseResult::Ok($body)
            });
        }
        $crate::__proptest_each! { ($cfg) $($rest)* }
    };
}

/// `prop_assert!`: falsify the current case without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// `prop_assert_eq!`: equality check that falsifies instead of panicking.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($lhs), stringify!($rhs), l, r
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// `prop_assert_ne!`: inequality check that falsifies instead of panicking.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}` (both: `{:?}`)",
            stringify!($lhs), stringify!($rhs), l
        );
    }};
}

/// `prop_oneof!`: uniform choice between strategies with a common value
/// type (weights are not supported by this stand-in).
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new()$(.or($arm))+
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        A(u64),
        B,
    }

    fn op() -> impl Strategy<Value = Op> {
        prop_oneof![(0u64..10).prop_map(Op::A), Just(Op::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples(
            a in 3u64..17,
            (b, c) in (0u32..4, 1usize..9),
            s in "[a-z]{2,5}\\.[a-z]{2,3}",
            v in crate::collection::vec(op(), 1..8),
            f in crate::bool::ANY,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!(b < 4);
            prop_assert!((1..9).contains(&c));
            let dot = s.find('.').expect("regex forces a dot");
            prop_assert!((2..=5).contains(&dot));
            prop_assert!(!v.is_empty() && v.len() < 8);
            // Tautology on purpose: exercises bool generation + the macro.
            #[allow(clippy::overly_complex_bool_expr)]
            {
                prop_assert_eq!(f || !f, true);
            }
        }
    }

    #[test]
    fn deterministic_generation() {
        let strat = (0u64..1000, crate::collection::vec(0u32..7, 1..20));
        let a = crate::strategy::generate_one(&strat, &mut crate::TestRng::new(42));
        let b = crate::strategy::generate_one(&strat, &mut crate::TestRng::new(42));
        assert_eq!(a, b);
    }

    #[test]
    fn regression_path_layout() {
        let p = super::regression_path("crates/net/src/fluid.rs").unwrap();
        let s = p.display().to_string();
        assert!(s.ends_with("proptest-regressions/fluid.txt"), "{s}");
        let p = super::regression_path("crates/mapreduce/tests/chaos.rs").unwrap();
        assert!(p.display().to_string().ends_with("proptest-regressions/chaos.txt"));
    }
}
