//! Event-driven max-min fair fluid-flow network.
//!
//! Every in-flight transfer is a *fluid flow* with a current rate assigned
//! by progressive filling (water-filling) over the links it traverses:
//!
//! * intra-site flow: `src NIC up → dst NIC down`
//! * inter-site flow: `src NIC up → src site uplink → dst site downlink →
//!   dst NIC down`
//! * loopback (src == dst): a fixed unshared local-copy rate
//!
//! Whenever the flow set changes (start, cancel, completion, node death)
//! rates are recomputed. This is the classic NS-style fluid approximation:
//! it captures the paper's key effects — WAN shuffle is slow because many
//! reducers share one site uplink, while intra-site traffic only contends
//! for NICs — without packet-level cost.
//!
//! Propagation latency is deliberately **not** folded into flow completion
//! times; bulk transfers are bandwidth-dominated and RPC latency is modelled
//! explicitly by the substrates via [`Network::latency`].
//!
//! # Scale path (DESIGN.md §10)
//!
//! The naive formulation progressed *every* flow and re-ran a *global*
//! waterfilling pass on every flow event — O(flows × links) work per event.
//! This implementation is incremental while reproducing the same simulated
//! outcomes:
//!
//! * **Persistent tables** — `LinkKey`s are interned to dense `u32` ids
//!   once, node→site lookups are a dense `Vec`, and each link keeps its
//!   member-flow list up to date, so no per-recompute `HashMap` is built.
//! * **Lazy flow progress** — a flow's `remaining` is rebased only when its
//!   own rate changes. Completion instants are *predicted* with the same
//!   millisecond-grain arithmetic the eager version used
//!   (`remaining − rate·(Δms/1000) < DONE_EPS`), kept in a min-heap, and
//!   harvested when simulation time passes them.
//! * **Component-local recompute** — a flow start/end only re-waterfills
//!   the connected component of links it touches. Disjoint components
//!   cannot exchange bandwidth, and the freezing pass visits the affected
//!   links in the same relative order as the global pass, so the computed
//!   rates are identical (see DESIGN.md §10 for the argument).

use crate::params::NetParams;
use crate::topology::{NodeId, SiteId};
use crate::{FlowEnd, FlowId, FlowOutcome, Network};
use hog_obs::{Layer, TraceEvent, Tracer};
use hog_sim_core::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::HashMap;
use std::collections::{BTreeSet, BinaryHeap};

/// One shared capacity on a flow's path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum LinkKey {
    NodeUp(NodeId),
    NodeDown(NodeId),
    SiteUp(SiteId),
    SiteDown(SiteId),
}

/// Dense index into [`FluidNet::links`].
type LinkId = u32;

/// Interned link: its identity plus the positions (in [`FluidNet::flows`])
/// of the flows currently traversing it.
struct LinkState {
    key: LinkKey,
    flows_on: Vec<u32>,
}

/// A flow's path never exceeds 4 links (NIC up, site up, site down, NIC
/// down), so paths are fixed arrays instead of heap `Vec`s.
const MAX_PATH: usize = 4;

#[derive(Clone, Debug)]
struct Flow {
    id: FlowId,
    tag: u64,
    src: NodeId,
    dst: NodeId,
    /// Interned links this flow traverses (first `links_len` entries).
    links: [LinkId; MAX_PATH],
    links_len: u8,
    /// Position of this flow inside each link's `flows_on` list.
    link_pos: [u32; MAX_PATH],
    /// Bytes left as of `upd` (*not* of "now" — progress is lazy).
    remaining: f64,
    rate: f64,
    /// Epoch start: the instant `remaining`/`rate` were last rebased.
    upd: SimTime,
    /// Bumped on every rate change; stale heap entries carry old values.
    gen: u32,
}

/// Sentinel for "node not registered" in the dense site table.
const NO_SITE: u16 = u16::MAX;
/// Sentinel for "flow no longer active" in the id → position table.
const NO_FLOW: u32 = u32::MAX;

/// The fluid network model. See the module docs for semantics.
pub struct FluidNet {
    params: NetParams,
    /// Dense node → site table (`NO_SITE` = unregistered).
    site_of_node: Vec<u16>,
    flows: Vec<Flow>,
    /// FlowId.0 → position in `flows` (`NO_FLOW` = gone). Grows by one
    /// entry per flow ever started.
    flow_pos: Vec<u32>,
    /// Interned links; never shrinks (a handful of entries per node).
    links: Vec<LinkState>,
    link_ids: HashMap<LinkKey, LinkId>,
    /// Predicted completion instants: `(first ms where remaining dips
    /// below DONE_EPS, flow id, gen)`.
    crossings: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    /// Projected finish instants as reported by [`Network::next_completion`]
    /// (ceil of remaining/rate — up to one ms *after* the crossing).
    projections: BinaryHeap<Reverse<(SimTime, u64, u32)>>,
    finished: Vec<FlowEnd>,
    last_update: SimTime,
    next_flow_id: u64,
    /// Number of rate recomputation passes performed (diagnostics /
    /// benches). One pass may cover several touched components.
    recomputes: u64,
    /// Total flows examined across all recomputation passes: the
    /// per-recompute work metric the scale benchmark tracks.
    recompute_work: u64,
    /// WAN degradation multiplier applied to site up/downlink capacity
    /// (1.0 = healthy; chaos fault injection lowers it temporarily).
    wan_factor: f64,
    tracer: Tracer,
    // Scratch space reused across recomputes (stamp-marked, never cleared).
    link_mark: Vec<u32>,
    /// Valid only where `link_mark` carries the current stamp: the local
    /// dense id assigned to that link by the in-progress recompute.
    link_local: Vec<u32>,
    flow_mark: Vec<u32>,
    mark_gen: u32,
    scratch_flows: Vec<u32>,
    scratch_links: Vec<LinkId>,
}

/// Completion threshold: a flow with fewer than this many bytes left is
/// done. Covers f64 rounding noise from progressing at millisecond grain.
const DONE_EPS: f64 = 0.5;

impl FluidNet {
    /// A fluid network with the given parameters.
    pub fn new(params: NetParams) -> Self {
        FluidNet {
            params,
            site_of_node: Vec::new(),
            flows: Vec::new(),
            flow_pos: Vec::new(),
            links: Vec::new(),
            link_ids: HashMap::new(),
            crossings: BinaryHeap::new(),
            projections: BinaryHeap::new(),
            finished: Vec::new(),
            last_update: SimTime::ZERO,
            next_flow_id: 0,
            recomputes: 0,
            recompute_work: 0,
            wan_factor: 1.0,
            tracer: Tracer::disabled(),
            link_mark: Vec::new(),
            link_local: Vec::new(),
            flow_mark: Vec::new(),
            mark_gen: 0,
            scratch_flows: Vec::new(),
            scratch_links: Vec::new(),
        }
    }

    /// Attach the shared trace handle (disabled by default).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The parameters in use.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Diagnostics: how many rate recomputation passes have run.
    pub fn recompute_count(&self) -> u64 {
        self.recomputes
    }

    /// Diagnostics: total flows examined across all recomputation passes
    /// (the per-recompute work measure — divide by [`recompute_count`] for
    /// the average working-set size).
    ///
    /// [`recompute_count`]: FluidNet::recompute_count
    pub fn recompute_work(&self) -> u64 {
        self.recompute_work
    }

    /// The current rate of a flow, if it is still active (testing hook).
    pub fn rate_of(&self, id: FlowId) -> Option<f64> {
        let p = *self.flow_pos.get(id.0 as usize)?;
        if p == NO_FLOW {
            return None;
        }
        Some(self.flows[p as usize].rate)
    }

    fn site_of(&self, node: NodeId) -> Option<SiteId> {
        match self.site_of_node.get(node.0 as usize) {
            Some(&s) if s != NO_SITE => Some(SiteId(s)),
            _ => None,
        }
    }

    fn cap_of(&self, link: LinkKey) -> f64 {
        match link {
            LinkKey::NodeUp(_) => self.params.nic_up,
            LinkKey::NodeDown(_) => self.params.nic_down,
            LinkKey::SiteUp(_) => self.params.site_up * self.wan_factor,
            LinkKey::SiteDown(_) => self.params.site_down * self.wan_factor,
        }
    }

    /// Scale every site up/downlink to `factor` × its configured capacity
    /// (chaos: WAN degradation window). `factor` is clamped to a small
    /// positive minimum so flows keep draining; `1.0` restores full
    /// bandwidth. In-flight flows are progressed to `now` first and their
    /// rates recomputed under the new capacities.
    pub fn set_wan_factor(&mut self, now: SimTime, factor: f64) {
        self.progress_to(now);
        self.wan_factor = factor.max(1e-3);
        self.tracer
            .emit(|| TraceEvent::new(Layer::Net, "wan_factor").with("factor", self.wan_factor));
        // Capacities changed under every flow: full recompute.
        self.recomputes += 1;
        let all: Vec<u32> = (0..self.flows.len() as u32)
            .filter(|&p| self.flows[p as usize].links_len > 0)
            .collect();
        self.recompute_for(&all);
        self.settle_heaps();
    }

    /// The WAN degradation multiplier currently in force.
    pub fn wan_factor(&self) -> f64 {
        self.wan_factor
    }

    fn intern(&mut self, key: LinkKey) -> LinkId {
        if let Some(&id) = self.link_ids.get(&key) {
            return id;
        }
        let id = self.links.len() as LinkId;
        self.links.push(LinkState {
            key,
            flows_on: Vec::new(),
        });
        self.link_ids.insert(key, id);
        self.link_mark.push(0);
        self.link_local.push(0);
        id
    }

    fn path_for(
        &mut self,
        src: NodeId,
        dst: NodeId,
        diffuse_src: bool,
    ) -> ([LinkId; MAX_PATH], u8) {
        let mut links = [0 as LinkId; MAX_PATH];
        let mut n = 0u8;
        if src == dst {
            return (links, 0);
        }
        let ss = self.site_of(src).expect("src registered");
        let ds = self.site_of(dst).expect("dst registered");
        let push = |net: &mut Self, key: LinkKey, links: &mut [LinkId; MAX_PATH], n: &mut u8| {
            links[*n as usize] = net.intern(key);
            *n += 1;
        };
        if ss == ds {
            if !diffuse_src {
                push(self, LinkKey::NodeUp(src), &mut links, &mut n);
            }
            push(self, LinkKey::NodeDown(dst), &mut links, &mut n);
        } else {
            if !diffuse_src {
                push(self, LinkKey::NodeUp(src), &mut links, &mut n);
            }
            push(self, LinkKey::SiteUp(ss), &mut links, &mut n);
            push(self, LinkKey::SiteDown(ds), &mut links, &mut n);
            push(self, LinkKey::NodeDown(dst), &mut links, &mut n);
        }
        (links, n)
    }

    /// `remaining` of `f` progressed to `now` with its current rate — the
    /// same `remaining -= rate · dt_secs` arithmetic the eager version
    /// applied stepwise (dt in whole-ms f64, matching `as_secs_f64`).
    fn rem_at(&self, f: &Flow, now: SimTime) -> f64 {
        let dt = now.saturating_since(f.upd).as_secs_f64();
        if dt > 0.0 {
            f.remaining - f.rate * dt
        } else {
            f.remaining
        }
    }

    /// First whole millisecond at which `f.remaining` dips below
    /// [`DONE_EPS`] — the instant an eager per-ms progression would first
    /// observe the flow as done. `None` if the flow never drains (rate 0).
    fn crossing_of(&self, f: &Flow) -> Option<SimTime> {
        if f.remaining < DONE_EPS {
            return Some(f.upd);
        }
        if f.rate <= 0.0 {
            return None;
        }
        let est = ((f.remaining - DONE_EPS) / f.rate * 1000.0).floor();
        let mut k = if est >= 2.0 { est as u64 - 1 } else { 0 };
        // Walk to the exact boundary of the eager predicate (the division
        // above is only a seed; f64 rounding can misplace it by one).
        loop {
            if f.remaining - f.rate * (k as f64 / 1000.0) < DONE_EPS {
                break;
            }
            k += 1;
        }
        Some(f.upd + SimDuration::from_millis(k))
    }

    /// Projected completion instant of `f` given its current rate: the
    /// ceil-to-ms the eager version reported from `next_completion`.
    fn projection_of(&self, f: &Flow) -> Option<SimTime> {
        if f.remaining < DONE_EPS {
            return Some(f.upd);
        }
        if f.rate <= 0.0 {
            return None;
        }
        let secs = f.remaining / f.rate;
        // Round *up* to the next millisecond so that progressing to the
        // scheduled instant always drains the flow below DONE_EPS.
        let ms = (secs * 1000.0).ceil().max(1.0);
        Some(f.upd + SimDuration::from_millis(ms as u64))
    }

    /// Push fresh heap entries for `f` after a rate change (its `gen` must
    /// already be bumped).
    fn schedule_flow(&mut self, p: usize) {
        let f = &self.flows[p];
        if let Some(t) = self.crossing_of(f) {
            self.crossings.push(Reverse((t, f.id.0, f.gen)));
        }
        if let Some(t) = self.projection_of(f) {
            self.projections.push(Reverse((t, f.id.0, f.gen)));
        }
    }

    fn entry_valid(&self, id: u64, gen: u32) -> bool {
        match self.flow_pos.get(id as usize) {
            Some(&p) if p != NO_FLOW => self.flows[p as usize].gen == gen,
            _ => false,
        }
    }

    /// Drop stale heads so `next_completion` (a `&self` method) can peek
    /// in O(1), and rebuild the heaps outright if stale entries dominate.
    fn settle_heaps(&mut self) {
        while let Some(&Reverse((_, id, gen))) = self.projections.peek() {
            if self.entry_valid(id, gen) {
                break;
            }
            self.projections.pop();
        }
        let cap = 64 + 16 * self.flows.len();
        if self.projections.len() > cap || self.crossings.len() > cap {
            self.projections.clear();
            self.crossings.clear();
            for p in 0..self.flows.len() {
                self.schedule_flow(p);
            }
        }
    }

    /// Detach `flows[p]` from its links' membership lists.
    fn detach_links(&mut self, p: usize) {
        let links_len = self.flows[p].links_len as usize;
        for k in 0..links_len {
            let l = self.flows[p].links[k] as usize;
            let pos = self.flows[p].link_pos[k] as usize;
            self.links[l].flows_on.swap_remove(pos);
            if pos < self.links[l].flows_on.len() {
                // Another flow's entry moved into `pos`: fix its back-pointer.
                let moved = self.links[l].flows_on[pos] as usize;
                let g = &mut self.flows[moved];
                for k2 in 0..g.links_len as usize {
                    if g.links[k2] as usize == l {
                        g.link_pos[k2] = pos as u32;
                        break;
                    }
                }
            }
        }
    }

    /// Remove `flows[p]` (swap-remove, like the eager version) keeping the
    /// id → position and link membership tables consistent.
    fn remove_flow_at(&mut self, p: usize) -> Flow {
        self.detach_links(p);
        let f = self.flows.swap_remove(p);
        self.flow_pos[f.id.0 as usize] = NO_FLOW;
        if p < self.flows.len() {
            // The former tail now lives at `p`: update both tables.
            let id = self.flows[p].id.0 as usize;
            self.flow_pos[id] = p as u32;
            let links_len = self.flows[p].links_len as usize;
            for k in 0..links_len {
                let l = self.flows[p].links[k] as usize;
                let pos = self.flows[p].link_pos[k] as usize;
                self.links[l].flows_on[pos] = p as u32;
            }
        }
        f
    }

    /// Collect the union of connected components reachable from `seeds`
    /// (link ids) into `scratch_flows` as flow positions, ascending.
    fn collect_component(&mut self, seed_links: &[LinkId]) {
        self.mark_gen += 1;
        let stamp = self.mark_gen;
        if self.flow_mark.len() < self.flows.len() {
            self.flow_mark.resize(self.flows.len(), 0);
        }
        self.scratch_flows.clear();
        self.scratch_links.clear();
        let mut frontier = 0usize;
        for &l in seed_links {
            if self.link_mark[l as usize] != stamp {
                self.link_mark[l as usize] = stamp;
                self.scratch_links.push(l);
            }
        }
        while frontier < self.scratch_links.len() {
            let l = self.scratch_links[frontier] as usize;
            frontier += 1;
            for i in 0..self.links[l].flows_on.len() {
                let p = self.links[l].flows_on[i];
                if self.flow_mark[p as usize] == stamp {
                    continue;
                }
                self.flow_mark[p as usize] = stamp;
                self.scratch_flows.push(p);
                let f = &self.flows[p as usize];
                for k in 0..f.links_len as usize {
                    let fl = f.links[k];
                    if self.link_mark[fl as usize] != stamp {
                        self.link_mark[fl as usize] = stamp;
                        self.scratch_links.push(fl);
                    }
                }
            }
        }
        self.scratch_flows.sort_unstable();
    }

    /// Max-min fair progressive filling over the given flow positions
    /// (ascending — the same relative order the global pass used). Each
    /// round freezes *every* link currently at the minimum fair share — in
    /// homogeneous clusters (all NICs equal) that collapses thousands of
    /// tie-broken rounds into a handful. Rebases each touched flow to
    /// `last_update` and refreshes its heap entries.
    fn recompute_for(&mut self, members: &[u32]) {
        self.recompute_work += members.len() as u64;
        let n = members.len();
        if n == 0 {
            return;
        }
        // Local dense link table in first-touch order (matches the relative
        // enumeration order of the global pass; see module docs).
        self.mark_gen += 1;
        let stamp = self.mark_gen;
        let mut residual: Vec<f64> = Vec::new();
        let mut unfrozen_on: Vec<u32> = Vec::new();
        let mut flows_on: Vec<Vec<u32>> = Vec::new();
        let mut flow_links: Vec<[u32; MAX_PATH]> = vec![[u32::MAX; MAX_PATH]; n];
        let mut frozen: Vec<bool> = vec![false; n];
        let mut rates: Vec<f64> = vec![0.0; n];
        let mut n_unfrozen = 0usize;

        // `link_mark[l] == stamp` ⇔ l already interned locally, with its
        // local id in `link_local[l]`. First-touch assignment order matches
        // the relative link-enumeration order of a global pass.
        for (i, &p) in members.iter().enumerate() {
            let f = &self.flows[p as usize];
            debug_assert!(f.links_len > 0, "loopback flows have no component");
            n_unfrozen += 1;
            for (k, &gl) in f.links.iter().enumerate().take(f.links_len as usize) {
                let lid = if self.link_mark[gl as usize] == stamp {
                    self.link_local[gl as usize]
                } else {
                    self.link_mark[gl as usize] = stamp;
                    let l = residual.len() as u32;
                    self.link_local[gl as usize] = l;
                    residual.push(self.cap_of(self.links[gl as usize].key));
                    unfrozen_on.push(0);
                    flows_on.push(Vec::new());
                    l
                };
                flow_links[i][k] = lid;
                unfrozen_on[lid as usize] += 1;
                flows_on[lid as usize].push(i as u32);
            }
        }

        while n_unfrozen > 0 {
            // Minimum fair share among links still carrying unfrozen flows.
            let mut min_share = f64::INFINITY;
            for id in 0..residual.len() {
                let c = unfrozen_on[id];
                if c == 0 {
                    continue;
                }
                let share = residual[id].max(0.0) / c as f64;
                if share < min_share {
                    min_share = share;
                }
            }
            if !min_share.is_finite() {
                break;
            }
            let cutoff = min_share * (1.0 + 1e-9) + 1e-9;
            // Freeze flows on every link at the minimum share.
            let mut froze_any = false;
            for id in 0..residual.len() {
                let c = unfrozen_on[id];
                if c == 0 {
                    continue;
                }
                let share = residual[id].max(0.0) / c as f64;
                if share > cutoff {
                    continue;
                }
                // Iterate a snapshot: freezing mutates unfrozen counts.
                let snapshot = std::mem::take(&mut flows_on[id]);
                for &fi in &snapshot {
                    let fi = fi as usize;
                    if frozen[fi] {
                        continue;
                    }
                    rates[fi] = min_share;
                    frozen[fi] = true;
                    n_unfrozen -= 1;
                    froze_any = true;
                    for &lid in &flow_links[fi] {
                        if lid == u32::MAX {
                            break;
                        }
                        residual[lid as usize] -= min_share;
                        unfrozen_on[lid as usize] -= 1;
                    }
                }
            }
            if !froze_any {
                break; // numerical safety: should be unreachable
            }
        }

        // Rebase every touched flow to `last_update`, apply the new rates,
        // and refresh its predicted instants.
        let now = self.last_update;
        for (i, &p) in members.iter().enumerate() {
            let f = &mut self.flows[p as usize];
            f.remaining = if now > f.upd {
                f.remaining - f.rate * now.saturating_since(f.upd).as_secs_f64()
            } else {
                f.remaining
            };
            f.upd = now;
            f.rate = rates[i];
            f.gen = f.gen.wrapping_add(1);
            self.schedule_flow(p as usize);
        }
    }

    /// Advance the clock to `now`, harvesting every flow whose predicted
    /// crossing has passed. Completions are emitted in exactly the order
    /// the eager ascending swap-remove scan produced, and each touched
    /// component is re-waterfilled once.
    fn progress_to(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "time went backwards");
        self.last_update = now;
        let mut due: BTreeSet<u32> = BTreeSet::new();
        while let Some(&Reverse((t, id, gen))) = self.crossings.peek() {
            if t > now {
                break;
            }
            self.crossings.pop();
            if self.entry_valid(id, gen) {
                due.insert(self.flow_pos[id as usize]);
            }
        }
        if due.is_empty() {
            return;
        }
        self.scratch_links.clear();
        let mut dirty: Vec<LinkId> = std::mem::take(&mut self.scratch_links);
        // Emulate the eager scan: ascending index, and when the swapped-in
        // tail flow is itself done, re-check slot `p` immediately.
        while let Some(p) = due.pop_first() {
            let p = p as usize;
            let tail = self.flows.len() - 1;
            let f = self.remove_flow_at(p);
            for k in 0..f.links_len as usize {
                dirty.push(f.links[k]);
            }
            self.tracer.emit(|| {
                TraceEvent::new(Layer::Net, "flow_end")
                    .with("flow", f.id.0)
                    .with("outcome", "completed")
            });
            self.finished.push(FlowEnd {
                id: f.id,
                tag: f.tag,
                src: f.src,
                dst: f.dst,
                outcome: FlowOutcome::Completed,
            });
            if p != tail && due.remove(&(tail as u32)) {
                due.insert(p as u32);
            }
        }
        if !dirty.is_empty() {
            self.recomputes += 1;
            let seeds = std::mem::take(&mut dirty);
            self.collect_component(&seeds);
            let members = std::mem::take(&mut self.scratch_flows);
            self.recompute_for(&members);
            self.scratch_flows = members;
            self.scratch_links = seeds;
        } else {
            self.scratch_links = dirty;
        }
    }

    fn push_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
        diffuse_src: bool,
    ) -> FlowId {
        assert!(
            self.site_of(src).is_some() && self.site_of(dst).is_some(),
            "both endpoints must be registered"
        );
        self.progress_to(now);
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        let (links, links_len) = self.path_for(src, dst, diffuse_src);
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Net, "flow_start")
                .with("flow", id.0)
                .with("src", src.0)
                .with("dst", dst.0)
                .with("bytes", bytes)
                .with("wan", self.site_of(src) != self.site_of(dst))
        });
        let p = self.flows.len();
        let mut link_pos = [0u32; MAX_PATH];
        for k in 0..links_len as usize {
            let l = links[k] as usize;
            link_pos[k] = self.links[l].flows_on.len() as u32;
            self.links[l].flows_on.push(p as u32);
        }
        self.flows.push(Flow {
            id,
            tag,
            src,
            dst,
            links,
            links_len,
            link_pos,
            remaining: bytes as f64,
            rate: if links_len == 0 {
                self.params.loopback
            } else {
                0.0
            },
            upd: now,
            gen: 0,
        });
        self.flow_pos.push(p as u32);
        debug_assert_eq!(self.flow_pos.len() as u64, self.next_flow_id);
        if links_len == 0 {
            // Loopback: fixed rate, no shared capacity — no recompute.
            self.schedule_flow(p);
        } else {
            self.recomputes += 1;
            self.collect_component(&links[..links_len as usize]);
            let members = std::mem::take(&mut self.scratch_flows);
            self.recompute_for(&members);
            self.scratch_flows = members;
        }
        self.settle_heaps();
        id
    }
}

impl hog_sim_core::Auditable for FluidNet {
    /// Flow-conservation / feasibility audit: every active flow must have
    /// a finite non-negative rate and positive remaining bytes, both
    /// endpoints must be registered, and the summed rate over each shared
    /// link must not exceed its (possibly WAN-degraded) capacity.
    fn audit(&self) -> Vec<hog_sim_core::Violation> {
        use hog_sim_core::Violation;
        let mut out = Vec::new();
        let mut load: HashMap<LinkKey, f64> = HashMap::new();
        for f in &self.flows {
            if !f.rate.is_finite() || f.rate < 0.0 {
                out.push(Violation::new(
                    "net",
                    format!("flow {} has invalid rate {}", f.id.0, f.rate),
                ));
            }
            let rem = self.rem_at(f, self.last_update);
            if rem.is_nan() || rem <= 0.0 {
                out.push(Violation::new(
                    "net",
                    format!("flow {} remains active with {} bytes left", f.id.0, rem),
                ));
            }
            for end in [f.src, f.dst] {
                if self.site_of(end).is_none() {
                    out.push(Violation::new(
                        "net",
                        format!("flow {} touches unregistered node {}", f.id.0, end.0),
                    ));
                }
            }
            for k in 0..f.links_len as usize {
                *load
                    .entry(self.links[f.links[k] as usize].key)
                    .or_insert(0.0) += f.rate;
            }
        }
        for (l, used) in &load {
            let cap = self.cap_of(*l);
            if *used > cap * (1.0 + 1e-6) + 1.0 {
                out.push(Violation::new(
                    "net",
                    format!("link {l:?} oversubscribed: {used:.1} B/s on {cap:.1} B/s"),
                ));
            }
        }
        out
    }
}

impl Network for FluidNet {
    fn register_node(&mut self, node: NodeId, site: SiteId) {
        let idx = node.0 as usize;
        if self.site_of_node.len() <= idx {
            self.site_of_node.resize(idx + 1, NO_SITE);
        }
        self.site_of_node[idx] = site.0;
    }

    fn remove_node(&mut self, now: SimTime, node: NodeId) -> Vec<FlowEnd> {
        self.progress_to(now);
        let mut killed = Vec::new();
        self.scratch_links.clear();
        let mut dirty: Vec<LinkId> = std::mem::take(&mut self.scratch_links);
        let mut i = 0;
        while i < self.flows.len() {
            if self.flows[i].src == node || self.flows[i].dst == node {
                let f = self.remove_flow_at(i);
                for k in 0..f.links_len as usize {
                    dirty.push(f.links[k]);
                }
                self.tracer.emit(|| {
                    TraceEvent::new(Layer::Net, "flow_end")
                        .with("flow", f.id.0)
                        .with("outcome", "killed")
                        .with("node", node.0)
                });
                killed.push(FlowEnd {
                    id: f.id,
                    tag: f.tag,
                    src: f.src,
                    dst: f.dst,
                    outcome: FlowOutcome::Killed,
                });
            } else {
                i += 1;
            }
        }
        if let Some(s) = self.site_of_node.get_mut(node.0 as usize) {
            *s = NO_SITE;
        }
        if !dirty.is_empty() {
            self.recomputes += 1;
            let seeds = std::mem::take(&mut dirty);
            self.collect_component(&seeds);
            let members = std::mem::take(&mut self.scratch_flows);
            self.recompute_for(&members);
            self.scratch_flows = members;
            self.scratch_links = seeds;
        } else {
            self.scratch_links = dirty;
        }
        self.settle_heaps();
        killed
    }

    fn latency(&self, src: NodeId, dst: NodeId) -> SimDuration {
        if src == dst {
            return SimDuration::ZERO;
        }
        match (self.site_of(src), self.site_of(dst)) {
            (Some(a), Some(b)) if a == b => self.params.intra_site_latency,
            _ => self.params.inter_site_latency,
        }
    }

    fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> FlowId {
        self.push_flow(now, src, dst, bytes, tag, false)
    }

    fn start_flow_diffuse(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> FlowId {
        self.push_flow(now, src, dst, bytes, tag, true)
    }

    fn cancel_flow(&mut self, now: SimTime, id: FlowId) {
        self.progress_to(now);
        let p = match self.flow_pos.get(id.0 as usize) {
            Some(&p) if p != NO_FLOW => p as usize,
            _ => return,
        };
        let f = self.remove_flow_at(p);
        if f.links_len > 0 {
            self.recomputes += 1;
            self.collect_component(&f.links[..f.links_len as usize]);
            let members = std::mem::take(&mut self.scratch_flows);
            self.recompute_for(&members);
            self.scratch_flows = members;
        }
        self.settle_heaps();
    }

    fn advance(&mut self, now: SimTime) -> Vec<FlowEnd> {
        let mut out = Vec::new();
        self.advance_into(now, &mut out);
        out
    }

    fn advance_into(&mut self, now: SimTime, out: &mut Vec<FlowEnd>) {
        self.progress_to(now);
        self.settle_heaps();
        out.append(&mut self.finished);
    }

    fn next_completion(&self) -> Option<SimTime> {
        if !self.finished.is_empty() {
            return Some(self.last_update);
        }
        // `settle_heaps` ran at the end of every mutating call, so the top
        // entry (if any) is live.
        self.projections.peek().map(|&Reverse((t, _, _))| t)
    }

    fn active_flows(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hog_sim_core::units::{gbit_per_s, MIB};
    use proptest::prelude::*;

    fn two_site_net() -> (FluidNet, Vec<NodeId>, Vec<NodeId>) {
        let mut net = FluidNet::new(NetParams::grid_default());
        let s0 = SiteId(0);
        let s1 = SiteId(1);
        let a: Vec<NodeId> = (0..4).map(NodeId).collect();
        let b: Vec<NodeId> = (4..8).map(NodeId).collect();
        for &n in &a {
            net.register_node(n, s0);
        }
        for &n in &b {
            net.register_node(n, s1);
        }
        (net, a, b)
    }

    /// Drain the network to completion, returning (time, ends).
    fn drain(net: &mut FluidNet) -> Vec<(SimTime, FlowEnd)> {
        let mut out = Vec::new();
        while let Some(t) = net.next_completion() {
            for e in net.advance(t) {
                out.push((t, e));
            }
        }
        out
    }

    #[test]
    fn single_intra_site_flow_runs_at_nic_speed() {
        let (mut net, a, _) = two_site_net();
        // 125 MB at 1 Gbps = 1.0 s
        net.start_flow(SimTime::ZERO, a[0], a[1], 125_000_000, 1);
        let ends = drain(&mut net);
        assert_eq!(ends.len(), 1);
        let (t, e) = ends[0];
        assert_eq!(e.outcome, FlowOutcome::Completed);
        assert_eq!(e.tag, 1);
        let secs = t.as_secs_f64();
        assert!((secs - 1.0).abs() < 0.01, "took {secs}s, expected ~1s");
    }

    #[test]
    fn two_flows_share_the_source_nic() {
        let (mut net, a, _) = two_site_net();
        net.start_flow(SimTime::ZERO, a[0], a[1], 125_000_000, 1);
        net.start_flow(SimTime::ZERO, a[0], a[2], 125_000_000, 2);
        // Both share a0's 1 Gbps uplink -> 0.5 Gbps each -> ~2 s.
        let ends = drain(&mut net);
        assert_eq!(ends.len(), 2);
        for (t, _) in ends {
            assert!((t.as_secs_f64() - 2.0).abs() < 0.02);
        }
    }

    #[test]
    fn inter_site_flows_bottleneck_on_site_uplink() {
        let (mut net, a, b) = two_site_net();
        // 8 cross-site flows from 4 distinct sources (2 each). Site uplink
        // is 5 Gbps, NICs are 1 Gbps: per-source NIC is the bottleneck at
        // 0.5 Gbps per flow (8 * 0.5 = 4 < 5).
        for (i, (&src, &dst)) in a.iter().cycle().zip(b.iter().cycle()).take(8).enumerate() {
            net.start_flow(SimTime::ZERO, src, dst, 62_500_000, i as u64);
        }
        let r = net.rate_of(FlowId(0)).unwrap();
        assert!((r - gbit_per_s(0.5)).abs() < 1.0, "rate {r}");
    }

    #[test]
    fn many_sources_saturate_site_uplink() {
        let mut net = FluidNet::new(NetParams::grid_default());
        let s0 = SiteId(0);
        let s1 = SiteId(1);
        // 12 sources at s0, 12 sinks at s1 => demand 12 Gbps > 6 Gbps uplink.
        for i in 0..12 {
            net.register_node(NodeId(i), s0);
            net.register_node(NodeId(100 + i), s1);
        }
        for i in 0..12 {
            net.start_flow(
                SimTime::ZERO,
                NodeId(i),
                NodeId(100 + i),
                10 * MIB,
                i as u64,
            );
        }
        let share = NetParams::grid_default().site_up / 12.0;
        for i in 0..12 {
            let r = net.rate_of(FlowId(i)).unwrap();
            assert!(
                (r - share).abs() < 1.0,
                "flow {i} should get 1/12 of the site uplink, got {r}"
            );
        }
    }

    #[test]
    fn textbook_max_min_example() {
        // One slow flow crossing the WAN plus one fast intra-site flow on
        // disjoint links: the intra-site flow must not be throttled.
        let (mut net, a, b) = two_site_net();
        net.start_flow(SimTime::ZERO, a[0], b[0], 100 * MIB, 0);
        net.start_flow(SimTime::ZERO, a[2], a[3], 100 * MIB, 1);
        let r0 = net.rate_of(FlowId(0)).unwrap();
        let r1 = net.rate_of(FlowId(1)).unwrap();
        assert!((r0 - gbit_per_s(1.0)).abs() < 1.0);
        assert!((r1 - gbit_per_s(1.0)).abs() < 1.0);
    }

    #[test]
    fn diffuse_flows_skip_source_nic() {
        let (mut net, a, b) = two_site_net();
        // Two diffuse cross-site flows sharing one representative source:
        // with a normal source they'd halve the 1 Gbps NIC; diffuse they
        // only share the 5 Gbps site uplink and distinct receiver NICs, so
        // each gets a full 1 Gbps (receiver-limited).
        net.start_flow_diffuse(SimTime::ZERO, a[0], b[0], 100 * MIB, 0);
        net.start_flow_diffuse(SimTime::ZERO, a[0], b[1], 100 * MIB, 1);
        for i in 0..2 {
            let r = net.rate_of(FlowId(i)).unwrap();
            assert!((r - gbit_per_s(1.0)).abs() < 1.0, "flow {i} rate {r}");
        }
        // Intra-site diffuse: only the receiver NIC constrains.
        net.start_flow_diffuse(SimTime::ZERO, a[1], a[2], 100 * MIB, 2);
        net.start_flow(SimTime::ZERO, a[3], a[2], 100 * MIB, 3);
        // Both share a2's downlink NIC: 0.5 Gbps each.
        let r2 = net.rate_of(FlowId(2)).unwrap();
        assert!((r2 - gbit_per_s(0.5)).abs() < 1.0, "rate {r2}");
    }

    #[test]
    fn loopback_flows_use_loopback_rate() {
        let (mut net, a, _) = two_site_net();
        net.start_flow(SimTime::ZERO, a[0], a[0], 100 * MIB, 0);
        let r = net.rate_of(FlowId(0)).unwrap();
        assert_eq!(r, NetParams::grid_default().loopback);
    }

    #[test]
    fn completion_frees_bandwidth_for_survivors() {
        let (mut net, a, _) = two_site_net();
        // Short and long flow share a0's NIC.
        net.start_flow(SimTime::ZERO, a[0], a[1], 62_500_000, 0); // 0.5 Gb-s worth
        net.start_flow(SimTime::ZERO, a[0], a[2], 250_000_000, 1);
        // Phase 1: both at 0.5 Gbps. Short one (62.5 MB) finishes at t=1s.
        let t1 = net.next_completion().unwrap();
        assert!((t1.as_secs_f64() - 1.0).abs() < 0.01);
        let ends = net.advance(t1);
        assert_eq!(ends.len(), 1);
        assert_eq!(ends[0].tag, 0);
        // Survivor now gets the full NIC: 250-62.5=187.5 MB left at 1 Gbps
        // -> finishes 1.5 s later.
        let t2 = net.next_completion().unwrap();
        assert!((t2.as_secs_f64() - 2.5).abs() < 0.02, "t2={t2}");
    }

    #[test]
    fn remove_node_kills_its_flows() {
        let (mut net, a, b) = two_site_net();
        net.start_flow(SimTime::ZERO, a[0], b[0], 100 * MIB, 7);
        net.start_flow(SimTime::ZERO, a[1], a[2], 100 * MIB, 8);
        let killed = net.remove_node(SimTime::from_millis(10), a[0]);
        assert_eq!(killed.len(), 1);
        assert_eq!(killed[0].tag, 7);
        assert_eq!(killed[0].outcome, FlowOutcome::Killed);
        assert_eq!(net.active_flows(), 1);
    }

    #[test]
    fn cancel_is_silent_and_idempotent() {
        let (mut net, a, _) = two_site_net();
        let id = net.start_flow(SimTime::ZERO, a[0], a[1], 100 * MIB, 0);
        net.cancel_flow(SimTime::from_millis(5), id);
        net.cancel_flow(SimTime::from_millis(6), id); // unknown now: ignored
        assert_eq!(net.active_flows(), 0);
        assert!(net.advance(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let (mut net, a, _) = two_site_net();
        net.start_flow(SimTime::from_secs(1), a[0], a[1], 0, 3);
        let t = net.next_completion().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        let ends = net.advance(t);
        assert_eq!(ends.len(), 1);
        assert_eq!(ends[0].outcome, FlowOutcome::Completed);
    }

    #[test]
    fn latency_classes() {
        let (net, a, b) = two_site_net();
        let p = NetParams::grid_default();
        assert_eq!(net.latency(a[0], a[1]), p.intra_site_latency);
        assert_eq!(net.latency(a[0], b[0]), p.inter_site_latency);
        assert_eq!(net.latency(a[0], a[0]), SimDuration::ZERO);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut net, a, b) = two_site_net();
            let mut trace = Vec::new();
            net.start_flow(SimTime::ZERO, a[0], b[0], 77 * MIB, 0);
            net.start_flow(SimTime::from_millis(300), a[1], b[1], 33 * MIB, 1);
            net.start_flow(SimTime::from_millis(700), a[0], a[2], 10 * MIB, 2);
            for (t, e) in drain(&mut net) {
                trace.push((t.as_millis(), e.tag));
            }
            trace
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn rate_of_and_cancel_after_many_swaps() {
        // Exercise the FlowId → position table across interleaved removals
        // (swap_remove reshuffles positions aggressively).
        let (mut net, a, b) = two_site_net();
        let mut ids = Vec::new();
        for i in 0..6 {
            ids.push(net.start_flow(
                SimTime::ZERO,
                a[(i % 4) as usize],
                b[((i + 1) % 4) as usize],
                100 * MIB,
                i,
            ));
        }
        net.cancel_flow(SimTime::from_millis(1), ids[0]);
        net.cancel_flow(SimTime::from_millis(2), ids[3]);
        assert!(net.rate_of(ids[0]).is_none());
        assert!(net.rate_of(ids[3]).is_none());
        for &id in &[ids[1], ids[2], ids[4], ids[5]] {
            assert!(net.rate_of(id).unwrap() > 0.0);
        }
        assert_eq!(net.active_flows(), 4);
    }

    /// From-scratch waterfilling oracle, written independently of the
    /// incremental implementation: classic per-round progressive filling
    /// over (path, capacity) tuples.
    fn oracle_rates(
        paths: &[Vec<String>],
        caps: &std::collections::HashMap<String, f64>,
        loopback: f64,
    ) -> Vec<f64> {
        let n = paths.len();
        let mut rates = vec![0.0f64; n];
        let mut frozen = vec![false; n];
        for (i, p) in paths.iter().enumerate() {
            if p.is_empty() {
                rates[i] = loopback;
                frozen[i] = true;
            }
        }
        let mut residual: std::collections::HashMap<String, f64> = caps.clone();
        loop {
            // Share of each link over its unfrozen flows.
            let mut best: Option<f64> = None;
            for (l, &cap) in &residual {
                let users = paths
                    .iter()
                    .enumerate()
                    .filter(|(i, p)| !frozen[*i] && p.contains(l))
                    .count();
                if users == 0 {
                    continue;
                }
                let share = cap.max(0.0) / users as f64;
                best = Some(match best {
                    Some(b) if b <= share => b,
                    _ => share,
                });
            }
            let Some(min_share) = best else { break };
            let cutoff = min_share * (1.0 + 1e-9) + 1e-9;
            let mut froze = Vec::new();
            for (l, &cap) in &residual {
                let users: Vec<usize> = paths
                    .iter()
                    .enumerate()
                    .filter(|(i, p)| !frozen[*i] && p.contains(l))
                    .map(|(i, _)| i)
                    .collect();
                if users.is_empty() {
                    continue;
                }
                let share = cap.max(0.0) / users.len() as f64;
                if share <= cutoff {
                    froze.extend(users);
                }
            }
            froze.sort_unstable();
            froze.dedup();
            if froze.is_empty() {
                break;
            }
            for i in froze {
                if frozen[i] {
                    continue;
                }
                frozen[i] = true;
                rates[i] = min_share;
                for l in &paths[i] {
                    *residual.get_mut(l).unwrap() -= min_share;
                }
            }
        }
        rates
    }

    /// Human-readable link names for the oracle, mirroring `path_for`.
    fn oracle_path(src: u32, dst: u32, site_of: impl Fn(u32) -> u16) -> Vec<String> {
        if src == dst {
            return Vec::new();
        }
        let (ss, ds) = (site_of(src), site_of(dst));
        if ss == ds {
            vec![format!("up{src}"), format!("down{dst}")]
        } else {
            vec![
                format!("up{src}"),
                format!("su{ss}"),
                format!("sd{ds}"),
                format!("down{dst}"),
            ]
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Invariant: after any sequence of flow starts, per-link committed
        /// bandwidth never exceeds capacity and every flow has a positive
        /// rate (work conservation: rates are only zero if a link is dead).
        #[test]
        fn prop_rates_feasible(specs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..200_000_000), 1..40)) {
            let (mut net, _, _) = two_site_net();
            for (i, &(s, d, bytes)) in specs.iter().enumerate() {
                net.start_flow(SimTime::ZERO, NodeId(s), NodeId(d), bytes, i as u64);
            }
            // Reconstruct link loads from the flow table.
            let mut loads: std::collections::HashMap<String, f64> = Default::default();
            let p = *net.params();
            for (i, &(s, d, _)) in specs.iter().enumerate() {
                let id = FlowId(i as u64);
                if let Some(r) = net.rate_of(id) {
                    prop_assert!(r > 0.0, "flow {} starved", i);
                    if s == d { continue; }
                    *loads.entry(format!("up{s}")).or_default() += r;
                    *loads.entry(format!("down{d}")).or_default() += r;
                    let ss = if s < 4 {0} else {1};
                    let ds = if d < 4 {0} else {1};
                    if ss != ds {
                        *loads.entry(format!("siteup{ss}")).or_default() += r;
                        *loads.entry(format!("sitedown{ds}")).or_default() += r;
                    }
                }
            }
            for (k, v) in loads {
                let cap = if k.starts_with("site") { p.site_up } else { p.nic_up };
                prop_assert!(v <= cap * 1.0001, "link {} overloaded: {} > {}", k, v, cap);
            }
        }

        /// All flows eventually complete, exactly once each.
        #[test]
        fn prop_all_flows_complete(specs in proptest::collection::vec((0u32..8, 0u32..8, 0u64..50_000_000, 0u64..5_000u64), 1..30)) {
            let (mut net, _, _) = two_site_net();
            let mut last_start = SimTime::ZERO;
            for (i, &(s, d, bytes, delay)) in specs.iter().enumerate() {
                let t = last_start + hog_sim_core::SimDuration::from_millis(delay);
                last_start = t;
                net.start_flow(t, NodeId(s), NodeId(d), bytes, i as u64);
            }
            let ends = drain(&mut net);
            prop_assert_eq!(ends.len(), specs.len());
            let mut tags: Vec<u64> = ends.iter().map(|(_, e)| e.tag).collect();
            tags.sort_unstable();
            prop_assert_eq!(tags, (0..specs.len() as u64).collect::<Vec<_>>());
            // Times are non-decreasing as produced by drain().
            let times: Vec<u64> = ends.iter().map(|(t, _)| t.as_millis()).collect();
            prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }

    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        /// Oracle equivalence: after an arbitrary interleaving of starts,
        /// cancellations, and WAN-factor changes, the incremental rates
        /// must match a from-scratch full waterfilling pass over the same
        /// surviving flow set, on both homogeneous and heterogeneous
        /// capacities, within 1e-9 relative.
        #[test]
        fn prop_incremental_matches_full_oracle(
            ops in proptest::collection::vec(
                (0u32..16, 0u32..16, 1u64..500_000_000, 0u8..10, 0u8..4),
                1..60,
            ),
            hetero_sel in 0u8..2,
            wan_move in 1u8..11,
        ) {
            let hetero = hetero_sel == 1;
            let mut params = NetParams::grid_default();
            if hetero {
                // Heterogeneous capacities: downlinks faster than uplinks,
                // asymmetric site pipes.
                params.nic_down = params.nic_up * 2.5;
                params.site_down = params.site_up * 0.6;
            }
            let loopback = params.loopback;
            let (nic_up, nic_down, site_up, site_down) =
                (params.nic_up, params.nic_down, params.site_up, params.site_down);
            let mut net = FluidNet::new(params);
            // 4 sites × 4 nodes.
            for n in 0..16u32 {
                net.register_node(NodeId(n), SiteId((n / 4) as u16));
            }
            let site_of = |n: u32| (n / 4) as u16;
            let mut wan = 1.0f64;
            let mut live: Vec<(FlowId, u32, u32)> = Vec::new(); // (id, src, dst)
            let mut now = SimTime::ZERO;
            for (step, &(src, dst, bytes, cancel_sel, op)) in ops.iter().enumerate() {
                now += SimDuration::from_millis(1); // keep ops ordered
                match op {
                    0 | 1 => {
                        let id = net.start_flow(now, NodeId(src), NodeId(dst), bytes, step as u64);
                        live.push((id, src, dst));
                    }
                    2 if !live.is_empty() => {
                        let idx = cancel_sel as usize % live.len();
                        let (id, _, _) = live.swap_remove(idx);
                        net.cancel_flow(now, id);
                    }
                    _ => {
                        wan = wan_move as f64 / 10.0;
                        net.set_wan_factor(now, wan);
                    }
                }
                // Drop any flows that completed during this op.
                for e in net.advance(now) {
                    live.retain(|&(id, _, _)| id != e.id);
                }
                // Oracle over the surviving flow set.
                let paths: Vec<Vec<String>> = live
                    .iter()
                    .map(|&(_, s, d)| oracle_path(s, d, site_of))
                    .collect();
                let mut caps = std::collections::HashMap::new();
                for n in 0..16u32 {
                    caps.insert(format!("up{n}"), nic_up);
                    caps.insert(format!("down{n}"), nic_down);
                }
                for s in 0..4u16 {
                    caps.insert(format!("su{s}"), site_up * wan);
                    caps.insert(format!("sd{s}"), site_down * wan);
                }
                let want = oracle_rates(&paths, &caps, loopback);
                for (k, &(id, s, d)) in live.iter().enumerate() {
                    let got = net.rate_of(id).unwrap();
                    let w = want[k];
                    prop_assert!(
                        (got - w).abs() <= 1e-9 * w.max(1.0),
                        "step {}: flow {}→{} rate {} != oracle {}",
                        step, s, d, got, w
                    );
                }
            }
        }
    }
}
