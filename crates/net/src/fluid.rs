//! Event-driven max-min fair fluid-flow network.
//!
//! Every in-flight transfer is a *fluid flow* with a current rate assigned
//! by progressive filling (water-filling) over the links it traverses:
//!
//! * intra-site flow: `src NIC up → dst NIC down`
//! * inter-site flow: `src NIC up → src site uplink → dst site downlink →
//!   dst NIC down`
//! * loopback (src == dst): a fixed unshared local-copy rate
//!
//! Whenever the flow set changes (start, cancel, completion, node death)
//! all flows are first progressed to the current instant with their old
//! rates and then rates are recomputed. This is the classic NS-style fluid
//! approximation: it captures the paper's key effects — WAN shuffle is slow
//! because many reducers share one site uplink, while intra-site traffic
//! only contends for NICs — without packet-level cost.
//!
//! Propagation latency is deliberately **not** folded into flow completion
//! times; bulk transfers are bandwidth-dominated and RPC latency is modelled
//! explicitly by the substrates via [`Network::latency`].

use crate::params::NetParams;
use crate::topology::{NodeId, SiteId};
use crate::{FlowEnd, FlowId, FlowOutcome, Network};
use hog_obs::{Layer, TraceEvent, Tracer};
use hog_sim_core::{SimDuration, SimTime};
use std::collections::HashMap;

/// One shared capacity on a flow's path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
enum LinkKey {
    NodeUp(NodeId),
    NodeDown(NodeId),
    SiteUp(SiteId),
    SiteDown(SiteId),
}

#[derive(Clone, Debug)]
struct Flow {
    id: FlowId,
    tag: u64,
    src: NodeId,
    dst: NodeId,
    /// Links this flow traverses (empty for loopback).
    path: Vec<LinkKey>,
    remaining: f64,
    rate: f64,
}

/// The fluid network model. See the module docs for semantics.
pub struct FluidNet {
    params: NetParams,
    sites_of: HashMap<NodeId, SiteId>,
    flows: Vec<Flow>,
    finished: Vec<FlowEnd>,
    last_update: SimTime,
    next_flow_id: u64,
    /// Number of rate recomputations performed (diagnostics / benches).
    recomputes: u64,
    /// WAN degradation multiplier applied to site up/downlink capacity
    /// (1.0 = healthy; chaos fault injection lowers it temporarily).
    wan_factor: f64,
    tracer: Tracer,
}

/// Completion threshold: a flow with fewer than this many bytes left is
/// done. Covers f64 rounding noise from progressing at millisecond grain.
const DONE_EPS: f64 = 0.5;

impl FluidNet {
    /// A fluid network with the given parameters.
    pub fn new(params: NetParams) -> Self {
        FluidNet {
            params,
            sites_of: HashMap::new(),
            flows: Vec::new(),
            finished: Vec::new(),
            last_update: SimTime::ZERO,
            next_flow_id: 0,
            recomputes: 0,
            wan_factor: 1.0,
            tracer: Tracer::disabled(),
        }
    }

    /// Attach the shared trace handle (disabled by default).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The parameters in use.
    pub fn params(&self) -> &NetParams {
        &self.params
    }

    /// Diagnostics: how many rate recomputations have run.
    pub fn recompute_count(&self) -> u64 {
        self.recomputes
    }

    /// The current rate of a flow, if it is still active (testing hook).
    pub fn rate_of(&self, id: FlowId) -> Option<f64> {
        self.flows.iter().find(|f| f.id == id).map(|f| f.rate)
    }

    fn cap_of(&self, link: LinkKey) -> f64 {
        match link {
            LinkKey::NodeUp(_) => self.params.nic_up,
            LinkKey::NodeDown(_) => self.params.nic_down,
            LinkKey::SiteUp(_) => self.params.site_up * self.wan_factor,
            LinkKey::SiteDown(_) => self.params.site_down * self.wan_factor,
        }
    }

    /// Scale every site up/downlink to `factor` × its configured capacity
    /// (chaos: WAN degradation window). `factor` is clamped to a small
    /// positive minimum so flows keep draining; `1.0` restores full
    /// bandwidth. In-flight flows are progressed to `now` first and their
    /// rates recomputed under the new capacities.
    pub fn set_wan_factor(&mut self, now: SimTime, factor: f64) {
        self.progress_to(now);
        self.wan_factor = factor.max(1e-3);
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Net, "wan_factor").with("factor", self.wan_factor)
        });
        self.recompute_rates();
    }

    /// The WAN degradation multiplier currently in force.
    pub fn wan_factor(&self) -> f64 {
        self.wan_factor
    }

    fn path_for(&self, src: NodeId, dst: NodeId, diffuse_src: bool) -> Vec<LinkKey> {
        if src == dst {
            return Vec::new();
        }
        let ss = self.sites_of[&src];
        let ds = self.sites_of[&dst];
        if ss == ds {
            if diffuse_src {
                vec![LinkKey::NodeDown(dst)]
            } else {
                vec![LinkKey::NodeUp(src), LinkKey::NodeDown(dst)]
            }
        } else if diffuse_src {
            vec![
                LinkKey::SiteUp(ss),
                LinkKey::SiteDown(ds),
                LinkKey::NodeDown(dst),
            ]
        } else {
            vec![
                LinkKey::NodeUp(src),
                LinkKey::SiteUp(ss),
                LinkKey::SiteDown(ds),
                LinkKey::NodeDown(dst),
            ]
        }
    }

    fn push_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
        diffuse_src: bool,
    ) -> FlowId {
        assert!(
            self.sites_of.contains_key(&src) && self.sites_of.contains_key(&dst),
            "both endpoints must be registered"
        );
        self.progress_to(now);
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        let path = self.path_for(src, dst, diffuse_src);
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Net, "flow_start")
                .with("flow", id.0)
                .with("src", src.0)
                .with("dst", dst.0)
                .with("bytes", bytes)
                .with("wan", self.sites_of[&src] != self.sites_of[&dst])
        });
        self.flows.push(Flow {
            id,
            tag,
            src,
            dst,
            path,
            remaining: bytes as f64,
            rate: 0.0,
        });
        self.recompute_rates();
        id
    }

    /// Drain progress for all flows up to `now` with the *current* rates,
    /// moving completed flows into the finished buffer.
    fn progress_to(&mut self, now: SimTime) {
        debug_assert!(now >= self.last_update, "time went backwards");
        let dt = (now.saturating_since(self.last_update)).as_secs_f64();
        self.last_update = now;
        if dt > 0.0 {
            for f in &mut self.flows {
                f.remaining -= f.rate * dt;
            }
        }
        let mut i = 0;
        let mut any_done = false;
        while i < self.flows.len() {
            if self.flows[i].remaining < DONE_EPS {
                let f = self.flows.swap_remove(i);
                self.tracer.emit(|| {
                    TraceEvent::new(Layer::Net, "flow_end")
                        .with("flow", f.id.0)
                        .with("outcome", "completed")
                });
                self.finished.push(FlowEnd {
                    id: f.id,
                    tag: f.tag,
                    src: f.src,
                    dst: f.dst,
                    outcome: FlowOutcome::Completed,
                });
                any_done = true;
            } else {
                i += 1;
            }
        }
        if any_done {
            self.recompute_rates();
        }
    }

    /// Max-min fair progressive filling over the links used by the active
    /// flow set. Loopback flows get the fixed loopback rate.
    ///
    /// Implementation notes (this runs on every flow-set change, so it is
    /// the hottest function of a large simulation): links are densely
    /// indexed per recompute, flow→link adjacency is built once, and each
    /// round freezes *every* link currently at the minimum fair share —
    /// in homogeneous clusters (all NICs equal) that collapses thousands
    /// of tie-broken rounds into a handful.
    fn recompute_rates(&mut self) {
        self.recomputes += 1;
        let n_flows = self.flows.len();
        // Dense link table.
        let mut link_ids: HashMap<LinkKey, u32> = HashMap::new();
        let mut residual: Vec<f64> = Vec::new();
        let mut unfrozen_on: Vec<u32> = Vec::new();
        let mut flows_on: Vec<Vec<u32>> = Vec::new();
        let mut flow_links: Vec<[u32; 4]> = vec![[u32::MAX; 4]; n_flows];
        let mut frozen: Vec<bool> = vec![false; n_flows];
        let mut n_unfrozen = 0usize;

        for (i, f) in self.flows.iter_mut().enumerate() {
            if f.path.is_empty() {
                f.rate = self.params.loopback;
                frozen[i] = true;
                continue;
            }
            n_unfrozen += 1;
            for (k, &l) in f.path.iter().enumerate() {
                let id = *link_ids.entry(l).or_insert_with(|| {
                    residual.push(0.0);
                    unfrozen_on.push(0);
                    flows_on.push(Vec::new());
                    (residual.len() - 1) as u32
                });
                flow_links[i][k] = id;
                unfrozen_on[id as usize] += 1;
                flows_on[id as usize].push(i as u32);
            }
        }
        for (l, &id) in &link_ids {
            residual[id as usize] = self.cap_of(*l);
        }

        while n_unfrozen > 0 {
            // Minimum fair share among links still carrying unfrozen flows.
            let mut min_share = f64::INFINITY;
            for id in 0..residual.len() {
                let n = unfrozen_on[id];
                if n == 0 {
                    continue;
                }
                let share = residual[id].max(0.0) / n as f64;
                if share < min_share {
                    min_share = share;
                }
            }
            if !min_share.is_finite() {
                break;
            }
            let cutoff = min_share * (1.0 + 1e-9) + 1e-9;
            // Freeze flows on every link at the minimum share.
            let mut froze_any = false;
            for id in 0..residual.len() {
                let n = unfrozen_on[id];
                if n == 0 {
                    continue;
                }
                let share = residual[id].max(0.0) / n as f64;
                if share > cutoff {
                    continue;
                }
                // Iterate a snapshot: freezing mutates unfrozen counts.
                let snapshot = std::mem::take(&mut flows_on[id]);
                for &fi in &snapshot {
                    let fi = fi as usize;
                    if frozen[fi] {
                        continue;
                    }
                    self.flows[fi].rate = min_share;
                    frozen[fi] = true;
                    n_unfrozen -= 1;
                    froze_any = true;
                    for &lid in &flow_links[fi] {
                        if lid == u32::MAX {
                            break;
                        }
                        residual[lid as usize] -= min_share;
                        unfrozen_on[lid as usize] -= 1;
                    }
                }
            }
            if !froze_any {
                break; // numerical safety: should be unreachable
            }
        }
    }

    /// Projected completion instant of flow `f` given its current rate.
    fn projected_finish(&self, f: &Flow) -> Option<SimTime> {
        if f.remaining < DONE_EPS {
            return Some(self.last_update);
        }
        if f.rate <= 0.0 {
            return None;
        }
        let secs = f.remaining / f.rate;
        // Round *up* to the next millisecond so that progressing to the
        // scheduled instant always drains the flow below DONE_EPS.
        let ms = (secs * 1000.0).ceil().max(1.0);
        Some(self.last_update + SimDuration::from_millis(ms as u64))
    }
}

impl hog_sim_core::Auditable for FluidNet {
    /// Flow-conservation / feasibility audit: every active flow must have
    /// a finite non-negative rate and positive remaining bytes, both
    /// endpoints must be registered, and the summed rate over each shared
    /// link must not exceed its (possibly WAN-degraded) capacity.
    fn audit(&self) -> Vec<hog_sim_core::Violation> {
        use hog_sim_core::Violation;
        let mut out = Vec::new();
        let mut load: HashMap<LinkKey, f64> = HashMap::new();
        for f in &self.flows {
            if !f.rate.is_finite() || f.rate < 0.0 {
                out.push(Violation::new(
                    "net",
                    format!("flow {} has invalid rate {}", f.id.0, f.rate),
                ));
            }
            if f.remaining.is_nan() || f.remaining <= 0.0 {
                out.push(Violation::new(
                    "net",
                    format!(
                        "flow {} remains active with {} bytes left",
                        f.id.0, f.remaining
                    ),
                ));
            }
            for end in [f.src, f.dst] {
                if !self.sites_of.contains_key(&end) {
                    out.push(Violation::new(
                        "net",
                        format!("flow {} touches unregistered node {}", f.id.0, end.0),
                    ));
                }
            }
            for l in &f.path {
                *load.entry(*l).or_insert(0.0) += f.rate;
            }
        }
        for (l, used) in &load {
            let cap = self.cap_of(*l);
            if *used > cap * (1.0 + 1e-6) + 1.0 {
                out.push(Violation::new(
                    "net",
                    format!("link {l:?} oversubscribed: {used:.1} B/s on {cap:.1} B/s"),
                ));
            }
        }
        out
    }
}

impl Network for FluidNet {
    fn register_node(&mut self, node: NodeId, site: SiteId) {
        self.sites_of.insert(node, site);
    }

    fn remove_node(&mut self, now: SimTime, node: NodeId) -> Vec<FlowEnd> {
        self.progress_to(now);
        let mut killed = Vec::new();
        let mut i = 0;
        while i < self.flows.len() {
            if self.flows[i].src == node || self.flows[i].dst == node {
                let f = self.flows.swap_remove(i);
                self.tracer.emit(|| {
                    TraceEvent::new(Layer::Net, "flow_end")
                        .with("flow", f.id.0)
                        .with("outcome", "killed")
                        .with("node", node.0)
                });
                killed.push(FlowEnd {
                    id: f.id,
                    tag: f.tag,
                    src: f.src,
                    dst: f.dst,
                    outcome: FlowOutcome::Killed,
                });
            } else {
                i += 1;
            }
        }
        self.sites_of.remove(&node);
        if !killed.is_empty() {
            self.recompute_rates();
        }
        killed
    }

    fn latency(&self, src: NodeId, dst: NodeId) -> SimDuration {
        if src == dst {
            return SimDuration::ZERO;
        }
        match (self.sites_of.get(&src), self.sites_of.get(&dst)) {
            (Some(a), Some(b)) if a == b => self.params.intra_site_latency,
            _ => self.params.inter_site_latency,
        }
    }

    fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> FlowId {
        self.push_flow(now, src, dst, bytes, tag, false)
    }

    fn start_flow_diffuse(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> FlowId {
        self.push_flow(now, src, dst, bytes, tag, true)
    }

    fn cancel_flow(&mut self, now: SimTime, id: FlowId) {
        self.progress_to(now);
        if let Some(pos) = self.flows.iter().position(|f| f.id == id) {
            self.flows.swap_remove(pos);
            self.recompute_rates();
        }
    }

    fn advance(&mut self, now: SimTime) -> Vec<FlowEnd> {
        self.progress_to(now);
        std::mem::take(&mut self.finished)
    }

    fn next_completion(&self) -> Option<SimTime> {
        if !self.finished.is_empty() {
            return Some(self.last_update);
        }
        self.flows
            .iter()
            .filter_map(|f| self.projected_finish(f))
            .min()
    }

    fn active_flows(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hog_sim_core::units::{gbit_per_s, MIB};
    use proptest::prelude::*;

    fn two_site_net() -> (FluidNet, Vec<NodeId>, Vec<NodeId>) {
        let mut net = FluidNet::new(NetParams::grid_default());
        let s0 = SiteId(0);
        let s1 = SiteId(1);
        let a: Vec<NodeId> = (0..4).map(NodeId).collect();
        let b: Vec<NodeId> = (4..8).map(NodeId).collect();
        for &n in &a {
            net.register_node(n, s0);
        }
        for &n in &b {
            net.register_node(n, s1);
        }
        (net, a, b)
    }

    /// Drain the network to completion, returning (time, ends).
    fn drain(net: &mut FluidNet) -> Vec<(SimTime, FlowEnd)> {
        let mut out = Vec::new();
        while let Some(t) = net.next_completion() {
            for e in net.advance(t) {
                out.push((t, e));
            }
        }
        out
    }

    #[test]
    fn single_intra_site_flow_runs_at_nic_speed() {
        let (mut net, a, _) = two_site_net();
        // 125 MB at 1 Gbps = 1.0 s
        net.start_flow(SimTime::ZERO, a[0], a[1], 125_000_000, 1);
        let ends = drain(&mut net);
        assert_eq!(ends.len(), 1);
        let (t, e) = ends[0];
        assert_eq!(e.outcome, FlowOutcome::Completed);
        assert_eq!(e.tag, 1);
        let secs = t.as_secs_f64();
        assert!((secs - 1.0).abs() < 0.01, "took {secs}s, expected ~1s");
    }

    #[test]
    fn two_flows_share_the_source_nic() {
        let (mut net, a, _) = two_site_net();
        net.start_flow(SimTime::ZERO, a[0], a[1], 125_000_000, 1);
        net.start_flow(SimTime::ZERO, a[0], a[2], 125_000_000, 2);
        // Both share a0's 1 Gbps uplink -> 0.5 Gbps each -> ~2 s.
        let ends = drain(&mut net);
        assert_eq!(ends.len(), 2);
        for (t, _) in ends {
            assert!((t.as_secs_f64() - 2.0).abs() < 0.02);
        }
    }

    #[test]
    fn inter_site_flows_bottleneck_on_site_uplink() {
        let (mut net, a, b) = two_site_net();
        // 8 cross-site flows from 4 distinct sources (2 each). Site uplink
        // is 5 Gbps, NICs are 1 Gbps: per-source NIC is the bottleneck at
        // 0.5 Gbps per flow (8 * 0.5 = 4 < 5).
        for (i, (&src, &dst)) in a.iter().cycle().zip(b.iter().cycle()).take(8).enumerate() {
            net.start_flow(SimTime::ZERO, src, dst, 62_500_000, i as u64);
        }
        let r = net.rate_of(FlowId(0)).unwrap();
        assert!((r - gbit_per_s(0.5)).abs() < 1.0, "rate {r}");
    }

    #[test]
    fn many_sources_saturate_site_uplink() {
        let mut net = FluidNet::new(NetParams::grid_default());
        let s0 = SiteId(0);
        let s1 = SiteId(1);
        // 12 sources at s0, 12 sinks at s1 => demand 12 Gbps > 6 Gbps uplink.
        for i in 0..12 {
            net.register_node(NodeId(i), s0);
            net.register_node(NodeId(100 + i), s1);
        }
        for i in 0..12 {
            net.start_flow(SimTime::ZERO, NodeId(i), NodeId(100 + i), 10 * MIB, i as u64);
        }
        let share = NetParams::grid_default().site_up / 12.0;
        for i in 0..12 {
            let r = net.rate_of(FlowId(i)).unwrap();
            assert!(
                (r - share).abs() < 1.0,
                "flow {i} should get 1/12 of the site uplink, got {r}"
            );
        }
    }

    #[test]
    fn textbook_max_min_example() {
        // One slow flow crossing the WAN plus one fast intra-site flow on
        // disjoint links: the intra-site flow must not be throttled.
        let (mut net, a, b) = two_site_net();
        net.start_flow(SimTime::ZERO, a[0], b[0], 100 * MIB, 0);
        net.start_flow(SimTime::ZERO, a[2], a[3], 100 * MIB, 1);
        let r0 = net.rate_of(FlowId(0)).unwrap();
        let r1 = net.rate_of(FlowId(1)).unwrap();
        assert!((r0 - gbit_per_s(1.0)).abs() < 1.0);
        assert!((r1 - gbit_per_s(1.0)).abs() < 1.0);
    }

    #[test]
    fn diffuse_flows_skip_source_nic() {
        let (mut net, a, b) = two_site_net();
        // Two diffuse cross-site flows sharing one representative source:
        // with a normal source they'd halve the 1 Gbps NIC; diffuse they
        // only share the 5 Gbps site uplink and distinct receiver NICs, so
        // each gets a full 1 Gbps (receiver-limited).
        net.start_flow_diffuse(SimTime::ZERO, a[0], b[0], 100 * MIB, 0);
        net.start_flow_diffuse(SimTime::ZERO, a[0], b[1], 100 * MIB, 1);
        for i in 0..2 {
            let r = net.rate_of(FlowId(i)).unwrap();
            assert!((r - gbit_per_s(1.0)).abs() < 1.0, "flow {i} rate {r}");
        }
        // Intra-site diffuse: only the receiver NIC constrains.
        net.start_flow_diffuse(SimTime::ZERO, a[1], a[2], 100 * MIB, 2);
        net.start_flow(SimTime::ZERO, a[3], a[2], 100 * MIB, 3);
        // Both share a2's downlink NIC: 0.5 Gbps each.
        let r2 = net.rate_of(FlowId(2)).unwrap();
        assert!((r2 - gbit_per_s(0.5)).abs() < 1.0, "rate {r2}");
    }

    #[test]
    fn loopback_flows_use_loopback_rate() {
        let (mut net, a, _) = two_site_net();
        net.start_flow(SimTime::ZERO, a[0], a[0], 100 * MIB, 0);
        let r = net.rate_of(FlowId(0)).unwrap();
        assert_eq!(r, NetParams::grid_default().loopback);
    }

    #[test]
    fn completion_frees_bandwidth_for_survivors() {
        let (mut net, a, _) = two_site_net();
        // Short and long flow share a0's NIC.
        net.start_flow(SimTime::ZERO, a[0], a[1], 62_500_000, 0); // 0.5 Gb-s worth
        net.start_flow(SimTime::ZERO, a[0], a[2], 250_000_000, 1);
        // Phase 1: both at 0.5 Gbps. Short one (62.5 MB) finishes at t=1s.
        let t1 = net.next_completion().unwrap();
        assert!((t1.as_secs_f64() - 1.0).abs() < 0.01);
        let ends = net.advance(t1);
        assert_eq!(ends.len(), 1);
        assert_eq!(ends[0].tag, 0);
        // Survivor now gets the full NIC: 250-62.5=187.5 MB left at 1 Gbps
        // -> finishes 1.5 s later.
        let t2 = net.next_completion().unwrap();
        assert!((t2.as_secs_f64() - 2.5).abs() < 0.02, "t2={t2}");
    }

    #[test]
    fn remove_node_kills_its_flows() {
        let (mut net, a, b) = two_site_net();
        net.start_flow(SimTime::ZERO, a[0], b[0], 100 * MIB, 7);
        net.start_flow(SimTime::ZERO, a[1], a[2], 100 * MIB, 8);
        let killed = net.remove_node(SimTime::from_millis(10), a[0]);
        assert_eq!(killed.len(), 1);
        assert_eq!(killed[0].tag, 7);
        assert_eq!(killed[0].outcome, FlowOutcome::Killed);
        assert_eq!(net.active_flows(), 1);
    }

    #[test]
    fn cancel_is_silent_and_idempotent() {
        let (mut net, a, _) = two_site_net();
        let id = net.start_flow(SimTime::ZERO, a[0], a[1], 100 * MIB, 0);
        net.cancel_flow(SimTime::from_millis(5), id);
        net.cancel_flow(SimTime::from_millis(6), id); // unknown now: ignored
        assert_eq!(net.active_flows(), 0);
        assert!(net.advance(SimTime::from_secs(10)).is_empty());
    }

    #[test]
    fn zero_byte_flow_completes_immediately() {
        let (mut net, a, _) = two_site_net();
        net.start_flow(SimTime::from_secs(1), a[0], a[1], 0, 3);
        let t = net.next_completion().unwrap();
        assert_eq!(t, SimTime::from_secs(1));
        let ends = net.advance(t);
        assert_eq!(ends.len(), 1);
        assert_eq!(ends[0].outcome, FlowOutcome::Completed);
    }

    #[test]
    fn latency_classes() {
        let (net, a, b) = two_site_net();
        let p = NetParams::grid_default();
        assert_eq!(net.latency(a[0], a[1]), p.intra_site_latency);
        assert_eq!(net.latency(a[0], b[0]), p.inter_site_latency);
        assert_eq!(net.latency(a[0], a[0]), SimDuration::ZERO);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let (mut net, a, b) = two_site_net();
            let mut trace = Vec::new();
            net.start_flow(SimTime::ZERO, a[0], b[0], 77 * MIB, 0);
            net.start_flow(SimTime::from_millis(300), a[1], b[1], 33 * MIB, 1);
            net.start_flow(SimTime::from_millis(700), a[0], a[2], 10 * MIB, 2);
            for (t, e) in drain(&mut net) {
                trace.push((t.as_millis(), e.tag));
            }
            trace
        };
        assert_eq!(run(), run());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Invariant: after any sequence of flow starts, per-link committed
        /// bandwidth never exceeds capacity and every flow has a positive
        /// rate (work conservation: rates are only zero if a link is dead).
        #[test]
        fn prop_rates_feasible(specs in proptest::collection::vec((0u32..8, 0u32..8, 1u64..200_000_000), 1..40)) {
            let (mut net, _, _) = two_site_net();
            for (i, &(s, d, bytes)) in specs.iter().enumerate() {
                net.start_flow(SimTime::ZERO, NodeId(s), NodeId(d), bytes, i as u64);
            }
            // Reconstruct link loads from the flow table.
            let mut loads: std::collections::HashMap<String, f64> = Default::default();
            let p = *net.params();
            for (i, &(s, d, _)) in specs.iter().enumerate() {
                let id = FlowId(i as u64);
                if let Some(r) = net.rate_of(id) {
                    prop_assert!(r > 0.0, "flow {i} starved");
                    if s == d { continue; }
                    *loads.entry(format!("up{s}")).or_default() += r;
                    *loads.entry(format!("down{d}")).or_default() += r;
                    let ss = if s < 4 {0} else {1};
                    let ds = if d < 4 {0} else {1};
                    if ss != ds {
                        *loads.entry(format!("siteup{ss}")).or_default() += r;
                        *loads.entry(format!("sitedown{ds}")).or_default() += r;
                    }
                }
            }
            for (k, v) in loads {
                let cap = if k.starts_with("site") { p.site_up } else { p.nic_up };
                prop_assert!(v <= cap * 1.0001, "link {k} overloaded: {v} > {cap}");
            }
        }

        /// All flows eventually complete, exactly once each.
        #[test]
        fn prop_all_flows_complete(specs in proptest::collection::vec((0u32..8, 0u32..8, 0u64..50_000_000, 0u64..5_000u64), 1..30)) {
            let (mut net, _, _) = two_site_net();
            let mut last_start = SimTime::ZERO;
            for (i, &(s, d, bytes, delay)) in specs.iter().enumerate() {
                let t = last_start + hog_sim_core::SimDuration::from_millis(delay);
                last_start = t;
                net.start_flow(t, NodeId(s), NodeId(d), bytes, i as u64);
            }
            let ends = drain(&mut net);
            prop_assert_eq!(ends.len(), specs.len());
            let mut tags: Vec<u64> = ends.iter().map(|(_, e)| e.tag).collect();
            tags.sort_unstable();
            prop_assert_eq!(tags, (0..specs.len() as u64).collect::<Vec<_>>());
            // Times are non-decreasing as produced by drain().
            let times: Vec<u64> = ends.iter().map(|(t, _)| t.as_millis()).collect();
            prop_assert!(times.windows(2).all(|w| w[0] <= w[1]));
        }
    }
}
