//! Fixed-rate-per-class network model.
//!
//! Each flow gets a constant bandwidth decided only by its class (loopback /
//! intra-site / inter-site) with no sharing. Cheap and predictable — used by
//! substrate unit tests, and as a fidelity ablation against [`crate::FluidNet`]
//! (how much do the paper's results depend on congestion modelling?).

use crate::params::NetParams;
use crate::topology::{NodeId, SiteId};
use crate::{FlowEnd, FlowId, FlowOutcome, Network};
use hog_sim_core::units::transfer_secs;
use hog_sim_core::{SimDuration, SimTime};
use std::collections::HashMap;

/// Fraction of the site uplink a single inter-site flow receives. Models
/// steady-state WAN contention without tracking other flows; with the
/// default 5 Gbps uplink this yields 0.5 Gbps per WAN flow, half a NIC.
const WAN_FLOW_FRACTION: f64 = 0.1;

#[derive(Clone, Copy, Debug)]
struct Flow {
    tag: u64,
    src: NodeId,
    dst: NodeId,
    finish: SimTime,
}

/// The static network model. See the module docs.
pub struct StaticNet {
    params: NetParams,
    sites_of: HashMap<NodeId, SiteId>,
    flows: HashMap<FlowId, Flow>,
    next_flow_id: u64,
}

impl StaticNet {
    /// A static network with the given parameters.
    pub fn new(params: NetParams) -> Self {
        StaticNet {
            params,
            sites_of: HashMap::new(),
            flows: HashMap::new(),
            next_flow_id: 0,
        }
    }

    fn rate_for(&self, src: NodeId, dst: NodeId) -> f64 {
        if src == dst {
            return self.params.loopback;
        }
        match (self.sites_of.get(&src), self.sites_of.get(&dst)) {
            (Some(a), Some(b)) if a == b => self.params.nic_up.min(self.params.nic_down),
            _ => (self.params.site_up * WAN_FLOW_FRACTION)
                .min(self.params.nic_up)
                .min(self.params.nic_down),
        }
    }
}

impl Network for StaticNet {
    fn register_node(&mut self, node: NodeId, site: SiteId) {
        self.sites_of.insert(node, site);
    }

    fn remove_node(&mut self, _now: SimTime, node: NodeId) -> Vec<FlowEnd> {
        let mut killed = Vec::new();
        self.flows.retain(|&id, f| {
            if f.src == node || f.dst == node {
                killed.push(FlowEnd {
                    id,
                    tag: f.tag,
                    src: f.src,
                    dst: f.dst,
                    outcome: FlowOutcome::Killed,
                });
                false
            } else {
                true
            }
        });
        // Deterministic report order despite HashMap iteration.
        killed.sort_by_key(|e| e.id);
        self.sites_of.remove(&node);
        killed
    }

    fn latency(&self, src: NodeId, dst: NodeId) -> SimDuration {
        if src == dst {
            return SimDuration::ZERO;
        }
        match (self.sites_of.get(&src), self.sites_of.get(&dst)) {
            (Some(a), Some(b)) if a == b => self.params.intra_site_latency,
            _ => self.params.inter_site_latency,
        }
    }

    fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> FlowId {
        let id = FlowId(self.next_flow_id);
        self.next_flow_id += 1;
        let secs = transfer_secs(bytes, self.rate_for(src, dst));
        let finish = now + SimDuration::from_secs_f64(secs);
        self.flows.insert(
            id,
            Flow {
                tag,
                src,
                dst,
                finish,
            },
        );
        id
    }

    fn cancel_flow(&mut self, _now: SimTime, id: FlowId) {
        self.flows.remove(&id);
    }

    fn advance(&mut self, now: SimTime) -> Vec<FlowEnd> {
        let mut done: Vec<FlowEnd> = Vec::new();
        self.flows.retain(|&id, f| {
            if f.finish <= now {
                done.push(FlowEnd {
                    id,
                    tag: f.tag,
                    src: f.src,
                    dst: f.dst,
                    outcome: FlowOutcome::Completed,
                });
                false
            } else {
                true
            }
        });
        done.sort_by_key(|e| e.id);
        done
    }

    fn next_completion(&self) -> Option<SimTime> {
        self.flows.values().map(|f| f.finish).min()
    }

    fn active_flows(&self) -> usize {
        self.flows.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hog_sim_core::units::MIB;

    fn net() -> StaticNet {
        let mut n = StaticNet::new(NetParams::grid_default());
        n.register_node(NodeId(0), SiteId(0));
        n.register_node(NodeId(1), SiteId(0));
        n.register_node(NodeId(2), SiteId(1));
        n
    }

    #[test]
    fn intra_site_uses_nic_rate() {
        let mut n = net();
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 125_000_000, 0);
        let t = n.next_completion().unwrap();
        assert!((t.as_secs_f64() - 1.0).abs() < 0.01);
    }

    #[test]
    fn inter_site_is_slower_than_intra() {
        let mut n = net();
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 50 * MIB, 0);
        let intra = n.next_completion().unwrap();
        let mut n2 = net();
        n2.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), 50 * MIB, 0);
        let inter = n2.next_completion().unwrap();
        assert!(inter > intra, "WAN flow must be slower: {inter} vs {intra}");
    }

    #[test]
    fn flows_complete_independently() {
        let mut n = net();
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 10 * MIB, 1);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), 20 * MIB, 2);
        let t1 = n.next_completion().unwrap();
        let ends = n.advance(t1);
        assert_eq!(ends.len(), 1);
        assert_eq!(ends[0].tag, 1);
        assert_eq!(n.active_flows(), 1);
    }

    #[test]
    fn remove_node_reports_killed_flows_sorted() {
        let mut n = net();
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(1), MIB, 1);
        n.start_flow(SimTime::ZERO, NodeId(0), NodeId(2), MIB, 2);
        n.start_flow(SimTime::ZERO, NodeId(1), NodeId(2), MIB, 3);
        let killed = n.remove_node(SimTime::ZERO, NodeId(0));
        assert_eq!(killed.len(), 2);
        assert!(killed[0].id < killed[1].id);
        assert_eq!(n.active_flows(), 1);
    }

    #[test]
    fn latency_and_loopback() {
        let n = net();
        assert_eq!(n.latency(NodeId(0), NodeId(0)), SimDuration::ZERO);
        assert_eq!(
            n.latency(NodeId(0), NodeId(1)),
            NetParams::grid_default().intra_site_latency
        );
        assert_eq!(
            n.latency(NodeId(0), NodeId(2)),
            NetParams::grid_default().inter_site_latency
        );
    }
}
