//! Node and site identity, plus the hostname → site grouping rule.
//!
//! HOG detects sites from worker DNS names: `workername.site.edu` nodes are
//! grouped by their last two DNS labels (`site.edu`). [`site_domain_of`]
//! implements exactly that rule; [`Topology`] keeps the authoritative
//! node ↔ site mapping used by the network models, HDFS placement and the
//! MapReduce scheduler.

use std::collections::HashMap;

/// A worker (or master) node. Ids are dense and never reused within a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

/// A grid site (one administrative failure domain, e.g. `FNAL_FERMIGRID`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SiteId(pub u16);

/// A rack within a site: nodes are grouped into racks of [`RACK_SIZE`] in
/// registration order, so a rack never spans two sites. The id packs the
/// owning site in the upper half-word and the per-site rack ordinal in the
/// lower, making it unique across the whole topology.
///
/// HOG itself has no rack tier (glideins report only their site), but the
/// delay-scheduling policy in `hog-sched` wants the classic four-level
/// locality ladder, so the topology synthesises one deterministically.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RackId(pub u32);

/// Number of nodes per synthesised rack (see [`RackId`]).
pub const RACK_SIZE: u32 = 16;

/// Extract the site-grouping key from a worker hostname, per the paper:
/// "The worker nodes will be separated depending on the last two groups,
/// the `site.edu`." Returns `None` for hostnames with fewer than two
/// labels (no domain to group by).
pub fn site_domain_of(hostname: &str) -> Option<&str> {
    let trimmed = hostname.trim_end_matches('.');
    let mut dots = trimmed.char_indices().filter(|&(_, c)| c == '.');
    let last = dots.next_back()?.0;
    match trimmed[..last].rfind('.') {
        Some(second_last) => Some(&trimmed[second_last + 1..]),
        None => {
            // Exactly two labels ("site.edu"): the whole name is the key.
            Some(trimmed)
        }
    }
}

/// Static description of one site.
#[derive(Clone, Debug)]
pub struct SiteInfo {
    /// Dense site id.
    pub id: SiteId,
    /// OSG resource name, e.g. `UCSDT2`.
    pub name: String,
    /// DNS domain used for hostname synthesis, e.g. `ucsd.edu`.
    pub domain: String,
}

/// Per-node record.
#[derive(Clone, Debug)]
pub struct NodeRecord {
    /// The node's id.
    pub id: NodeId,
    /// Site the node lives in.
    pub site: SiteId,
    /// Synthesised DNS name (`w17.ucsd.edu`).
    pub hostname: String,
    /// Synthesised rack within the site (see [`RackId`]).
    pub rack: RackId,
    /// Whether the node is currently alive (registered and not removed).
    pub alive: bool,
}

/// The authoritative node/site registry.
///
/// Nodes are added when a glidein starts and marked dead when it is
/// preempted; ids are never reused so late-arriving events referencing a
/// dead node are detectable rather than aliasing a new node.
#[derive(Clone, Debug, Default)]
pub struct Topology {
    sites: Vec<SiteInfo>,
    nodes: Vec<NodeRecord>,
    by_hostname: HashMap<String, NodeId>,
    per_site_counter: Vec<u64>,
    per_site_added: Vec<u32>,
}

impl Topology {
    /// An empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a site; returns its id. Site names should be unique but
    /// this is not enforced (the grid model owns that invariant).
    pub fn add_site(&mut self, name: impl Into<String>, domain: impl Into<String>) -> SiteId {
        let id = SiteId(u16::try_from(self.sites.len()).expect("too many sites"));
        self.sites.push(SiteInfo {
            id,
            name: name.into(),
            domain: domain.into(),
        });
        self.per_site_counter.push(0);
        self.per_site_added.push(0);
        id
    }

    /// Register a new node at `site` with a synthesised unique hostname.
    pub fn add_node(&mut self, site: SiteId) -> NodeId {
        let n = &mut self.per_site_counter[site.0 as usize];
        *n += 1;
        let hostname = format!("w{}.{}", n, self.sites[site.0 as usize].domain);
        self.add_node_named(site, hostname)
    }

    /// Register a new node with an explicit hostname.
    pub fn add_node_named(&mut self, site: SiteId, hostname: String) -> NodeId {
        let id = NodeId(u32::try_from(self.nodes.len()).expect("too many nodes"));
        let ordinal = &mut self.per_site_added[site.0 as usize];
        let rack = RackId((u32::from(site.0) << 16) | (*ordinal / RACK_SIZE));
        *ordinal += 1;
        self.by_hostname.insert(hostname.clone(), id);
        self.nodes.push(NodeRecord {
            id,
            site,
            hostname,
            rack,
            alive: true,
        });
        id
    }

    /// Mark a node dead. Idempotent.
    pub fn mark_dead(&mut self, node: NodeId) {
        self.nodes[node.0 as usize].alive = false;
    }

    /// Site of a node (dead or alive).
    pub fn site_of(&self, node: NodeId) -> SiteId {
        self.nodes[node.0 as usize].site
    }

    /// Whether two nodes share a site — the paper's locality question.
    pub fn same_site(&self, a: NodeId, b: NodeId) -> bool {
        self.site_of(a) == self.site_of(b)
    }

    /// Rack of a node (dead or alive). Racks are synthesised: [`RACK_SIZE`]
    /// consecutive registrations within a site share one (see [`RackId`]).
    pub fn rack_of(&self, node: NodeId) -> RackId {
        self.nodes[node.0 as usize].rack
    }

    /// Whether two nodes share a synthesised rack (implies same site).
    pub fn same_rack(&self, a: NodeId, b: NodeId) -> bool {
        self.rack_of(a) == self.rack_of(b)
    }

    /// Whether the node is currently alive.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes[node.0 as usize].alive
    }

    /// Full record for a node.
    pub fn node(&self, node: NodeId) -> &NodeRecord {
        &self.nodes[node.0 as usize]
    }

    /// Info for a site.
    pub fn site(&self, site: SiteId) -> &SiteInfo {
        &self.sites[site.0 as usize]
    }

    /// All sites.
    pub fn sites(&self) -> &[SiteInfo] {
        &self.sites
    }

    /// Total nodes ever registered (alive + dead).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterator over currently-alive nodes.
    pub fn alive_nodes(&self) -> impl Iterator<Item = &NodeRecord> {
        self.nodes.iter().filter(|n| n.alive)
    }

    /// Number of currently-alive nodes.
    pub fn alive_count(&self) -> usize {
        self.nodes.iter().filter(|n| n.alive).count()
    }

    /// Currently-alive nodes in a given site.
    pub fn alive_in_site(&self, site: SiteId) -> impl Iterator<Item = &NodeRecord> {
        self.nodes.iter().filter(move |n| n.alive && n.site == site)
    }

    /// Resolve a hostname to its node id (alive or dead).
    pub fn resolve(&self, hostname: &str) -> Option<NodeId> {
        self.by_hostname.get(hostname).copied()
    }

    /// Apply the site-awareness script to a registered node: map its
    /// hostname to the site whose domain matches. This mirrors what
    /// `topology.script.file.name` does in HOG and is used by tests to
    /// check consistency between DNS grouping and the registry.
    pub fn site_by_dns(&self, node: NodeId) -> Option<SiteId> {
        let domain = site_domain_of(&self.nodes[node.0 as usize].hostname)?;
        self.sites
            .iter()
            .find(|s| s.domain == domain || s.domain.ends_with(domain))
            .map(|s| s.id)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn dns_grouping_rule() {
        assert_eq!(site_domain_of("w1.fnal.gov"), Some("fnal.gov"));
        assert_eq!(site_domain_of("node-3.cmsaf.mit.edu"), Some("mit.edu"));
        assert_eq!(site_domain_of("a.b.c.d.ucsd.edu"), Some("ucsd.edu"));
        assert_eq!(site_domain_of("ucsd.edu"), Some("ucsd.edu"));
        assert_eq!(site_domain_of("localhost"), None);
        assert_eq!(site_domain_of("w1.fnal.gov."), Some("fnal.gov"));
    }

    #[test]
    fn same_domain_means_same_group() {
        let a = site_domain_of("w1.aglt2.org").unwrap();
        let b = site_domain_of("w9999.aglt2.org").unwrap();
        assert_eq!(a, b);
        let c = site_domain_of("w1.ucsd.edu").unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn topology_registry_basics() {
        let mut t = Topology::new();
        let fnal = t.add_site("FNAL_FERMIGRID", "fnal.gov");
        let ucsd = t.add_site("UCSDT2", "ucsd.edu");
        let n1 = t.add_node(fnal);
        let n2 = t.add_node(fnal);
        let n3 = t.add_node(ucsd);
        assert_eq!(t.node_count(), 3);
        assert_eq!(t.alive_count(), 3);
        assert!(t.same_site(n1, n2));
        assert!(!t.same_site(n1, n3));
        assert_eq!(t.node(n1).hostname, "w1.fnal.gov");
        assert_eq!(t.node(n2).hostname, "w2.fnal.gov");
        assert_eq!(t.resolve("w1.ucsd.edu"), Some(n3));
    }

    #[test]
    fn racks_group_within_sites() {
        let mut t = Topology::new();
        let a = t.add_site("A", "a.edu");
        let b = t.add_site("B", "b.edu");
        let a_nodes: Vec<NodeId> = (0..RACK_SIZE + 2).map(|_| t.add_node(a)).collect();
        let b0 = t.add_node(b);
        // First RACK_SIZE nodes in site A share a rack; the next two spill
        // into a second rack.
        assert!(t.same_rack(a_nodes[0], a_nodes[RACK_SIZE as usize - 1]));
        assert!(!t.same_rack(a_nodes[0], a_nodes[RACK_SIZE as usize]));
        assert!(t.same_rack(a_nodes[RACK_SIZE as usize], a_nodes[RACK_SIZE as usize + 1]));
        // A rack never spans sites, even for the first node of each.
        assert!(!t.same_rack(a_nodes[0], b0));
        // Same rack implies same site.
        for &n in &a_nodes {
            assert_eq!(t.site_of(n), a);
        }
    }

    #[test]
    fn dead_nodes_leave_registry_consistent() {
        let mut t = Topology::new();
        let s = t.add_site("X", "x.edu");
        let n1 = t.add_node(s);
        let n2 = t.add_node(s);
        t.mark_dead(n1);
        t.mark_dead(n1); // idempotent
        assert!(!t.is_alive(n1));
        assert!(t.is_alive(n2));
        assert_eq!(t.alive_count(), 1);
        assert_eq!(t.alive_in_site(s).count(), 1);
        // id still resolvable, site still known
        assert_eq!(t.site_of(n1), s);
    }

    #[test]
    fn dns_script_agrees_with_registry() {
        let mut t = Topology::new();
        let sites = [
            ("FNAL_FERMIGRID", "fnal.gov"),
            ("USCMS-FNAL-WC1", "wc1.fnal.gov"),
            ("UCSDT2", "ucsd.edu"),
            ("AGLT2", "aglt2.org"),
            ("MIT_CMS", "mit.edu"),
        ];
        let ids: Vec<SiteId> = sites
            .iter()
            .map(|&(n, d)| t.add_site(n, d))
            .collect();
        for &sid in &ids {
            let node = t.add_node(sid);
            let via_dns = t.site_by_dns(node).unwrap();
            // The two FNAL sites share the fnal.gov suffix; DNS grouping may
            // legitimately collapse them (both are the FNAL failure domain).
            let dns_domain = site_domain_of(&t.node(node).hostname).unwrap();
            assert!(t.site(via_dns).domain.ends_with(dns_domain));
        }
    }

    proptest! {
        /// Any two hostnames with the same last-two labels group together.
        #[test]
        fn prop_grouping_depends_only_on_suffix(
            host_a in "[a-z]{1,8}",
            host_b in "[a-z]{1,8}",
            mid in "[a-z]{1,6}",
            dom in "[a-z]{2,8}\\.[a-z]{2,3}",
        ) {
            let a = format!("{host_a}.{dom}");
            let b = format!("{host_b}.{mid}.{dom}");
            prop_assert_eq!(site_domain_of(&a), site_domain_of(&b));
            prop_assert_eq!(site_domain_of(&a), Some(dom.as_str()));
        }

        /// Node ids are dense, never reused, and keep their site.
        #[test]
        fn prop_registry_ids_dense(sites in 1usize..5, adds in proptest::collection::vec(0usize..5, 1..40)) {
            let mut t = Topology::new();
            let site_ids: Vec<SiteId> = (0..sites)
                .map(|i| t.add_site(format!("S{i}"), format!("s{i}.edu")))
                .collect();
            let mut expected = Vec::new();
            for (i, &s) in adds.iter().enumerate() {
                let site = site_ids[s % site_ids.len()];
                let id = t.add_node(site);
                prop_assert_eq!(id.0 as usize, i);
                expected.push((id, site));
            }
            for (id, site) in expected {
                prop_assert_eq!(t.site_of(id), site);
            }
        }
    }
}
