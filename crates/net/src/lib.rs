//! Network and topology model for the HOG reproduction.
//!
//! The paper's performance story hinges on one asymmetry: *bandwidth inside
//! a site is much larger than bandwidth between sites* (HOG §III-B.1). This
//! crate provides:
//!
//! * [`topology`] — node/site identity, DNS-style hostnames and the
//!   `workername.site.edu → site.edu` grouping rule HOG's site-awareness
//!   script applies.
//! * [`params`] — link capacities and latencies ([`NetParams`]).
//! * [`fluid`] — an event-driven **max-min fair fluid-flow** network
//!   ([`FluidNet`]): every active transfer gets a rate from progressive
//!   filling over node NICs and site uplinks; rates are recomputed whenever
//!   the flow set changes.
//! * [`static_net`] — a cheap fixed-rate-per-class model ([`StaticNet`])
//!   used in unit tests and as a modelling-fidelity ablation.
//!
//! Both models implement the [`Network`] trait consumed by the HDFS and
//! MapReduce substrates.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod fluid;
pub mod params;
pub mod static_net;
pub mod topology;
pub mod wan;

pub use fluid::FluidNet;
pub use params::NetParams;
pub use wan::{WanDone, WanTier, WanTransferId};
pub use static_net::StaticNet;
pub use topology::{site_domain_of, NodeId, RackId, SiteId, Topology, RACK_SIZE};

use hog_sim_core::{SimDuration, SimTime};

/// Identifier of an in-flight transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FlowId(pub u64);

/// How a flow ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlowOutcome {
    /// All bytes were delivered.
    Completed,
    /// An endpoint vanished (node preempted) or the flow was cancelled.
    Killed,
}

/// A finished transfer, as reported by [`Network::advance`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FlowEnd {
    /// The flow that ended.
    pub id: FlowId,
    /// Caller-supplied correlation tag (opaque to the network).
    pub tag: u64,
    /// Sending node.
    pub src: NodeId,
    /// Receiving node.
    pub dst: NodeId,
    /// Whether it completed or was killed.
    pub outcome: FlowOutcome,
}

/// A bulk-transfer network model.
///
/// Protocol expected by the simulation mediator:
/// 1. on a network tick, call [`Network::advance`] with the current time and
///    handle the returned [`FlowEnd`]s;
/// 2. start/cancel flows as needed;
/// 3. re-arm one tick at [`Network::next_completion`] (spurious ticks are
///    harmless — `advance` just returns nothing).
pub trait Network {
    /// Make `node` (living in `site`) usable as a flow endpoint.
    fn register_node(&mut self, node: NodeId, site: SiteId);

    /// Remove `node`; every flow touching it is killed and reported in the
    /// returned vector immediately (not via `advance`).
    fn remove_node(&mut self, now: SimTime, node: NodeId) -> Vec<FlowEnd>;

    /// One-way propagation latency between two (registered) nodes.
    fn latency(&self, src: NodeId, dst: NodeId) -> SimDuration;

    /// Begin transferring `bytes` from `src` to `dst`. `tag` is returned in
    /// the eventual [`FlowEnd`]. Zero-byte flows complete on the next
    /// `advance`.
    fn start_flow(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> FlowId;

    /// Like [`Network::start_flow`], but the source side is *diffuse*: the
    /// bytes really originate from many nodes of the source's site (e.g. a
    /// shuffle batch covering every map output at that site), so the
    /// single representative node's NIC must not be modelled as the
    /// bottleneck — only the site uplink and the receiver constrain the
    /// flow. The default implementation falls back to a normal flow.
    fn start_flow_diffuse(
        &mut self,
        now: SimTime,
        src: NodeId,
        dst: NodeId,
        bytes: u64,
        tag: u64,
    ) -> FlowId {
        self.start_flow(now, src, dst, bytes, tag)
    }

    /// Cancel an in-flight flow (no `FlowEnd` is emitted). Unknown ids are
    /// ignored (the flow may have completed in the same instant).
    fn cancel_flow(&mut self, now: SimTime, id: FlowId);

    /// Progress the model to `now`, returning every flow that finished at or
    /// before `now`.
    fn advance(&mut self, now: SimTime) -> Vec<FlowEnd>;

    /// Like [`Network::advance`], but appends the finished flows to a
    /// caller-owned buffer so hot loops can reuse its allocation. The
    /// default implementation delegates to `advance`.
    fn advance_into(&mut self, now: SimTime, out: &mut Vec<FlowEnd>) {
        out.append(&mut self.advance(now));
    }

    /// The instant the earliest in-flight flow will finish, if any.
    fn next_completion(&self) -> Option<SimTime>;

    /// Number of in-flight flows (diagnostics).
    fn active_flows(&self) -> usize;
}
