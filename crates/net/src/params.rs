//! Link capacities and latencies for the network models.

use hog_sim_core::units::{gbit_per_s, mbit_per_s};
use hog_sim_core::SimDuration;

/// Capacities (bytes/second) and latencies for the grid network.
///
/// The defaults mirror the paper's environment: worker nodes with 1 Gbps
/// NICs (Table III), sites whose internal bandwidth dwarfs their WAN
/// uplinks, and wide-area RTTs in the tens of milliseconds (§III-B.2 notes
/// the WAN's "high latency and long transmission time" for
/// JobTracker↔TaskTracker HTTP traffic).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetParams {
    /// Per-node NIC transmit capacity (bytes/s).
    pub nic_up: f64,
    /// Per-node NIC receive capacity (bytes/s).
    pub nic_down: f64,
    /// Per-site WAN egress capacity (bytes/s), shared by all nodes at the
    /// site for inter-site flows.
    pub site_up: f64,
    /// Per-site WAN ingress capacity (bytes/s).
    pub site_down: f64,
    /// Loopback rate for src == dst transfers (bytes/s); effectively local
    /// disk-to-disk copy speed.
    pub loopback: f64,
    /// One-way latency between nodes of the same site.
    pub intra_site_latency: SimDuration,
    /// One-way latency between nodes of different sites.
    pub inter_site_latency: SimDuration,
}

impl NetParams {
    /// Grid defaults: 1 Gbps NICs, 5 Gbps site uplinks, 50 ms WAN one-way
    /// latency, 0.2 ms LAN latency.
    pub fn grid_default() -> Self {
        NetParams {
            nic_up: gbit_per_s(1.0),
            nic_down: gbit_per_s(1.0),
            site_up: gbit_per_s(6.0),
            site_down: gbit_per_s(6.0),
            loopback: gbit_per_s(8.0),
            intra_site_latency: SimDuration::from_millis(1),
            inter_site_latency: SimDuration::from_millis(50),
        }
    }

    /// Dedicated-cluster defaults (Table III): everything is one site on a
    /// 1 Gbps LAN; "site" links are a non-blocking switch (set high enough
    /// to never bottleneck before the NICs).
    pub fn lan_default() -> Self {
        NetParams {
            nic_up: gbit_per_s(1.0),
            nic_down: gbit_per_s(1.0),
            site_up: gbit_per_s(40.0),
            site_down: gbit_per_s(40.0),
            loopback: gbit_per_s(8.0),
            intra_site_latency: SimDuration::from_millis(1),
            inter_site_latency: SimDuration::from_millis(1),
        }
    }

    /// A deliberately slow WAN for stress tests (100 Mbps uplinks).
    pub fn congested_wan() -> Self {
        NetParams {
            site_up: mbit_per_s(100.0),
            site_down: mbit_per_s(100.0),
            inter_site_latency: SimDuration::from_millis(80),
            ..Self::grid_default()
        }
    }
}

impl Default for NetParams {
    fn default() -> Self {
        Self::grid_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let g = NetParams::grid_default();
        assert!(g.site_up > g.nic_up, "site uplink should exceed one NIC");
        assert!(g.inter_site_latency > g.intra_site_latency);
        let l = NetParams::lan_default();
        assert_eq!(l.inter_site_latency, l.intra_site_latency);
    }

    #[test]
    fn congested_wan_is_slower() {
        let c = NetParams::congested_wan();
        let g = NetParams::grid_default();
        assert!(c.site_up < g.site_up);
        assert!(c.inter_site_latency > g.inter_site_latency);
    }
}
