//! Inter-pool WAN backbone for federated deployments.
//!
//! A federation links several HOG pools (each its own campus/grid
//! deployment) over a shared long-haul backbone that is *slower* than any
//! single pool's site uplinks — the third and weakest tier of the network
//! hierarchy (node NIC > site uplink > inter-pool WAN). Cross-pool block
//! staging and remote-replica pushes ride this tier; it never carries
//! intra-pool traffic, which stays on each pool's own [`crate::FluidNet`].
//!
//! The model is a single shared pipe with equal-share (processor-sharing)
//! bandwidth allocation: `n` concurrent transfers each progress at
//! `capacity / n`. That is deliberately simpler than the max-min fair
//! fluid model inside a pool — the backbone is one bottleneck link, so
//! progressive filling degenerates to equal share anyway. A fixed one-way
//! latency is charged once per transfer. The whole tier can be *frozen*
//! (rates drop to zero) to model an inter-pool partition fault; transfers
//! resume, not restart, when the partition heals.
//!
//! Protocol (mirrors [`crate::Network`]): on a tick call
//! [`WanTier::advance`], handle the returned [`WanDone`]s, then re-arm one
//! tick at [`WanTier::next_completion`]. Spurious ticks are harmless.

use hog_sim_core::{SimDuration, SimTime};
use std::collections::BTreeMap;

/// Identifier of an in-flight inter-pool transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WanTransferId(pub u64);

/// A finished inter-pool transfer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WanDone {
    /// The transfer that completed.
    pub id: WanTransferId,
    /// Caller-supplied correlation tag (opaque to the tier).
    pub tag: u64,
    /// Source pool index.
    pub from_pool: usize,
    /// Destination pool index.
    pub to_pool: usize,
    /// Bytes delivered.
    pub bytes: u64,
}

#[derive(Clone, Debug)]
struct Transfer {
    tag: u64,
    from_pool: usize,
    to_pool: usize,
    bytes: u64,
    remaining: f64,
    /// Earliest completion instant (start + one-way latency).
    not_before: SimTime,
}

/// The shared inter-pool backbone: one equal-share pipe plus a fixed
/// one-way latency, freezable for partition faults.
#[derive(Clone, Debug)]
pub struct WanTier {
    capacity: f64,
    latency: SimDuration,
    transfers: BTreeMap<WanTransferId, Transfer>,
    next_id: u64,
    frozen: bool,
    last_advance: SimTime,
    delivered_bytes: u64,
    started_transfers: u64,
}

impl WanTier {
    /// A backbone with `capacity` bytes/s total and `latency` one-way.
    pub fn new(capacity: f64, latency: SimDuration) -> Self {
        WanTier {
            capacity: capacity.max(1.0),
            latency,
            transfers: BTreeMap::new(),
            next_id: 0,
            frozen: false,
            last_advance: SimTime::ZERO,
            delivered_bytes: 0,
            started_transfers: 0,
        }
    }

    /// Default federation backbone: 2 Gbps shared — a third of the 6 Gbps
    /// site uplinks inside a pool — at 100 ms one-way (continental RTT).
    pub fn inter_pool_default() -> Self {
        WanTier::new(
            hog_sim_core::units::gbit_per_s(2.0),
            SimDuration::from_millis(100),
        )
    }

    /// Begin moving `bytes` from `from_pool` to `to_pool`. The caller must
    /// have advanced the tier to `now` first (rates of ongoing transfers
    /// change the moment the flow set does).
    pub fn start_transfer(
        &mut self,
        now: SimTime,
        from_pool: usize,
        to_pool: usize,
        bytes: u64,
        tag: u64,
    ) -> WanTransferId {
        debug_assert!(self.last_advance <= now);
        self.catch_up(now);
        let id = WanTransferId(self.next_id);
        self.next_id += 1;
        self.started_transfers += 1;
        self.transfers.insert(
            id,
            Transfer {
                tag,
                from_pool,
                to_pool,
                bytes,
                remaining: bytes as f64,
                not_before: now + self.latency,
            },
        );
        id
    }

    /// Freeze (`true`) or thaw (`false`) the backbone: frozen transfers
    /// make no progress but are not lost. Advances internal time to `now`
    /// under the old state first.
    pub fn set_frozen(&mut self, now: SimTime, frozen: bool) {
        self.catch_up(now);
        self.frozen = frozen;
    }

    /// Whether the backbone is currently severed.
    pub fn frozen(&self) -> bool {
        self.frozen
    }

    /// Progress to `now`, returning transfers that finished at or before
    /// `now` (in transfer-id order — deterministic).
    pub fn advance(&mut self, now: SimTime) -> Vec<WanDone> {
        self.catch_up(now);
        let done_ids: Vec<WanTransferId> = self
            .transfers
            .iter()
            .filter(|(_, t)| t.remaining <= 0.0 && t.not_before <= now)
            .map(|(id, _)| *id)
            .collect();
        let mut out = Vec::with_capacity(done_ids.len());
        for id in done_ids {
            let t = self.transfers.remove(&id).expect("transfer vanished");
            self.delivered_bytes += t.bytes;
            out.push(WanDone {
                id,
                tag: t.tag,
                from_pool: t.from_pool,
                to_pool: t.to_pool,
                bytes: t.bytes,
            });
        }
        out
    }

    /// The instant the earliest in-flight transfer will finish, or `None`
    /// when idle or frozen (a frozen backbone never completes anything
    /// until thawed).
    pub fn next_completion(&self) -> Option<SimTime> {
        if self.transfers.is_empty() {
            return None;
        }
        // Drained transfers still waiting out their latency complete at
        // `not_before` even while frozen (their bytes are already in
        // flight past the cut).
        let mut best: Option<SimTime> = None;
        let active = self.transfers.values().filter(|t| t.remaining > 0.0).count();
        let rate = if active > 0 {
            self.capacity / active as f64
        } else {
            0.0
        };
        for t in self.transfers.values() {
            let eta = if t.remaining <= 0.0 {
                Some(t.not_before)
            } else if self.frozen {
                None
            } else {
                // Ceil to the millisecond clock: a rounded-*down* ETA
                // would land on `last_advance` itself once the residue is
                // sub-millisecond, and the arm-advance-rearm protocol
                // would spin at that instant forever.
                let ms = (t.remaining / rate * 1000.0).ceil().max(1.0);
                let drain = if ms >= u64::MAX as f64 {
                    SimDuration::from_millis(u64::MAX)
                } else {
                    SimDuration::from_millis(ms as u64)
                };
                Some((self.last_advance + drain).max(t.not_before))
            };
            if let Some(eta) = eta {
                best = Some(best.map_or(eta, |b: SimTime| b.min(eta)));
            }
        }
        best
    }

    /// Number of in-flight transfers.
    pub fn active_transfers(&self) -> usize {
        self.transfers.len()
    }

    /// Total bytes delivered across the backbone so far.
    pub fn delivered_bytes(&self) -> u64 {
        self.delivered_bytes
    }

    /// Total transfers started so far.
    pub fn started_transfers(&self) -> u64 {
        self.started_transfers
    }

    /// Step internal time forward to `now`, draining bytes at the
    /// equal-share rate and re-splitting whenever a transfer empties.
    fn catch_up(&mut self, now: SimTime) {
        while self.last_advance < now {
            if self.frozen {
                self.last_advance = now;
                return;
            }
            let active: Vec<WanTransferId> = self
                .transfers
                .iter()
                .filter(|(_, t)| t.remaining > 0.0)
                .map(|(id, _)| *id)
                .collect();
            if active.is_empty() {
                self.last_advance = now;
                return;
            }
            let rate = self.capacity / active.len() as f64;
            let min_remaining = active
                .iter()
                .map(|id| self.transfers[id].remaining)
                .fold(f64::INFINITY, f64::min);
            // First drain, rounded up to the millisecond clock.
            let drain = SimDuration::from_secs_f64(min_remaining / rate).max(
                SimDuration::from_millis(1),
            );
            let step_end = now.min(self.last_advance + drain);
            let dt = step_end.saturating_since(self.last_advance).as_secs_f64();
            let drained = rate * dt;
            for id in &active {
                let t = self.transfers.get_mut(id).expect("active transfer");
                if t.remaining <= drained + 1e-6 {
                    t.remaining = 0.0;
                } else {
                    t.remaining -= drained;
                }
            }
            self.last_advance = step_end;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hog_sim_core::units::mbit_per_s;

    fn tier() -> WanTier {
        // 100 Mbps, 100 ms latency: 1 MiB takes ~84 ms of drain + latency.
        WanTier::new(mbit_per_s(100.0), SimDuration::from_millis(100))
    }

    #[test]
    fn single_transfer_completes_after_drain_plus_latency() {
        let mut w = tier();
        let bytes = 12_500_000; // 1 s at 100 Mbps
        w.start_transfer(SimTime::ZERO, 0, 1, bytes, 7);
        let eta = w.next_completion().unwrap();
        assert!(eta >= SimTime::from_millis(1000));
        assert!(eta <= SimTime::from_millis(1200));
        let just_before = SimTime::ZERO + eta.saturating_since(SimTime::ZERO).saturating_sub(SimDuration::from_millis(1));
        assert!(w.advance(just_before).is_empty());
        let done = w.advance(eta);
        assert_eq!(done.len(), 1);
        assert_eq!(done[0].tag, 7);
        assert_eq!(done[0].bytes, bytes);
        assert_eq!(w.delivered_bytes(), bytes);
    }

    #[test]
    fn concurrent_transfers_share_the_pipe() {
        let mut w = tier();
        let bytes = 12_500_000;
        w.start_transfer(SimTime::ZERO, 0, 1, bytes, 1);
        w.start_transfer(SimTime::ZERO, 0, 2, bytes, 2);
        // Two equal transfers at half rate each: ~2 s.
        let eta = w.next_completion().unwrap();
        assert!(eta >= SimTime::from_millis(2000), "eta {eta:?}");
        let done = w.advance(eta + SimDuration::from_millis(2));
        assert_eq!(done.len(), 2);
    }

    #[test]
    fn freezing_pauses_and_resumes_without_losing_bytes() {
        let mut w = tier();
        let bytes = 12_500_000; // 1 s unfrozen
        w.start_transfer(SimTime::ZERO, 0, 1, bytes, 9);
        // Freeze at 500 ms (half drained), thaw at 10 s.
        w.set_frozen(SimTime::from_millis(500), true);
        assert!(w.next_completion().is_none());
        assert!(w.advance(SimTime::from_secs(5)).is_empty());
        w.set_frozen(SimTime::from_secs(10), false);
        let eta = w.next_completion().unwrap();
        // Remaining half second of drain from t=10s.
        assert!(eta >= SimTime::from_millis(10_400), "eta {eta:?}");
        assert!(eta <= SimTime::from_millis(10_700), "eta {eta:?}");
        assert_eq!(w.advance(eta).len(), 1);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut w = tier();
            w.start_transfer(SimTime::ZERO, 0, 1, 5_000_000, 1);
            w.start_transfer(SimTime::from_millis(300), 1, 2, 9_000_000, 2);
            let mut log = Vec::new();
            let mut t = SimTime::ZERO;
            while let Some(eta) = w.next_completion() {
                t = t.max(eta);
                for d in w.advance(t) {
                    log.push((t, d.id, d.tag));
                }
            }
            (log, w.delivered_bytes())
        };
        assert_eq!(run(), run());
    }
}
