//! Cross-layer fault injection, invariant auditing and livelock detection
//! for the HOG reproduction.
//!
//! The paper's central claim is *robustness*: HOG keeps making progress on
//! an opportunistic grid whose nodes are preempted, partitioned and
//! corrupted at rates no dedicated cluster would tolerate. This crate
//! turns that claim into something falsifiable:
//!
//! * [`FaultPlan`] — a deterministic, seeded timeline of cross-layer
//!   faults ([`Fault`]) injected into a cluster run: correlated
//!   preemption bursts, site-scope network partitions (the site is alive
//!   but unreachable — distinct from a grid outage, which kills the
//!   glideins), WAN bandwidth degradation windows, zombie outbreaks,
//!   straggler nodes and transient master stalls.
//! * [`Auditor`] — aggregates [`Violation`]s from the substrate models'
//!   [`Auditable`](hog_sim_core::Auditable) implementations on every
//!   master tick; any breach aborts the run with a structured dump
//!   ([`ChaosFailure::InvariantViolation`]).
//! * [`Watchdog`] — detects livelock: the event loop is spinning but no
//!   job, upload, replication or provisioning progress has been made for
//!   a configurable window ([`ChaosFailure::Livelock`]).
//!
//! The crate is deliberately mechanism-only: *what* each fault means is
//! implemented where the state lives (grid, net, hdfs, mapreduce, and the
//! `hog-core` mediator); this crate owns the schedule, the aggregation
//! and the failure reports, so the same machinery audits runs with no
//! faults at all.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod plan;
pub mod watchdog;

pub use plan::{Fault, FaultPlan, TimedFault};
pub use watchdog::{ProgressSig, Watchdog};

use hog_sim_core::audit::render_violations;
use hog_sim_core::{SimDuration, SimTime, Violation};

/// Why a chaos-supervised run was aborted.
#[derive(Clone, Debug, PartialEq)]
pub enum ChaosFailure {
    /// A runtime invariant audit found cross-layer inconsistencies.
    InvariantViolation {
        /// When the audit tripped.
        at: SimTime,
        /// Every breached invariant.
        violations: Vec<Violation>,
        /// Structured human-readable report.
        dump: String,
    },
    /// Events kept firing but nothing made progress for a full window.
    Livelock {
        /// When the watchdog tripped.
        at: SimTime,
        /// How long the run had been stuck.
        stalled_for: SimDuration,
        /// Structured human-readable report.
        dump: String,
    },
}

impl ChaosFailure {
    /// Simulation time at which the run was aborted.
    pub fn at(&self) -> SimTime {
        match self {
            ChaosFailure::InvariantViolation { at, .. } => *at,
            ChaosFailure::Livelock { at, .. } => *at,
        }
    }

    /// The structured report body.
    pub fn dump(&self) -> &str {
        match self {
            ChaosFailure::InvariantViolation { dump, .. } => dump,
            ChaosFailure::Livelock { dump, .. } => dump,
        }
    }

    /// Append extra context (e.g. a flight-recorder tail) to the report
    /// body. Empty strings are ignored.
    pub fn append_context(&mut self, extra: &str) {
        if extra.is_empty() {
            return;
        }
        let dump = match self {
            ChaosFailure::InvariantViolation { dump, .. } => dump,
            ChaosFailure::Livelock { dump, .. } => dump,
        };
        dump.push('\n');
        dump.push_str(extra);
    }
}

/// Runtime invariant auditor: feed it the violations collected from every
/// [`Auditable`](hog_sim_core::Auditable) layer each master tick; the
/// first non-empty batch produces the aborting [`ChaosFailure`].
#[derive(Clone, Debug, Default)]
pub struct Auditor {
    checks: u64,
}

impl Auditor {
    /// A fresh auditor.
    pub fn new() -> Self {
        Auditor::default()
    }

    /// How many audit sweeps have run (diagnostics).
    pub fn checks(&self) -> u64 {
        self.checks
    }

    /// Record one audit sweep. Returns the structured failure if any
    /// invariant was breached.
    pub fn observe(&mut self, at: SimTime, violations: Vec<Violation>) -> Option<ChaosFailure> {
        self.checks += 1;
        if violations.is_empty() {
            return None;
        }
        let dump = render_violations(at, &violations);
        Some(ChaosFailure::InvariantViolation {
            at,
            violations,
            dump,
        })
    }
}

/// Run `audit()` over a set of layers and pool the violations.
pub fn collect_violations(layers: &[&dyn hog_sim_core::Auditable]) -> Vec<Violation> {
    let mut out = Vec::new();
    for l in layers {
        out.extend(l.audit());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn auditor_passes_clean_sweeps_and_trips_on_violations() {
        let mut a = Auditor::new();
        assert!(a.observe(SimTime::from_millis(1000), Vec::new()).is_none());
        let v = vec![Violation::new("hdfs", "used mismatch")];
        let fail = a.observe(SimTime::from_millis(2000), v).unwrap();
        match &fail {
            ChaosFailure::InvariantViolation { violations, .. } => {
                assert_eq!(violations.len(), 1)
            }
            other => panic!("unexpected failure kind {other:?}"),
        }
        assert!(fail.dump().contains("[hdfs] used mismatch"));
        assert_eq!(fail.at(), SimTime::from_millis(2000));
        assert_eq!(a.checks(), 2);
    }

    struct Clean;
    struct Dirty;
    impl hog_sim_core::Auditable for Clean {
        fn audit(&self) -> Vec<Violation> {
            Vec::new()
        }
    }
    impl hog_sim_core::Auditable for Dirty {
        fn audit(&self) -> Vec<Violation> {
            vec![Violation::new("net", "oversubscribed")]
        }
    }

    #[test]
    fn collect_pools_across_layers() {
        let vs = collect_violations(&[&Clean, &Dirty, &Clean]);
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].layer, "net");
    }
}
