//! Scripted fault timelines.
//!
//! A [`FaultPlan`] is a list of [`TimedFault`]s: offsets (relative to the
//! workload start, i.e. when upload finishes and jobs begin submitting)
//! paired with a [`Fault`] to inject. The plan is pure data — the
//! `hog-core` mediator resolves site names against its topology and
//! performs the actual state surgery — so the same plan can be replayed
//! against any configuration, and two runs with the same seed and plan
//! are byte-identical.

use hog_sim_core::{SimDuration, SimRng};

/// One injectable cross-layer fault.
#[derive(Clone, Debug, PartialEq)]
pub enum Fault {
    /// The batch system evicts up to `count` running glideins at `site`
    /// simultaneously (correlated preemption burst, grid layer).
    PreemptBurst {
        /// Site name (matched against the grid site configs).
        site: String,
        /// Maximum number of victims.
        count: usize,
    },
    /// `site` becomes unreachable for `duration` while its nodes stay
    /// alive: flows are killed, heartbeats stop arriving at the masters,
    /// but daemons keep running and re-join on heal. Distinct from
    /// a grid `SiteOutage`, which kills the glideins outright.
    SitePartition {
        /// Site name.
        site: String,
        /// How long the partition lasts.
        duration: SimDuration,
    },
    /// Every site's WAN up/downlink drops to `factor` × its configured
    /// capacity for `duration` (network layer).
    WanDegrade {
        /// Capacity multiplier in `(0, 1]`.
        factor: f64,
        /// How long the degradation lasts.
        duration: SimDuration,
    },
    /// `storage_failed` flips on up to `count` live, healthy datanodes at
    /// once: the §IV-D.1 abandoned-node pathology as an outbreak.
    ZombieOutbreak {
        /// Number of new zombies.
        count: usize,
    },
    /// Up to `count` nodes become stragglers: their map/reduce compute
    /// slows by `cpu_factor` and local disk I/O by `disk_factor`.
    Straggler {
        /// Number of straggler nodes.
        count: usize,
        /// CPU time multiplier (≥ 1 slows the node down).
        cpu_factor: f64,
        /// Disk read/write time multiplier (≥ 1 slows the node down).
        disk_factor: f64,
    },
    /// The namenode/jobtracker master process stalls for `duration`:
    /// no death detection, no replication dispatch, no heartbeat
    /// processing — then resumes.
    MasterStall {
        /// How long the masters are suspended.
        duration: SimDuration,
    },
    /// The master host dies outright: the Namenode+JobTracker stack goes
    /// down and stays down until the standby's detection timeout fires
    /// and promotes a checkpoint-restored replacement (the recovery
    /// protocol lives in the `hog-core` mediator). On clusters without a
    /// failover configuration the fault is recorded and ignored — the
    /// paper's single-master deployment has nothing to promote.
    MasterCrash,
    /// Corrupt a datanode's byte accounting by `delta_bytes` without
    /// touching its block set. Exists so the invariant
    /// [`Auditor`](crate::Auditor) can be proven live: a run with this
    /// fault and auditing enabled *must* abort.
    CorruptAccounting {
        /// Bytes of phantom usage to add.
        delta_bytes: u64,
    },
    /// The inter-pool WAN backbone is severed for `duration`: cross-pool
    /// block staging freezes (transfers pause, not abort) and the
    /// federation meta-scheduler must route around the cut. A no-op on a
    /// single standalone cluster, which has no inter-pool tier.
    PoolPartition {
        /// How long the backbone stays cut.
        duration: SimDuration,
    },
}

impl Fault {
    /// For windowed faults, how long the fault stays in force before the
    /// mediator heals it (`ChaosEnd`). `None` for instantaneous faults.
    pub fn window(&self) -> Option<SimDuration> {
        match self {
            Fault::SitePartition { duration, .. }
            | Fault::WanDegrade { duration, .. }
            | Fault::PoolPartition { duration } => Some(*duration),
            _ => None,
        }
    }
}

/// A fault with its injection offset (relative to workload start).
#[derive(Clone, Debug, PartialEq)]
pub struct TimedFault {
    /// Offset from workload start.
    pub at: SimDuration,
    /// What to inject.
    pub fault: Fault,
}

/// A deterministic, scripted timeline of faults.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    faults: Vec<TimedFault>,
}

impl FaultPlan {
    /// An empty plan (no faults; auditing/watchdog may still run).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Append a fault at `at` (offset from workload start). Builder-style.
    pub fn at(mut self, at: SimDuration, fault: Fault) -> Self {
        self.faults.push(TimedFault { at, fault });
        self
    }

    /// The scripted faults, in insertion order.
    pub fn faults(&self) -> &[TimedFault] {
        &self.faults
    }

    /// Number of scripted faults.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// Whether the plan is empty.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// A seeded, escalating plan for graceful-degradation sweeps:
    /// `intensity` 0 is fault-free; each level adds a wave of correlated
    /// preemptions and mixes in partitions, WAN degradation, zombie
    /// outbreaks, stragglers and a master stall as intensity grows.
    /// Site-scoped faults draw their target from `sites` with a
    /// dedicated RNG stream, so the plan depends only on `(seed,
    /// intensity, sites)`.
    pub fn escalating(seed: u64, intensity: u32, sites: &[&str]) -> Self {
        let mut rng = SimRng::seed_from_u64(seed ^ 0x484f_4743); // "HOGC"
        let mut plan = FaultPlan::new();
        if sites.is_empty() {
            return plan;
        }
        let secs = SimDuration::from_secs;
        for wave in 0..intensity {
            let base = secs(240 + 420 * wave as u64);
            let site = sites[rng.index(sites.len())].to_string();
            plan = plan.at(
                base,
                Fault::PreemptBurst {
                    site,
                    count: 2 * intensity as usize,
                },
            );
            if wave % 2 == 1 {
                let site = sites[rng.index(sites.len())].to_string();
                plan = plan.at(
                    base + secs(45),
                    Fault::SitePartition {
                        site,
                        duration: secs(60 * (1 + intensity as u64)),
                    },
                );
            }
            if wave % 3 == 2 {
                plan = plan.at(
                    base + secs(90),
                    Fault::WanDegrade {
                        factor: 1.0 / (1.0 + intensity as f64),
                        duration: secs(300),
                    },
                );
            }
            if wave % 4 == 3 {
                plan = plan.at(
                    base + secs(150),
                    Fault::ZombieOutbreak {
                        count: intensity as usize,
                    },
                );
            }
        }
        if intensity >= 3 {
            plan = plan.at(
                secs(120),
                Fault::Straggler {
                    count: intensity as usize,
                    cpu_factor: 2.5,
                    disk_factor: 2.0,
                },
            );
        }
        if intensity >= 5 {
            plan = plan.at(
                secs(1200),
                Fault::MasterStall {
                    duration: secs(45 * intensity as u64),
                },
            );
        }
        plan
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SITES: &[&str] = &["A", "B", "C"];

    #[test]
    fn builder_preserves_order() {
        let plan = FaultPlan::new()
            .at(
                SimDuration::from_secs(10),
                Fault::ZombieOutbreak { count: 2 },
            )
            .at(
                SimDuration::from_secs(5),
                Fault::MasterStall {
                    duration: SimDuration::from_secs(30),
                },
            );
        assert_eq!(plan.len(), 2);
        assert_eq!(plan.faults()[0].at, SimDuration::from_secs(10));
        assert_eq!(plan.faults()[1].at, SimDuration::from_secs(5));
    }

    #[test]
    fn windows_only_for_windowed_faults() {
        assert!(Fault::ZombieOutbreak { count: 1 }.window().is_none());
        assert!(Fault::MasterCrash.window().is_none());
        assert!(Fault::MasterStall {
            duration: SimDuration::from_secs(9)
        }
        .window()
        .is_none());
        assert_eq!(
            Fault::WanDegrade {
                factor: 0.5,
                duration: SimDuration::from_secs(9)
            }
            .window(),
            Some(SimDuration::from_secs(9))
        );
        assert_eq!(
            Fault::SitePartition {
                site: "X".into(),
                duration: SimDuration::from_secs(7)
            }
            .window(),
            Some(SimDuration::from_secs(7))
        );
    }

    #[test]
    fn escalating_is_deterministic_and_monotone_in_intensity() {
        let a = FaultPlan::escalating(7, 4, SITES);
        let b = FaultPlan::escalating(7, 4, SITES);
        assert_eq!(a, b);
        assert!(FaultPlan::escalating(7, 0, SITES).is_empty());
        let mut last = 0;
        for k in 1..8 {
            let n = FaultPlan::escalating(7, k, SITES).len();
            assert!(n >= last, "plan must not shrink as intensity grows");
            last = n;
        }
    }

    #[test]
    fn escalating_differs_across_seeds() {
        let a = FaultPlan::escalating(1, 6, SITES);
        let b = FaultPlan::escalating(2, 6, SITES);
        assert_ne!(a, b, "site picks should depend on the seed");
    }

    #[test]
    fn escalating_without_sites_is_empty() {
        assert!(FaultPlan::escalating(3, 5, &[]).is_empty());
    }
}
