//! Livelock detection.
//!
//! A chaotic run can wedge without any invariant breaking: every retry
//! loop keeps scheduling events, the clock advances, and nothing ever
//! completes. The [`Watchdog`] catches this by snapshotting a
//! [`ProgressSig`] — a cheap digest of every counter that moves when the
//! system does real work — on each master tick. If the signature is
//! bit-identical for longer than the configured window while the run is
//! unfinished, the watchdog trips with a structured report.

use crate::ChaosFailure;
use hog_sim_core::{SimDuration, SimTime};

/// Digest of cluster progress. Two equal signatures mean *nothing*
/// observable happened in between: no provisioning, upload, task, job or
/// replication progress.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProgressSig {
    /// Cluster lifecycle phase (forming / uploading / running / done).
    pub phase: u8,
    /// Workers currently usable by the mediator.
    pub pool_size: usize,
    /// Glideins ever started (grid layer).
    pub node_starts: u64,
    /// Input blocks still to upload.
    pub upload_remaining: usize,
    /// Workload jobs finished (succeeded or failed).
    pub jobs_finished: usize,
    /// Map tasks completed across all jobs.
    pub maps_done: u64,
    /// Reduce tasks completed across all jobs.
    pub reduces_done: u64,
    /// Task attempt failures (a failing-but-retrying system is live).
    pub task_failures: u64,
    /// Completed replication transfers (namenode). Failed replications
    /// are deliberately excluded: a wedged cluster can re-dispatch a
    /// doomed replication every tick forever, and counting those retries
    /// as "progress" would mask exactly the livelock we hunt.
    pub repl_completed: u64,
    /// Network flows ever finished.
    pub flows_finished: u64,
}

impl ProgressSig {
    fn render(&self) -> String {
        format!(
            "phase={} pool={} node_starts={} upload_remaining={} jobs_finished={} \
             maps_done={} reduces_done={} task_failures={} repl_completed={} \
             flows_finished={}",
            self.phase,
            self.pool_size,
            self.node_starts,
            self.upload_remaining,
            self.jobs_finished,
            self.maps_done,
            self.reduces_done,
            self.task_failures,
            self.repl_completed,
            self.flows_finished,
        )
    }
}

/// Livelock watchdog (see module docs).
#[derive(Clone, Debug)]
pub struct Watchdog {
    window: SimDuration,
    last: Option<ProgressSig>,
    last_change: SimTime,
}

impl Watchdog {
    /// A watchdog that trips after `window` of zero progress.
    pub fn new(window: SimDuration) -> Self {
        Watchdog {
            window,
            last: None,
            last_change: SimTime::ZERO,
        }
    }

    /// The configured no-progress window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Feed one master-tick observation. Returns the aborting failure if
    /// the signature has been frozen for at least the window.
    pub fn observe(&mut self, now: SimTime, sig: ProgressSig) -> Option<ChaosFailure> {
        if self.last.as_ref() != Some(&sig) {
            self.last = Some(sig);
            self.last_change = now;
            return None;
        }
        let stalled_for = now.saturating_since(self.last_change);
        if stalled_for < self.window {
            return None;
        }
        let dump = format!(
            "livelock: no progress for {}s (window {}s) at t={}s\n  frozen signature: {}\n",
            stalled_for.as_millis() / 1000,
            self.window.as_millis() / 1000,
            now.as_millis() / 1000,
            self.last.as_ref().expect("signature was just compared").render(),
        );
        Some(ChaosFailure::Livelock {
            at: now,
            stalled_for,
            dump,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(jobs: usize) -> ProgressSig {
        ProgressSig {
            jobs_finished: jobs,
            ..ProgressSig::default()
        }
    }

    #[test]
    fn trips_only_after_a_full_frozen_window() {
        let mut w = Watchdog::new(SimDuration::from_secs(100));
        let t = |s: u64| SimTime::from_millis(s * 1000);
        assert!(w.observe(t(0), sig(0)).is_none());
        assert!(w.observe(t(60), sig(0)).is_none(), "within window");
        let fail = w.observe(t(100), sig(0)).expect("window elapsed");
        match fail {
            ChaosFailure::Livelock { stalled_for, .. } => {
                assert_eq!(stalled_for, SimDuration::from_secs(100))
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn any_progress_resets_the_clock() {
        let mut w = Watchdog::new(SimDuration::from_secs(100));
        let t = |s: u64| SimTime::from_millis(s * 1000);
        assert!(w.observe(t(0), sig(0)).is_none());
        assert!(w.observe(t(90), sig(1)).is_none(), "progress at t=90");
        assert!(w.observe(t(150), sig(1)).is_none(), "only 60s frozen");
        assert!(w.observe(t(190), sig(1)).is_some(), "100s frozen again");
    }

    #[test]
    fn report_names_the_frozen_signature() {
        let mut w = Watchdog::new(SimDuration::from_secs(10));
        let t = |s: u64| SimTime::from_millis(s * 1000);
        w.observe(t(0), sig(3));
        let fail = w.observe(t(10), sig(3)).unwrap();
        assert!(fail.dump().contains("jobs_finished=3"));
        assert!(fail.dump().contains("window 10s"));
    }
}
