//! Failure-aware placement (after ATLAS, Soualhia et al. 2015).

use crate::{JobSnapshot, Scheduler, SlotKind};
use hog_net::{NodeId, SiteId};
use hog_sim_core::{SimDuration, SimTime};
use std::collections::HashMap;

/// An exponentially-decaying penalty score.
#[derive(Clone, Copy, Debug)]
struct Decayed {
    value: f64,
    at: SimTime,
}

/// FIFO order plus reliability-biased placement: every blamed attempt
/// failure and every tracker death accrues penalty on the node (and a
/// fraction on its site); a node whose effective penalty — its own score
/// plus half its site's — exceeds a per-kind threshold is quarantined.
///
/// On a glidein pool, preemption clusters by site: when a batch scheduler
/// reclaims resources it reclaims many workers of one site in a burst,
/// and the site stays risky while the competing demand persists. The site
/// component captures exactly that, steering long-lived reduces and
/// speculative copies (the expensive things to lose) toward calm sites.
///
/// Thresholds are graded by cost-of-loss: first-attempt maps are cheap to
/// re-run and quarantine last; reduces hold shuffle state and quarantine
/// earlier; speculative copies are pure insurance and are simply not
/// bought on risky nodes. Scores halve every `half_life` (default
/// 10 min), so a site that stops churning earns its way back and nothing
/// starves permanently.
#[derive(Clone, Debug)]
pub struct FailureAwareSched {
    half_life: SimDuration,
    map_threshold: f64,
    reduce_threshold: f64,
    spec_threshold: f64,
    node_scores: HashMap<NodeId, Decayed>,
    site_scores: HashMap<SiteId, Decayed>,
    node_site: HashMap<NodeId, SiteId>,
}

/// Penalty for one blamed attempt failure on a node.
const ATTEMPT_FAIL_PENALTY: f64 = 1.0;
/// Penalty for a tracker death (preemption) on a node.
const TRACKER_DEATH_PENALTY: f64 = 2.0;
/// Fraction of a node penalty that also accrues to its site.
const SITE_FRACTION: f64 = 0.25;
/// Weight of the site score in a node's effective penalty.
const SITE_WEIGHT: f64 = 0.5;

impl FailureAwareSched {
    /// Failure-aware placement with default tuning: 10-minute score
    /// half-life; quarantine thresholds 4.0 (maps), 1.5 (reduces), 1.0
    /// (speculation).
    pub fn new() -> Self {
        FailureAwareSched {
            half_life: SimDuration::from_secs(600),
            map_threshold: 4.0,
            reduce_threshold: 1.5,
            spec_threshold: 1.0,
            node_scores: HashMap::new(),
            site_scores: HashMap::new(),
            node_site: HashMap::new(),
        }
    }

    /// Override the score half-life (tests and ablations).
    pub fn with_half_life(mut self, half_life: SimDuration) -> Self {
        self.half_life = half_life;
        self
    }

    /// Override the quarantine thresholds for maps / reduces /
    /// speculative copies.
    pub fn with_thresholds(mut self, map: f64, reduce: f64, spec: f64) -> Self {
        self.map_threshold = map;
        self.reduce_threshold = reduce;
        self.spec_threshold = spec;
        self
    }

    fn decayed(&self, d: Option<&Decayed>, now: SimTime) -> f64 {
        let Some(d) = d else { return 0.0 };
        let dt = now.saturating_since(d.at).as_secs_f64();
        d.value * 0.5f64.powf(dt / self.half_life.as_secs_f64())
    }

    fn bump_node(&mut self, node: NodeId, amount: f64, now: SimTime) {
        let value = self.decayed(self.node_scores.get(&node), now) + amount;
        self.node_scores.insert(node, Decayed { value, at: now });
        if let Some(&site) = self.node_site.get(&node) {
            let value = self.decayed(self.site_scores.get(&site), now) + amount * SITE_FRACTION;
            self.site_scores.insert(site, Decayed { value, at: now });
        }
    }

    /// Effective penalty of a node: its own score plus `SITE_WEIGHT` (0.5)
    /// of its site's.
    pub fn effective_penalty(&self, node: NodeId, site: SiteId, now: SimTime) -> f64 {
        self.decayed(self.node_scores.get(&node), now)
            + SITE_WEIGHT * self.decayed(self.site_scores.get(&site), now)
    }
}

impl Default for FailureAwareSched {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for FailureAwareSched {
    fn name(&self) -> &'static str {
        "failure_aware"
    }

    fn job_order(
        &mut self,
        jobs: &[JobSnapshot],
        _kind: SlotKind,
        _now: SimTime,
        out: &mut Vec<u32>,
    ) {
        out.extend(jobs.iter().map(|j| j.id));
    }

    // Submission-order passthrough; failure scores gate placement via
    // `admit`, not the job order.
    fn order_cacheable(&self) -> bool {
        true
    }

    fn admit(&mut self, node: NodeId, site: SiteId, kind: SlotKind, now: SimTime) -> bool {
        let threshold = match kind {
            SlotKind::Map => self.map_threshold,
            SlotKind::Reduce => self.reduce_threshold,
        };
        self.effective_penalty(node, site, now) < threshold
    }

    fn allow_speculation(&mut self, node: NodeId, site: SiteId, now: SimTime) -> bool {
        self.effective_penalty(node, site, now) < self.spec_threshold
    }

    fn on_attempt_failed(&mut self, _job: u32, node: NodeId, now: SimTime) {
        self.bump_node(node, ATTEMPT_FAIL_PENALTY, now);
    }

    fn on_tracker_registered(&mut self, node: NodeId, site: SiteId, _now: SimTime) {
        self.node_site.insert(node, site);
    }

    fn on_tracker_dead(&mut self, node: NodeId, now: SimTime) {
        self.bump_node(node, TRACKER_DEATH_PENALTY, now);
    }

    fn site_penalty(&self, site: SiteId, now: SimTime) -> f64 {
        self.decayed(self.site_scores.get(&site), now)
    }

    fn box_clone(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: NodeId = NodeId(1);
    const S: SiteId = SiteId(0);

    fn registered() -> FailureAwareSched {
        let mut f = FailureAwareSched::new();
        f.on_tracker_registered(N, S, SimTime::ZERO);
        f.on_tracker_registered(NodeId(2), S, SimTime::ZERO);
        f
    }

    #[test]
    fn clean_nodes_admit_everything() {
        let mut f = registered();
        let t = SimTime::from_secs(100);
        assert!(f.admit(N, S, SlotKind::Map, t));
        assert!(f.admit(N, S, SlotKind::Reduce, t));
        assert!(f.allow_speculation(N, S, t));
        assert_eq!(f.effective_penalty(N, S, t), 0.0);
    }

    #[test]
    fn graded_quarantine_spec_then_reduce_then_map() {
        let mut f = registered();
        let t = SimTime::from_secs(10);
        // One tracker death: node 2.0 + site 0.5·0.5 = 2.25.
        f.on_tracker_dead(N, t);
        assert!(f.admit(N, S, SlotKind::Map, t));
        assert!(!f.admit(N, S, SlotKind::Reduce, t));
        assert!(!f.allow_speculation(N, S, t));
        // Two more failures push past the map threshold too.
        f.on_attempt_failed(0, N, t);
        f.on_attempt_failed(0, N, t);
        assert!(!f.admit(N, S, SlotKind::Map, t));
    }

    #[test]
    fn site_penalty_taints_neighbours() {
        let mut f = registered();
        let t = SimTime::from_secs(10);
        // Heavy churn on node 1 spills onto sibling node 2 via the site
        // score: 4 deaths × 2.0 × 0.25 site fraction × 0.5 weight = 1.0+.
        for _ in 0..5 {
            f.on_tracker_dead(N, t);
        }
        assert!(f.admit(NodeId(2), S, SlotKind::Map, t));
        assert!(!f.allow_speculation(NodeId(2), S, t));
    }

    #[test]
    fn scores_decay_back_to_service() {
        let mut f = registered().with_half_life(SimDuration::from_secs(60));
        f.on_tracker_dead(N, SimTime::ZERO);
        assert!(!f.allow_speculation(N, S, SimTime::from_secs(1)));
        // 2.25 effective halves every minute: below 1.0 within 2 minutes.
        assert!(f.allow_speculation(N, S, SimTime::from_secs(180)));
        // Monotone recovery: penalty only shrinks with time.
        let early = f.effective_penalty(N, S, SimTime::from_secs(10));
        let late = f.effective_penalty(N, S, SimTime::from_secs(120));
        assert!(late < early);
    }
}
