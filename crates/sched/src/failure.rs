//! Failure-aware placement (after ATLAS, Soualhia et al. 2015).

use crate::{JobSnapshot, Scheduler, SlotKind};
use hog_net::{NodeId, SiteId};
use hog_sim_core::{SimDuration, SimTime};
use std::collections::HashMap;

/// An exponentially-decaying penalty score.
#[derive(Clone, Copy, Debug)]
struct Decayed {
    value: f64,
    at: SimTime,
}

/// FIFO order plus reliability-biased placement: every blamed attempt
/// failure and every tracker death accrues penalty on the node (and a
/// fraction on its site); a node whose effective penalty — its own score
/// plus half its site's — exceeds a per-kind threshold is quarantined.
///
/// On a glidein pool, preemption clusters by site: when a batch scheduler
/// reclaims resources it reclaims many workers of one site in a burst,
/// and the site stays risky while the competing demand persists. The site
/// component captures exactly that, steering long-lived reduces and
/// speculative copies (the expensive things to lose) toward calm sites.
///
/// Thresholds are graded by cost-of-loss: first-attempt maps are cheap to
/// re-run and quarantine last; reduces hold shuffle state and quarantine
/// earlier; speculative copies are pure insurance and are simply not
/// bought on risky nodes. Scores halve every `half_life` (default
/// 10 min), so a site that stops churning earns its way back and nothing
/// starves permanently.
#[derive(Clone, Debug)]
pub struct FailureAwareSched {
    half_life: SimDuration,
    map_threshold: f64,
    reduce_threshold: f64,
    spec_threshold: f64,
    /// When set, nodes whose effective penalty reaches this value are
    /// *predicted* to die: the JobTracker launches rescue copies of
    /// their running tasks elsewhere ([`Scheduler::predicts_failure`]).
    predict_threshold: Option<f64>,
    node_scores: HashMap<NodeId, Decayed>,
    site_scores: HashMap<SiteId, Decayed>,
    node_site: HashMap<NodeId, SiteId>,
    /// Registration instant of each live tracker (age-hazard predictor).
    node_birth: HashMap<NodeId, SimTime>,
    /// Recent observed glidein lifetimes per site (see [`SiteLifetimes`]).
    site_lifetimes: HashMap<SiteId, SiteLifetimes>,
}

/// A ring of the most recent observed glidein lifetimes at one site,
/// with its median kept current. Preemption there is roughly log-normal
/// around this median, so a worker whose *age* approaches it is entering
/// its highest-hazard band — the second signal (besides penalty bursts)
/// the failure predictor uses.
#[derive(Clone, Debug, Default)]
struct SiteLifetimes {
    samples: Vec<f64>,
    next: usize,
    median: f64,
}

/// Ring capacity: enough samples to smooth noise, few enough that the
/// median tracks the diurnal wave as it compresses lifetimes.
const LIFETIME_WINDOW: usize = 16;
/// Observed deaths needed at a site before its age hazard is trusted.
const MIN_LIFETIME_SAMPLES: usize = 4;
/// Observed site median lifetime (seconds) above which rescue copies
/// stop paying: the chance a flagged node dies inside one task length
/// falls below the cost of running the copy. Glideins at aggressive OSG
/// sites live well under this during the reclaim wave; the synthetic
/// 2 h-mean exponential model sits far above it, so prediction stays
/// dormant there.
const MEDIAN_RESCUE_CEILING: f64 = 3600.0;

/// The hazard band as fractions of the site's median lifetime: a node is
/// "due" from 90% of the median; past 1.8× it is presumed a long-lived
/// survivor of the heavy tail and no longer flagged. The band is kept
/// tight on purpose — every flagged node is a rescue-copy magnet, so
/// precision (copies that pay off) matters more than recall here; the
/// penalty-burst half of the predictor catches the rest.
const AGE_BAND: (f64, f64) = (0.9, 1.8);

impl SiteLifetimes {
    fn push(&mut self, lifetime: f64) {
        if self.samples.len() < LIFETIME_WINDOW {
            self.samples.push(lifetime);
        } else {
            self.samples[self.next] = lifetime;
        }
        self.next = (self.next + 1) % LIFETIME_WINDOW;
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        self.median = sorted[sorted.len() / 2];
    }
}

/// Default prediction threshold: below the speculation bar (1.0), so a
/// site that lost three workers inside a half-life (site score 1.5 →
/// effective 0.75 for its survivors) marks the survivors doomed — the
/// site-correlated burst pattern glidein preemption actually shows.
pub(crate) const DEFAULT_PREDICT_THRESHOLD: f64 = 0.75;

/// Penalty for one blamed attempt failure on a node.
const ATTEMPT_FAIL_PENALTY: f64 = 1.0;
/// Penalty for a tracker death (preemption) on a node.
const TRACKER_DEATH_PENALTY: f64 = 2.0;
/// Fraction of a node penalty that also accrues to its site.
const SITE_FRACTION: f64 = 0.25;
/// Weight of the site score in a node's effective penalty.
const SITE_WEIGHT: f64 = 0.5;

impl FailureAwareSched {
    /// Failure-aware placement with default tuning: 10-minute score
    /// half-life; quarantine thresholds 4.0 (maps), 1.5 (reduces), 1.0
    /// (speculation).
    pub fn new() -> Self {
        FailureAwareSched {
            half_life: SimDuration::from_secs(600),
            map_threshold: 4.0,
            reduce_threshold: 1.5,
            spec_threshold: 1.0,
            predict_threshold: None,
            node_scores: HashMap::new(),
            site_scores: HashMap::new(),
            node_site: HashMap::new(),
            node_birth: HashMap::new(),
            site_lifetimes: HashMap::new(),
        }
    }

    /// Override the score half-life (tests and ablations).
    pub fn with_half_life(mut self, half_life: SimDuration) -> Self {
        self.half_life = half_life;
        self
    }

    /// Override the quarantine thresholds for maps / reduces /
    /// speculative copies.
    pub fn with_thresholds(mut self, map: f64, reduce: f64, spec: f64) -> Self {
        self.map_threshold = map;
        self.reduce_threshold = reduce;
        self.spec_threshold = spec;
        self
    }

    /// Turn on failure prediction: nodes whose effective penalty reaches
    /// `threshold` are reported doomed via [`Scheduler::predicts_failure`],
    /// and the JobTracker pre-emptively launches rescue copies of their
    /// running tasks instead of waiting the 30 s for the loss detector.
    pub fn with_prediction(mut self, threshold: f64) -> Self {
        self.predict_threshold = Some(threshold);
        self
    }

    fn decayed(&self, d: Option<&Decayed>, now: SimTime) -> f64 {
        let Some(d) = d else { return 0.0 };
        let dt = now.saturating_since(d.at).as_secs_f64();
        d.value * 0.5f64.powf(dt / self.half_life.as_secs_f64())
    }

    fn bump_node(&mut self, node: NodeId, amount: f64, now: SimTime) {
        let value = self.decayed(self.node_scores.get(&node), now) + amount;
        self.node_scores.insert(node, Decayed { value, at: now });
        if let Some(&site) = self.node_site.get(&node) {
            let value = self.decayed(self.site_scores.get(&site), now) + amount * SITE_FRACTION;
            self.site_scores.insert(site, Decayed { value, at: now });
        }
    }

    /// Effective penalty of a node: its own score plus `SITE_WEIGHT` (0.5)
    /// of its site's.
    pub fn effective_penalty(&self, node: NodeId, site: SiteId, now: SimTime) -> f64 {
        self.decayed(self.node_scores.get(&node), now)
            + SITE_WEIGHT * self.decayed(self.site_scores.get(&site), now)
    }

    /// Age-hazard half of the failure predictor: true when the node's
    /// age has entered [`AGE_BAND`] around its site's observed median
    /// lifetime (preemption there is roughly log-normal, so that is
    /// where the death hazard concentrates). Needs
    /// [`MIN_LIFETIME_SAMPLES`] observed deaths at the site first.
    fn age_doomed(&self, node: NodeId, site: SiteId, now: SimTime) -> bool {
        let Some(&birth) = self.node_birth.get(&node) else {
            return false;
        };
        let Some(lt) = self.site_lifetimes.get(&site) else {
            return false;
        };
        if lt.samples.len() < MIN_LIFETIME_SAMPLES {
            return false;
        }
        let age = now.saturating_since(birth).as_secs_f64();
        age >= AGE_BAND.0 * lt.median && age <= AGE_BAND.1 * lt.median
    }

    /// Whether `site`'s observed lifetimes are short enough that rescue
    /// copies there pay for themselves. A copy's payoff is the chance
    /// the original dies while its attempt still runs — roughly
    /// task-length / lifetime — so on long-lived sites (observed median
    /// above [`MEDIAN_RESCUE_CEILING`]) even a "doomed" node will almost
    /// always outlive its tasks and the 30 s reactive detector is the
    /// cheaper tool. Unknown medians (fewer than
    /// [`MIN_LIFETIME_SAMPLES`] deaths) count as long-lived.
    fn rescue_worthy(&self, site: SiteId) -> bool {
        self.site_lifetimes
            .get(&site)
            .is_some_and(|lt| lt.samples.len() >= MIN_LIFETIME_SAMPLES && lt.median <= MEDIAN_RESCUE_CEILING)
    }
}

impl Default for FailureAwareSched {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for FailureAwareSched {
    fn name(&self) -> &'static str {
        if self.predict_threshold.is_some() {
            "predictive"
        } else {
            "failure_aware"
        }
    }

    fn job_order(
        &mut self,
        jobs: &[JobSnapshot],
        _kind: SlotKind,
        _now: SimTime,
        out: &mut Vec<u32>,
    ) {
        out.extend(jobs.iter().map(|j| j.id));
    }

    // Submission-order passthrough; failure scores gate placement via
    // `admit`, not the job order.
    fn order_cacheable(&self) -> bool {
        true
    }

    fn admit(&mut self, node: NodeId, site: SiteId, kind: SlotKind, now: SimTime) -> bool {
        let threshold = match kind {
            SlotKind::Map => self.map_threshold,
            SlotKind::Reduce => self.reduce_threshold,
        };
        self.effective_penalty(node, site, now) < threshold
    }

    fn allow_speculation(&mut self, node: NodeId, site: SiteId, now: SimTime) -> bool {
        self.effective_penalty(node, site, now) < self.spec_threshold
    }

    fn on_attempt_failed(&mut self, _job: u32, node: NodeId, now: SimTime) {
        self.bump_node(node, ATTEMPT_FAIL_PENALTY, now);
    }

    fn on_tracker_registered(&mut self, node: NodeId, site: SiteId, now: SimTime) {
        self.node_site.insert(node, site);
        // A re-registration is a fresh glidein on the same slot: its age
        // clock restarts.
        self.node_birth.insert(node, now);
    }

    fn on_tracker_dead(&mut self, node: NodeId, now: SimTime) {
        self.bump_node(node, TRACKER_DEATH_PENALTY, now);
        if let (Some(&birth), Some(&site)) =
            (self.node_birth.get(&node), self.node_site.get(&node))
        {
            let lifetime = now.saturating_since(birth).as_secs_f64();
            self.site_lifetimes.entry(site).or_default().push(lifetime);
            self.node_birth.remove(&node);
        }
    }

    fn site_penalty(&self, site: SiteId, now: SimTime) -> f64 {
        self.decayed(self.site_scores.get(&site), now)
    }

    fn prediction_enabled(&self) -> bool {
        self.predict_threshold.is_some()
    }

    // Two hazard signals, either one dooms a node: a penalty burst (the
    // site just lost workers inside a half-life — correlated reclaim in
    // progress) or the age band (the node is approaching its site's
    // observed median lifetime, where the log-normal death hazard
    // concentrates).
    fn predicts_failure(&self, node: NodeId, site: SiteId, now: SimTime) -> bool {
        let Some(t) = self.predict_threshold else {
            return false;
        };
        self.effective_penalty(node, site, now) >= t || self.age_doomed(node, site, now)
    }

    // Rescue sourcing is stricter than placement avoidance. The plain
    // penalty burst is mostly site score — it flags every survivor at a
    // stricken site at once, and copying work off dozens of nodes that
    // will mostly outlive their tasks trades a few lucky hits for a
    // pool-wide load increase. Sourcing therefore needs either the
    // node-specific age signal or a *double*-threshold burst (a site
    // actively melting, not merely bruised).
    fn marks_doomed(&self, node: NodeId, site: SiteId, now: SimTime) -> bool {
        let Some(t) = self.predict_threshold else {
            return false;
        };
        self.rescue_worthy(site)
            && (self.age_doomed(node, site, now)
                || self.effective_penalty(node, site, now) >= 2.0 * t)
    }

    // Rescue placement is graded *relatively*: a node below the
    // speculation bar is always acceptable, and when a preemption wave
    // pushes the whole pool past absolute bars, any node at most half as
    // penalised as the doomed one still qualifies — moving work from the
    // melting site to the calmest one available beats leaving it to die.
    // Either way, never buy insurance on a node that is itself due to
    // die by age.
    fn allow_rescue(
        &self,
        node: NodeId,
        site: SiteId,
        doomed: NodeId,
        doomed_site: SiteId,
        now: SimTime,
    ) -> bool {
        if self.age_doomed(node, site, now) {
            return false;
        }
        let eff = self.effective_penalty(node, site, now);
        eff < self.spec_threshold
            || eff <= 0.5 * self.effective_penalty(doomed, doomed_site, now)
    }

    fn box_clone(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const N: NodeId = NodeId(1);
    const S: SiteId = SiteId(0);

    fn registered() -> FailureAwareSched {
        let mut f = FailureAwareSched::new();
        f.on_tracker_registered(N, S, SimTime::ZERO);
        f.on_tracker_registered(NodeId(2), S, SimTime::ZERO);
        f
    }

    #[test]
    fn clean_nodes_admit_everything() {
        let mut f = registered();
        let t = SimTime::from_secs(100);
        assert!(f.admit(N, S, SlotKind::Map, t));
        assert!(f.admit(N, S, SlotKind::Reduce, t));
        assert!(f.allow_speculation(N, S, t));
        assert_eq!(f.effective_penalty(N, S, t), 0.0);
    }

    #[test]
    fn graded_quarantine_spec_then_reduce_then_map() {
        let mut f = registered();
        let t = SimTime::from_secs(10);
        // One tracker death: node 2.0 + site 0.5·0.5 = 2.25.
        f.on_tracker_dead(N, t);
        assert!(f.admit(N, S, SlotKind::Map, t));
        assert!(!f.admit(N, S, SlotKind::Reduce, t));
        assert!(!f.allow_speculation(N, S, t));
        // Two more failures push past the map threshold too.
        f.on_attempt_failed(0, N, t);
        f.on_attempt_failed(0, N, t);
        assert!(!f.admit(N, S, SlotKind::Map, t));
    }

    #[test]
    fn site_penalty_taints_neighbours() {
        let mut f = registered();
        let t = SimTime::from_secs(10);
        // Heavy churn on node 1 spills onto sibling node 2 via the site
        // score: 4 deaths × 2.0 × 0.25 site fraction × 0.5 weight = 1.0+.
        for _ in 0..5 {
            f.on_tracker_dead(N, t);
        }
        assert!(f.admit(NodeId(2), S, SlotKind::Map, t));
        assert!(!f.allow_speculation(NodeId(2), S, t));
    }

    #[test]
    fn prediction_flags_survivors_of_a_site_burst() {
        let mut f = registered().with_prediction(DEFAULT_PREDICT_THRESHOLD);
        assert!(f.prediction_enabled());
        assert_eq!(f.name(), "predictive");
        let t = SimTime::from_secs(10);
        // Node 2 is clean and its site calm: no prediction.
        assert!(!f.predicts_failure(NodeId(2), S, t));
        // Three same-site deaths inside a half-life: site score 1.5,
        // survivors' effective penalty 0.75 — predicted doomed.
        for _ in 0..3 {
            f.on_tracker_dead(N, t);
        }
        assert!(f.predicts_failure(NodeId(2), S, t));
        // The site calms down: the prediction clears with decay.
        assert!(!f.predicts_failure(NodeId(2), S, SimTime::from_secs(2000)));
    }

    #[test]
    fn age_band_predicts_nodes_due_by_site_lifetime() {
        let mut f = FailureAwareSched::new().with_prediction(DEFAULT_PREDICT_THRESHOLD);
        // Four deaths spaced 2000 s apart: lifetimes 2000/4000/6000/8000,
        // median 6000, while the decayed burst penalty stays below the
        // prediction threshold throughout — isolating the age signal.
        for (i, t) in [2000u64, 4000, 6000, 8000].iter().enumerate() {
            let n = NodeId(10 + i as u32);
            f.on_tracker_registered(n, S, SimTime::ZERO);
            f.on_tracker_dead(n, SimTime::from_secs(*t));
        }
        let now = SimTime::from_secs(9000);
        f.on_tracker_registered(NodeId(1), S, SimTime::from_secs(3000));
        f.on_tracker_registered(NodeId(2), S, SimTime::from_secs(8900));
        f.on_tracker_registered(NodeId(3), S, SimTime::ZERO);
        assert!(
            f.effective_penalty(NodeId(2), S, now) < DEFAULT_PREDICT_THRESHOLD,
            "penalty must not drive this test"
        );
        // Age 6000 ≥ 0.9·median: due. Age 100: young. Age 9000 is still
        // inside 1.8× the median; a node far past it is a tail survivor.
        assert!(f.predicts_failure(NodeId(1), S, now));
        assert!(!f.predicts_failure(NodeId(2), S, now));
        assert!(f.predicts_failure(NodeId(3), S, now));
        let late = SimTime::from_secs(40_000);
        assert!(!f.age_doomed(NodeId(3), S, late));
        // A node due by age is refused as a rescue *target* even though
        // its penalty is clean.
        assert!(!f.allow_rescue(NodeId(1), S, NodeId(3), S, now));
        assert!(f.allow_rescue(NodeId(2), S, NodeId(3), S, now));
    }

    #[test]
    fn rescue_bar_is_relative_under_a_pool_wide_wave() {
        let mut f = registered().with_prediction(DEFAULT_PREDICT_THRESHOLD);
        let t = SimTime::from_secs(10);
        // Calm pool: a clean node takes rescues via the absolute bar.
        assert!(f.allow_rescue(NodeId(2), S, N, S, t));
        // A wave melts node 1: eight deaths give it effective 18 (node
        // 16 + half of site 4) and taint its site-mate node 2 up to 2.0
        // — past the speculation bar, so the absolute bar is gone.
        for _ in 0..8 {
            f.on_tracker_dead(N, t);
        }
        assert!(!f.allow_speculation(NodeId(2), S, t));
        // The relative bar keeps rescue alive: node 2 is at most half as
        // penalised as the doomed node (2.0 ≤ 18/2), while the doomed
        // node itself never qualifies as its own rescue target.
        assert!(f.allow_rescue(NodeId(2), S, N, S, t));
        assert!(!f.allow_rescue(N, S, N, S, t));
    }

    #[test]
    fn prediction_off_never_predicts() {
        let mut f = registered();
        assert!(!f.prediction_enabled());
        assert_eq!(f.name(), "failure_aware");
        let t = SimTime::from_secs(10);
        for _ in 0..10 {
            f.on_tracker_dead(N, t);
        }
        assert!(!f.predicts_failure(N, S, t));
    }

    #[test]
    fn scores_decay_back_to_service() {
        let mut f = registered().with_half_life(SimDuration::from_secs(60));
        f.on_tracker_dead(N, SimTime::ZERO);
        assert!(!f.allow_speculation(N, S, SimTime::from_secs(1)));
        // 2.25 effective halves every minute: below 1.0 within 2 minutes.
        assert!(f.allow_speculation(N, S, SimTime::from_secs(180)));
        // Monotone recovery: penalty only shrinks with time.
        let early = f.effective_penalty(N, S, SimTime::from_secs(10));
        let late = f.effective_penalty(N, S, SimTime::from_secs(120));
        assert!(late < early);
    }
}
