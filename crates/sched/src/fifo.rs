//! Stock Hadoop FIFO: the policy the paper ran.

use crate::{JobSnapshot, Scheduler, SlotKind};
use hog_sim_core::SimTime;

/// Strict submission-order scheduling with the three-level locality
/// ladder and no gating — a faithful port of the pre-trait JobTracker.
///
/// Every hook keeps its permissive default: jobs are offered slots oldest
/// first, any locality level is taken immediately, every node is
/// acceptable. The policy holds no state, so it is trivially
/// deterministic.
#[derive(Clone, Copy, Debug, Default)]
pub struct FifoSched;

impl FifoSched {
    /// A FIFO policy.
    pub fn new() -> Self {
        FifoSched
    }
}

impl Scheduler for FifoSched {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn job_order(
        &mut self,
        jobs: &[JobSnapshot],
        _kind: SlotKind,
        _now: SimTime,
        out: &mut Vec<u32>,
    ) {
        out.extend(jobs.iter().map(|j| j.id));
    }

    fn order_cacheable(&self) -> bool {
        true
    }

    fn box_clone(&self) -> Box<dyn Scheduler> {
        Box::new(*self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(id: u32, queue_pos: usize) -> JobSnapshot {
        JobSnapshot {
            id,
            queue_pos,
            pending: 1,
            running: 0,
        }
    }

    #[test]
    fn preserves_submission_order() {
        let mut f = FifoSched::new();
        let jobs = [snap(3, 0), snap(7, 1), snap(1, 2)];
        let mut out = Vec::new();
        f.job_order(&jobs, SlotKind::Map, SimTime::ZERO, &mut out);
        assert_eq!(out, vec![3, 7, 1]);
    }

    #[test]
    fn defaults_are_permissive() {
        use crate::{Gate, Locality};
        use hog_net::{NodeId, SiteId};
        let mut f = FifoSched::new();
        assert!(!f.rack_aware());
        assert_eq!(
            f.locality_gate(0, Locality::Remote, SimTime::ZERO),
            Gate::Accept
        );
        assert!(f.admit(NodeId(0), SiteId(0), SlotKind::Map, SimTime::ZERO));
        assert!(f.allow_speculation(NodeId(0), SiteId(0), SimTime::ZERO));
    }
}
