//! Fair sharing with delay scheduling (Zaharia et al., EuroSys 2010).

use crate::{Gate, JobSnapshot, Locality, Scheduler, SlotKind};
use hog_sim_core::{SimDuration, SimTime};
use std::collections::HashMap;

/// Fair sharing plus the D-wait locality heuristic.
///
/// **Fair sharing:** slots go to the job with the fewest running tasks of
/// the slot's kind (ties broken by submission order), instead of strict
/// FIFO. Small jobs stop queueing behind large ones.
///
/// **Delay scheduling:** when the best placement a heartbeat offers a job
/// is non-local, the job *declines* and keeps its tasks pending, betting
/// that a better-placed slot frees up within a few heartbeats. A per-job
/// wait clock starts at the first declined offer; as the wait grows the
/// job walks down the ladder — after [`FairSched::with_delays`]'
/// `node_delay` it accepts rack-local, after `+ rack_delay` site-local,
/// after `+ site_delay` anything. A node-local launch resets the clock
/// (locality is achievable again); non-local launches leave it running so
/// an unlucky job does not re-serve its full sentence per task.
///
/// This is the only shipped policy that uses the rack rung
/// ([`Scheduler::rack_aware`] is `true`).
#[derive(Clone, Debug)]
pub struct FairSched {
    node_delay: SimDuration,
    rack_delay: SimDuration,
    site_delay: SimDuration,
    /// Per-job wait-clock start (present = currently waiting).
    waiting_since: HashMap<u32, SimTime>,
}

impl FairSched {
    /// Fair + delay scheduling with default waits tuned for the 3-second
    /// HOG heartbeat: 6 s to rack-local, 12 s to site-local, 24 s to
    /// remote.
    pub fn new() -> Self {
        FairSched {
            node_delay: SimDuration::from_secs(6),
            rack_delay: SimDuration::from_secs(6),
            site_delay: SimDuration::from_secs(12),
            waiting_since: HashMap::new(),
        }
    }

    /// Override the ladder waits: `node_delay` before rack-local,
    /// `+ rack_delay` before site-local, `+ site_delay` before remote.
    pub fn with_delays(
        mut self,
        node_delay: SimDuration,
        rack_delay: SimDuration,
        site_delay: SimDuration,
    ) -> Self {
        self.node_delay = node_delay;
        self.rack_delay = rack_delay;
        self.site_delay = site_delay;
        self
    }

    /// Total wait required before `level` becomes acceptable.
    fn required_wait(&self, level: Locality) -> SimDuration {
        match level {
            Locality::NodeLocal => SimDuration::ZERO,
            Locality::RackLocal => self.node_delay,
            Locality::SiteLocal => self.node_delay + self.rack_delay,
            Locality::Remote => self.node_delay + self.rack_delay + self.site_delay,
        }
    }
}

impl Default for FairSched {
    fn default() -> Self {
        Self::new()
    }
}

impl Scheduler for FairSched {
    fn name(&self) -> &'static str {
        "fair"
    }

    fn rack_aware(&self) -> bool {
        true
    }

    fn job_order(
        &mut self,
        jobs: &[JobSnapshot],
        _kind: SlotKind,
        _now: SimTime,
        out: &mut Vec<u32>,
    ) {
        let mut order: Vec<(u32, usize, u32)> = jobs
            .iter()
            .map(|j| (j.running, j.queue_pos, j.id))
            .collect();
        order.sort_unstable();
        out.extend(order.into_iter().map(|(_, _, id)| id));
    }

    // Sorts on snapshot fields only; `waiting_since` never feeds the order.
    fn order_cacheable(&self) -> bool {
        true
    }

    fn locality_gate(&mut self, job: u32, level: Locality, now: SimTime) -> Gate {
        if level == Locality::NodeLocal {
            return Gate::Accept;
        }
        let since = *self.waiting_since.entry(job).or_insert(now);
        if now.saturating_since(since) >= self.required_wait(level) {
            Gate::Accept
        } else {
            Gate::Defer
        }
    }

    fn on_assigned(
        &mut self,
        job: u32,
        kind: SlotKind,
        _node: hog_net::NodeId,
        locality: Option<Locality>,
        _now: SimTime,
    ) {
        // A node-local map launch proves locality is achievable again:
        // restart the job's sentence. Reduce launches carry no locality
        // signal and leave the clock alone.
        if kind == SlotKind::Map && locality == Some(Locality::NodeLocal) {
            self.waiting_since.remove(&job);
        }
    }

    fn on_job_removed(&mut self, job: u32, _now: SimTime) {
        self.waiting_since.remove(&job);
    }

    fn box_clone(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hog_net::NodeId;

    fn snap(id: u32, queue_pos: usize, running: u32) -> JobSnapshot {
        JobSnapshot {
            id,
            queue_pos,
            pending: 5,
            running,
        }
    }

    #[test]
    fn fewest_running_first_ties_by_submission() {
        let mut f = FairSched::new();
        let jobs = [snap(0, 0, 4), snap(1, 1, 1), snap(2, 2, 1), snap(3, 3, 0)];
        let mut out = Vec::new();
        f.job_order(&jobs, SlotKind::Map, SimTime::ZERO, &mut out);
        assert_eq!(out, vec![3, 1, 2, 0]);
    }

    #[test]
    fn delay_ladder_unlocks_with_wait() {
        let mut f = FairSched::new().with_delays(
            SimDuration::from_secs(5),
            SimDuration::from_secs(5),
            SimDuration::from_secs(10),
        );
        let t = SimTime::from_secs;
        // Node-local is always acceptable and does not start the clock.
        assert_eq!(f.locality_gate(9, Locality::NodeLocal, t(0)), Gate::Accept);
        // First non-local offer starts the clock and defers.
        assert_eq!(f.locality_gate(9, Locality::RackLocal, t(0)), Gate::Defer);
        assert_eq!(f.locality_gate(9, Locality::RackLocal, t(4)), Gate::Defer);
        assert_eq!(f.locality_gate(9, Locality::RackLocal, t(5)), Gate::Accept);
        // Worse levels need longer waits.
        assert_eq!(f.locality_gate(9, Locality::SiteLocal, t(9)), Gate::Defer);
        assert_eq!(f.locality_gate(9, Locality::SiteLocal, t(10)), Gate::Accept);
        assert_eq!(f.locality_gate(9, Locality::Remote, t(19)), Gate::Defer);
        assert_eq!(f.locality_gate(9, Locality::Remote, t(20)), Gate::Accept);
    }

    #[test]
    fn node_local_launch_resets_the_clock() {
        let mut f = FairSched::new();
        let t = SimTime::from_secs;
        assert_eq!(f.locality_gate(1, Locality::Remote, t(0)), Gate::Defer);
        assert_eq!(f.locality_gate(1, Locality::Remote, t(24)), Gate::Accept);
        // Remote launch leaves the clock running...
        f.on_assigned(1, SlotKind::Map, NodeId(0), Some(Locality::Remote), t(24));
        assert_eq!(f.locality_gate(1, Locality::Remote, t(25)), Gate::Accept);
        // ...but a node-local launch resets it.
        f.on_assigned(
            1,
            SlotKind::Map,
            NodeId(0),
            Some(Locality::NodeLocal),
            t(26),
        );
        assert_eq!(f.locality_gate(1, Locality::Remote, t(27)), Gate::Defer);
    }
}
