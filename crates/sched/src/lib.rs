//! Pluggable slot-assignment policies for the HOG JobTracker.
//!
//! HOG inherits stock Hadoop's FIFO job queue, but the locality/fairness
//! dimension of its evaluation (the workload replays Zaharia's delay-
//! scheduling study) is policy-sensitive: on a churny multi-site pool the
//! scheduler decides how much map input crosses the WAN and which nodes
//! absorb retries. This crate factors those decisions out of the
//! JobTracker behind the [`Scheduler`] trait so policies can be swapped
//! without touching the MapReduce mechanics.
//!
//! Three policies ship:
//!
//! * [`FifoSched`] — stock Hadoop: strict submission order, three-level
//!   locality ladder (node → site → remote), no gating. A byte-faithful
//!   port of the pre-trait JobTracker; the scale benchmark's outcome
//!   fingerprints prove it bit-identical.
//! * [`FairSched`] — fair sharing (fewest running tasks first) plus
//!   *delay scheduling*: a job briefly declines non-local slots, walking
//!   down a four-level ladder (node → rack → site → remote) as its wait
//!   grows.
//! * [`FailureAwareSched`] — ATLAS-style reliability placement: attempt
//!   failures and tracker deaths accrue an exponentially-decaying penalty
//!   per node and per site; work (and especially speculative copies) is
//!   kept off nodes whose penalty exceeds per-kind thresholds.
//!
//! # Division of labour
//!
//! The JobTracker keeps all *mechanism*: task tables, locality indices,
//! slot accounting, speculation bookkeeping. A [`Scheduler`] only makes
//! *choices*, through three query hooks — [`Scheduler::job_order`] (which
//! job gets the next slot), [`Scheduler::locality_gate`] (take this
//! locality level now, or wait), [`Scheduler::admit`] /
//! [`Scheduler::allow_speculation`] (is this node acceptable at all) —
//! and observes the world through `on_*` feedback callbacks.
//!
//! # Determinism rules
//!
//! Policies must be deterministic functions of their call history: no
//! ambient randomness, no clocks other than the passed [`SimTime`], no
//! iteration over unordered containers when the order can influence a
//! decision. Everything here upholds that, so two same-seed runs of any
//! policy produce bit-identical simulations (covered by the determinism
//! suite in `hog-core`).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod failure;
mod fair;
mod fifo;

pub use failure::FailureAwareSched;
pub use fair::FairSched;
pub use fifo::FifoSched;

use hog_net::{NodeId, SiteId};
use hog_sim_core::SimTime;

/// Locality level of a map assignment, best to worst. FIFO uses the
/// paper's three-level ladder (never producing [`Locality::RackLocal`]);
/// rack-aware policies insert the synthesised rack tier between node and
/// site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Locality {
    /// Input block has a replica on the assigned node.
    NodeLocal,
    /// A replica lives in the same (synthesised) rack.
    RackLocal,
    /// A replica lives in the same site.
    SiteLocal,
    /// Input must cross the WAN.
    Remote,
}

/// Which slot type an assignment decision concerns.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SlotKind {
    /// A map slot.
    Map,
    /// A reduce slot.
    Reduce,
}

/// Verdict of [`Scheduler::locality_gate`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Gate {
    /// Take the assignment at the offered locality level.
    Accept,
    /// Decline; leave the job's tasks pending and move to the next job
    /// (delay scheduling hopes a better-placed slot frees up soon).
    Defer,
}

/// What a policy sees of one job when ordering the queue: identity,
/// submission order, and its load for the slot kind being assigned.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSnapshot {
    /// Job id (the JobTracker's dense `JobId.0`).
    pub id: u32,
    /// Position in the submission-order queue (0 = oldest incomplete).
    pub queue_pos: usize,
    /// Pending (unassigned) tasks of the queried slot kind.
    pub pending: u32,
    /// Currently running attempts of the queried slot kind.
    pub running: u32,
}

/// A slot-assignment policy.
///
/// The JobTracker consults the policy on every heartbeat; all methods
/// must be deterministic (see the crate docs). Every hook except
/// [`Scheduler::name`] and [`Scheduler::job_order`] has a permissive
/// default, so a minimal policy only decides job order.
pub trait Scheduler {
    /// Short policy name for reports and traces (e.g. `"fifo"`).
    fn name(&self) -> &'static str;

    /// Whether the JobTracker should offer the rack-local rung of the
    /// locality ladder to this policy. FIFO keeps the paper's exact
    /// node → site → remote ladder and returns `false`.
    fn rack_aware(&self) -> bool {
        false
    }

    /// Order the incomplete jobs for assignment of one `kind` slot: push
    /// job ids into `out`, highest priority first. Jobs arrive in
    /// submission order; a pure FIFO policy copies the ids through.
    fn job_order(&mut self, jobs: &[JobSnapshot], kind: SlotKind, now: SimTime, out: &mut Vec<u32>);

    /// Whether [`Scheduler::job_order`] is a *pure function* of the
    /// snapshot slice and slot kind: no dependence on `now` or on policy
    /// state mutated between calls, and no side effects of its own.
    ///
    /// When `true`, the JobTracker caches the computed order and only
    /// calls `job_order` again after a scheduling-relevant mutation
    /// (job submitted/retired, a task changed pending↔running state) —
    /// the dirty-tracked index that makes idle heartbeats O(1) instead
    /// of O(jobs) at 10k nodes. All three shipped policies qualify:
    /// Fifo and FailureAware pass submission order through, and Fair
    /// sorts on snapshot fields only (its *stateful* hooks —
    /// `locality_gate`, `on_assigned` — still run on every attempt).
    /// The conservative default keeps external stateful policies
    /// correct at the old cost.
    fn order_cacheable(&self) -> bool {
        false
    }

    /// The best locality level available to `job` on the heartbeating
    /// node is `level`: take it, or defer hoping for better placement?
    /// Never called with a strictly better level available.
    fn locality_gate(&mut self, job: u32, level: Locality, now: SimTime) -> Gate {
        let _ = (job, level, now);
        Gate::Accept
    }

    /// Whether `kind` work may be placed on `node` at all (failure-aware
    /// quarantine). Returning `false` leaves the node's slots idle this
    /// heartbeat; the default accepts everything.
    fn admit(&mut self, node: NodeId, site: SiteId, kind: SlotKind, now: SimTime) -> bool {
        let _ = (node, site, kind, now);
        true
    }

    /// Whether a *speculative* copy may be placed on `node`. Policies
    /// biasing away from churn-prone nodes typically hold speculation to
    /// a stricter standard than first attempts.
    fn allow_speculation(&mut self, node: NodeId, site: SiteId, now: SimTime) -> bool {
        let _ = (node, site, now);
        true
    }

    /// A job entered the queue.
    fn on_job_arrived(&mut self, job: u32, now: SimTime) {
        let _ = (job, now);
    }

    /// A job left the queue (completed or failed); drop its state.
    fn on_job_removed(&mut self, job: u32, now: SimTime) {
        let _ = (job, now);
    }

    /// An assignment was made. `locality` is `Some` for maps (including
    /// speculative copies, which run remote) and `None` for reduces.
    fn on_assigned(
        &mut self,
        job: u32,
        kind: SlotKind,
        node: NodeId,
        locality: Option<Locality>,
        now: SimTime,
    ) {
        let _ = (job, kind, node, locality, now);
    }

    /// An attempt of `job` failed on `node` (blamed failures only, not
    /// kill-by-sibling).
    fn on_attempt_failed(&mut self, job: u32, node: NodeId, now: SimTime) {
        let _ = (job, node, now);
    }

    /// A tasktracker registered (or re-registered) on `node` in `site`.
    fn on_tracker_registered(&mut self, node: NodeId, site: SiteId, now: SimTime) {
        let _ = (node, site, now);
    }

    /// A tasktracker was declared dead.
    fn on_tracker_dead(&mut self, node: NodeId, now: SimTime) {
        let _ = (node, now);
    }

    /// The policy's current failure penalty for a whole site (0.0 when
    /// the policy keeps no failure history). The elastic pool controller
    /// reads this to release workers at churn-prone sites first.
    fn site_penalty(&self, site: SiteId, now: SimTime) -> f64 {
        let _ = (site, now);
        0.0
    }

    /// Whether this policy forecasts node failures at all. When `false`
    /// (the default) the JobTracker never runs its rescue-copy pass, so
    /// non-predictive runs stay bit-identical to pre-prediction builds.
    fn prediction_enabled(&self) -> bool {
        false
    }

    /// Whether the policy predicts `node` will die soon (ATLAS-style:
    /// launch a *rescue copy* of its running work elsewhere before the
    /// 30 s death detector fires). Must be derived only from observed
    /// failure history — never from simulator internals — and must be
    /// deterministic. Only consulted when [`Scheduler::prediction_enabled`]
    /// is `true`.
    fn predicts_failure(&self, node: NodeId, site: SiteId, now: SimTime) -> bool {
        let _ = (node, site, now);
        false
    }

    /// Whether running work on `node` should be treated as *doomed* for
    /// rescue sourcing. Defaults to [`Scheduler::predicts_failure`], but
    /// policies whose prediction mixes node-specific and pool-wide
    /// signals should answer with the node-specific subset only: every
    /// doomed task is a rescue-copy magnet, and sourcing copies off a
    /// site-wide alarm (which flags every survivor at the site at once)
    /// collapses precision — most of those survivors outlive their
    /// tasks, and each wasted copy is load.
    fn marks_doomed(&self, node: NodeId, site: SiteId, now: SimTime) -> bool {
        self.predicts_failure(node, site, now)
    }

    /// Whether a *rescue* copy of work running on `doomed` (a node the
    /// policy [`predicts_failure`] for) may be placed on `node`. The
    /// default refuses only placements themselves predicted to die —
    /// policies with graded reliability scores should hold rescues to a
    /// *relative* bar instead (meaningfully healthier than the node being
    /// rescued from), so the mechanism keeps working when a preemption
    /// wave taints the whole pool and no node looks absolutely safe.
    ///
    /// [`predicts_failure`]: Scheduler::predicts_failure
    fn allow_rescue(
        &self,
        node: NodeId,
        site: SiteId,
        doomed: NodeId,
        doomed_site: SiteId,
        now: SimTime,
    ) -> bool {
        let _ = (doomed, doomed_site);
        !self.predicts_failure(node, site, now)
    }

    /// Clone this policy, state included, into a fresh box. Master
    /// checkpointing snapshots the live policy through this hook so
    /// accumulated failure history survives a JobTracker failover.
    fn box_clone(&self) -> Box<dyn Scheduler>;
}

impl Clone for Box<dyn Scheduler> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// Which policy a cluster runs. `Copy` so it can ride inside the plain-
/// old-data MapReduce parameter struct; construct the live policy with
/// [`build`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum SchedPolicy {
    /// Stock Hadoop FIFO (the paper's configuration; the default).
    #[default]
    Fifo,
    /// Fair sharing + delay scheduling.
    Fair,
    /// ATLAS-style failure-aware placement on top of FIFO order.
    FailureAware,
    /// [`SchedPolicy::FailureAware`] plus failure *prediction*: nodes
    /// whose decayed penalty crosses a forecast threshold get rescue
    /// copies of their running tasks launched elsewhere before the death
    /// detector fires (the ATLAS loop closed; DESIGN §16.2).
    Predictive,
}

impl SchedPolicy {
    /// Short name matching [`Scheduler::name`] (CLI flags, reports).
    pub fn as_str(self) -> &'static str {
        match self {
            SchedPolicy::Fifo => "fifo",
            SchedPolicy::Fair => "fair",
            SchedPolicy::FailureAware => "failure_aware",
            SchedPolicy::Predictive => "predictive",
        }
    }

    /// Parse a policy name as produced by [`SchedPolicy::as_str`].
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "fifo" => Some(SchedPolicy::Fifo),
            "fair" => Some(SchedPolicy::Fair),
            "failure_aware" | "failure-aware" => Some(SchedPolicy::FailureAware),
            "predictive" => Some(SchedPolicy::Predictive),
            _ => None,
        }
    }
}

/// Instantiate the live policy for a [`SchedPolicy`] selector, with each
/// policy's default tuning.
pub fn build(policy: SchedPolicy) -> Box<dyn Scheduler> {
    match policy {
        SchedPolicy::Fifo => Box::new(FifoSched::new()),
        SchedPolicy::Fair => Box::new(FairSched::new()),
        SchedPolicy::FailureAware => Box::new(FailureAwareSched::new()),
        SchedPolicy::Predictive => Box::new(FailureAwareSched::new().with_prediction(
            failure::DEFAULT_PREDICT_THRESHOLD,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_names_round_trip() {
        for p in [
            SchedPolicy::Fifo,
            SchedPolicy::Fair,
            SchedPolicy::FailureAware,
            SchedPolicy::Predictive,
        ] {
            assert_eq!(SchedPolicy::parse(p.as_str()), Some(p));
            assert_eq!(build(p).name(), p.as_str());
        }
        assert_eq!(SchedPolicy::parse("lottery"), None);
        assert_eq!(SchedPolicy::default(), SchedPolicy::Fifo);
    }

    #[test]
    fn locality_orders_best_to_worst() {
        assert!(Locality::NodeLocal < Locality::RackLocal);
        assert!(Locality::RackLocal < Locality::SiteLocal);
        assert!(Locality::SiteLocal < Locality::Remote);
    }
}
