//! Measurement utilities: step-function time series (with the
//! area-beneath-curve integral used by Table IV of the paper), counters,
//! histograms and summary statistics.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A right-continuous step function of time, e.g. "number of available HOG
/// nodes" (Figure 5 of the paper). Samples must be recorded with
/// non-decreasing timestamps.
#[derive(Clone, Debug, Default)]
pub struct StepSeries {
    points: Vec<(SimTime, f64)>,
}

impl StepSeries {
    /// Empty series.
    pub fn new() -> Self {
        StepSeries { points: Vec::new() }
    }

    /// Record the value `v` taking effect at time `t`.
    ///
    /// Equal timestamps overwrite (last-writer-wins) so a burst of changes
    /// at one instant collapses to its final value. A regressed timestamp
    /// is clamped to the previous sample's time — the series stays a valid
    /// step function rather than silently going out of order; callers that
    /// need to detect regressions use [`StepSeries::try_record`].
    pub fn record(&mut self, t: SimTime, v: f64) {
        match self.try_record(t, v) {
            Ok(()) => {}
            Err(e) => {
                let _ = self.try_record(e.last, v);
            }
        }
    }

    /// Record the value `v` at time `t`, rejecting out-of-order samples.
    ///
    /// Returns [`TimeRegression`] (and records nothing) when `t` precedes
    /// the previous sample's timestamp.
    pub fn try_record(&mut self, t: SimTime, v: f64) -> Result<(), TimeRegression> {
        if let Some(last) = self.points.last_mut() {
            if t < last.0 {
                return Err(TimeRegression {
                    last: last.0,
                    attempted: t,
                });
            }
            if last.0 == t {
                last.1 = v;
                return Ok(());
            }
        }
        self.points.push((t, v));
        Ok(())
    }

    /// The value of the step function at time `t` (0.0 before the first
    /// sample).
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.partition_point(|&(pt, _)| pt <= t) {
            0 => 0.0,
            n => self.points[n - 1].1,
        }
    }

    /// The most recent recorded value (0.0 if empty).
    pub fn last_value(&self) -> f64 {
        self.points.last().map_or(0.0, |&(_, v)| v)
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Raw `(time, value)` samples.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Integrate the step function over `[from, to]` — the paper's "area
    /// beneath the curve" (Table IV) in value·seconds.
    pub fn area(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from || self.points.is_empty() {
            return 0.0;
        }
        let mut area = 0.0;
        let mut cursor = from;
        let mut value = self.value_at(from);
        let start_idx = self.points.partition_point(|&(pt, _)| pt <= from);
        for &(pt, pv) in &self.points[start_idx..] {
            if pt >= to {
                break;
            }
            area += value * (pt - cursor).as_secs_f64();
            cursor = pt;
            value = pv;
        }
        area += value * (to - cursor).as_secs_f64();
        area
    }

    /// Time-weighted mean value over `[from, to]`.
    pub fn mean_over(&self, from: SimTime, to: SimTime) -> f64 {
        let span = to.saturating_since(from).as_secs_f64();
        if span == 0.0 {
            return 0.0;
        }
        self.area(from, to) / span
    }

    /// Minimum and maximum recorded values within `[from, to]`, including
    /// the value carried into the window. Returns `None` for an empty
    /// series.
    pub fn min_max_over(&self, from: SimTime, to: SimTime) -> Option<(f64, f64)> {
        if self.points.is_empty() {
            return None;
        }
        let mut lo = self.value_at(from);
        let mut hi = lo;
        for &(pt, pv) in &self.points {
            if pt > from && pt <= to {
                lo = lo.min(pv);
                hi = hi.max(pv);
            }
        }
        Some((lo, hi))
    }

    /// Downsample to at most `n` evenly spaced points over `[from, to]`
    /// (used by the ASCII figure renderers).
    pub fn resample(&self, from: SimTime, to: SimTime, n: usize) -> Vec<(SimTime, f64)> {
        if n == 0 || to <= from {
            return Vec::new();
        }
        let span = (to - from).as_millis();
        (0..n)
            .map(|i| {
                let t = SimTime::from_millis(
                    from.as_millis() + span * i as u64 / (n.max(2) as u64 - 1),
                );
                (t, self.value_at(t))
            })
            .collect()
    }
}

/// A sample offered to [`StepSeries::try_record`] with a timestamp earlier
/// than the previous sample's.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimeRegression {
    /// Timestamp of the most recent accepted sample.
    pub last: SimTime,
    /// The (earlier) timestamp that was rejected.
    pub attempted: SimTime,
}

impl fmt::Display for TimeRegression {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "sample at {:?} precedes previous sample at {:?}",
            self.attempted, self.last
        )
    }
}

impl std::error::Error for TimeRegression {}

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// Zeroed counter.
    pub fn new() -> Self {
        Counter(0)
    }
    /// Add one.
    #[inline]
    pub fn incr(&mut self) {
        self.0 += 1;
    }
    /// Add `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }
    /// Current count.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Counter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Online summary statistics (Welford) over f64 observations.
#[derive(Clone, Copy, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
    sum: f64,
}

impl Summary {
    /// Empty summary.
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            sum: 0.0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Record a duration in seconds.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }
    /// Arithmetic mean (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }
    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }
    /// Population standard deviation (0.0 when n < 2).
    pub fn std_dev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / self.n as f64).sqrt()
        }
    }
    /// Smallest observation (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.n > 0).then_some(self.min)
    }
    /// Largest observation (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.n > 0).then_some(self.max)
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.n == 0 {
            return write!(f, "n=0");
        }
        write!(
            f,
            "n={} mean={:.2} sd={:.2} min={:.2} max={:.2}",
            self.n,
            self.mean(),
            self.std_dev(),
            self.min,
            self.max
        )
    }
}

/// A fixed-bucket histogram of durations (seconds), used for task-duration
/// and queue-delay distributions in reports.
#[derive(Clone, Debug)]
pub struct Histogram {
    edges: Vec<f64>,
    counts: Vec<u64>,
    overflow: u64,
}

impl Histogram {
    /// Histogram with the given ascending bucket edges. A value `x` lands in
    /// bucket `i` when `edges[i] <= x < edges[i+1]`; below the first edge it
    /// counts into bucket 0; at/above the last edge it counts as overflow.
    pub fn with_edges(edges: Vec<f64>) -> Self {
        assert!(edges.len() >= 2, "need at least two edges");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly ascending"
        );
        let n = edges.len() - 1;
        Histogram {
            edges,
            counts: vec![0; n],
            overflow: 0,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        if x >= *self.edges.last().unwrap() {
            self.overflow += 1;
            return;
        }
        let idx = match self.edges.partition_point(|&e| e <= x) {
            0 => 0,
            n => n - 1,
        };
        let last = self.counts.len() - 1;
        self.counts[idx.min(last)] += 1;
    }

    /// Record a duration observation.
    pub fn record_duration(&mut self, d: SimDuration) {
        self.record(d.as_secs_f64());
    }

    /// Per-bucket counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }
    /// Observations at/above the final edge.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }
    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum::<u64>() + self.overflow
    }
    /// The configured edges.
    pub fn edges(&self) -> &[f64] {
        &self.edges
    }

    /// Approximate `q`-quantile (`0.0 ≤ q ≤ 1.0`) assuming uniform mass
    /// within each bucket. Returns `None` when the histogram is empty or
    /// `q` lies outside `[0, 1]`. Mass in the overflow bucket resolves to
    /// the final edge (the histogram does not know how far above it the
    /// observations fell).
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if !(0.0..=1.0).contains(&q) {
            return None;
        }
        let total = self.total();
        if total == 0 {
            return None;
        }
        let target = q * total as f64;
        let mut acc = 0.0;
        for (i, &c) in self.counts.iter().enumerate() {
            let c = c as f64;
            if c > 0.0 && acc + c >= target {
                let lo = self.edges[i];
                let hi = self.edges[i + 1];
                let frac = ((target - acc) / c).clamp(0.0, 1.0);
                return Some(lo + (hi - lo) * frac);
            }
            acc += c;
        }
        self.edges.last().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn step_series_value_and_area() {
        let mut s = StepSeries::new();
        s.record(SimTime::from_secs(0), 10.0);
        s.record(SimTime::from_secs(10), 20.0);
        s.record(SimTime::from_secs(20), 0.0);
        assert_eq!(s.value_at(SimTime::from_secs(5)), 10.0);
        assert_eq!(s.value_at(SimTime::from_secs(10)), 20.0);
        assert_eq!(s.value_at(SimTime::from_secs(25)), 0.0);
        // 10*10 + 20*10 + 0*10 = 300
        let a = s.area(SimTime::ZERO, SimTime::from_secs(30));
        assert!((a - 300.0).abs() < 1e-9);
    }

    #[test]
    fn step_series_partial_window_area() {
        let mut s = StepSeries::new();
        s.record(SimTime::from_secs(0), 4.0);
        s.record(SimTime::from_secs(10), 8.0);
        // window [5, 15]: 4*5 + 8*5 = 60
        let a = s.area(SimTime::from_secs(5), SimTime::from_secs(15));
        assert!((a - 60.0).abs() < 1e-9);
    }

    #[test]
    fn step_series_before_first_sample_is_zero() {
        let mut s = StepSeries::new();
        s.record(SimTime::from_secs(10), 5.0);
        assert_eq!(s.value_at(SimTime::from_secs(3)), 0.0);
        let a = s.area(SimTime::ZERO, SimTime::from_secs(20));
        assert!((a - 50.0).abs() < 1e-9);
    }

    #[test]
    fn step_series_same_timestamp_overwrites() {
        let mut s = StepSeries::new();
        s.record(SimTime::from_secs(1), 5.0);
        s.record(SimTime::from_secs(1), 7.0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.last_value(), 7.0);
    }

    #[test]
    fn step_series_mean_and_minmax() {
        let mut s = StepSeries::new();
        s.record(SimTime::ZERO, 10.0);
        s.record(SimTime::from_secs(10), 30.0);
        let m = s.mean_over(SimTime::ZERO, SimTime::from_secs(20));
        assert!((m - 20.0).abs() < 1e-9);
        let (lo, hi) = s
            .min_max_over(SimTime::ZERO, SimTime::from_secs(20))
            .unwrap();
        assert_eq!((lo, hi), (10.0, 30.0));
    }

    #[test]
    fn step_series_resample_len() {
        let mut s = StepSeries::new();
        s.record(SimTime::ZERO, 1.0);
        let pts = s.resample(SimTime::ZERO, SimTime::from_secs(100), 11);
        assert_eq!(pts.len(), 11);
        assert!(pts.iter().all(|&(_, v)| v == 1.0));
    }

    #[test]
    fn empty_series_defaults() {
        let s = StepSeries::new();
        assert_eq!(s.value_at(SimTime::from_secs(5)), 0.0);
        assert_eq!(s.area(SimTime::ZERO, SimTime::from_secs(5)), 0.0);
        assert!(s.min_max_over(SimTime::ZERO, SimTime::from_secs(5)).is_none());
    }

    #[test]
    fn counter_behaviour() {
        let mut c = Counter::new();
        c.incr();
        c.add(4);
        assert_eq!(c.get(), 5);
        assert_eq!(c.to_string(), "5");
    }

    #[test]
    fn summary_statistics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.record(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.std_dev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
        assert!((s.sum() - 40.0).abs() < 1e-12);
    }

    #[test]
    fn summary_empty() {
        let s = Summary::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert!(s.min().is_none());
        assert_eq!(s.to_string(), "n=0");
    }

    #[test]
    fn histogram_buckets() {
        let mut h = Histogram::with_edges(vec![0.0, 1.0, 2.0, 4.0]);
        for x in [0.5, 1.5, 1.9, 3.0, 4.0, 100.0, -1.0] {
            h.record(x);
        }
        assert_eq!(h.counts(), &[2, 2, 1]); // -1.0 clamps into bucket 0
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn histogram_rejects_bad_edges() {
        let _ = Histogram::with_edges(vec![0.0, 0.0, 1.0]);
    }

    #[test]
    fn try_record_rejects_regression_without_recording() {
        let mut s = StepSeries::new();
        s.try_record(SimTime::from_secs(10), 1.0).unwrap();
        let err = s.try_record(SimTime::from_secs(5), 9.0).unwrap_err();
        assert_eq!(err.last, SimTime::from_secs(10));
        assert_eq!(err.attempted, SimTime::from_secs(5));
        assert!(err.to_string().contains("precedes"));
        assert_eq!(s.len(), 1);
        assert_eq!(s.last_value(), 1.0);
    }

    #[test]
    fn record_clamps_regressed_samples_to_last_timestamp() {
        let mut s = StepSeries::new();
        s.record(SimTime::from_secs(10), 1.0);
        s.record(SimTime::from_secs(5), 9.0); // regression: clamps to t=10
        assert_eq!(s.len(), 1);
        assert_eq!(s.points(), &[(SimTime::from_secs(10), 9.0)]);
        // The series is still a valid step function and keeps accepting.
        s.record(SimTime::from_secs(20), 3.0);
        assert_eq!(s.len(), 2);
        assert_eq!(s.value_at(SimTime::from_secs(15)), 9.0);
    }

    #[test]
    fn histogram_quantile_interpolates_within_buckets() {
        let mut h = Histogram::with_edges(vec![0.0, 10.0, 20.0]);
        for _ in 0..4 {
            h.record(5.0); // bucket [0, 10)
        }
        for _ in 0..4 {
            h.record(15.0); // bucket [10, 20)
        }
        assert!((h.quantile(0.5).unwrap() - 10.0).abs() < 1e-9);
        assert!((h.quantile(0.25).unwrap() - 5.0).abs() < 1e-9);
        assert!((h.quantile(1.0).unwrap() - 20.0).abs() < 1e-9);
        // q=0 resolves to the start of the first occupied bucket.
        assert!((h.quantile(0.0).unwrap() - 0.0).abs() < 1e-9);
    }

    #[test]
    fn histogram_quantile_edge_cases() {
        let empty = Histogram::with_edges(vec![0.0, 1.0]);
        assert_eq!(empty.quantile(0.5), None);

        let mut h = Histogram::with_edges(vec![0.0, 10.0]);
        h.record(3.0);
        assert_eq!(h.quantile(-0.1), None);
        assert_eq!(h.quantile(1.1), None);
        // Single sample: every quantile lies within its bucket.
        for q in [0.0, 0.5, 1.0] {
            let v = h.quantile(q).unwrap();
            assert!((0.0..=10.0).contains(&v), "q={q} v={v}");
        }

        // Overflow-only mass resolves to the final edge.
        let mut o = Histogram::with_edges(vec![0.0, 10.0]);
        o.record(99.0);
        assert_eq!(o.quantile(0.5), Some(10.0));
    }

    #[test]
    fn summary_single_sample() {
        let mut s = Summary::new();
        s.record(7.0);
        assert_eq!(s.count(), 1);
        assert_eq!(s.mean(), 7.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.min(), Some(7.0));
        assert_eq!(s.max(), Some(7.0));
    }
}
