//! Deterministic discrete-event simulation (DES) kernel for the HOG
//! reproduction.
//!
//! This crate provides the machinery shared by every substrate model in the
//! workspace:
//!
//! * [`time`] — integer-millisecond simulation clock ([`SimTime`],
//!   [`SimDuration`]) with no floating-point drift.
//! * [`queue`] — a deterministic [`EventQueue`] (min-heap keyed by time with
//!   a monotone sequence number for FIFO tie-breaking).
//! * [`engine`] — the [`Simulation`] driver loop over a user-supplied
//!   [`Model`].
//! * [`rng`] — seedable, reproducible random number generation
//!   ([`SimRng`]).
//! * [`dist`] — inverse-transform samplers (exponential, uniform,
//!   log-normal, …) so we do not need `rand_distr`.
//! * [`metrics`] — time-series recording, step-function integration
//!   (area-beneath-curve as used in the paper's Table IV), histograms and
//!   summary statistics.
//! * [`units`] — byte/bandwidth helper constants.
//! * [`audit`] — runtime invariant auditing ([`Violation`], [`Auditable`])
//!   used by the chaos/fault-injection layer.
//!
//! Everything is deterministic given a seed: the same
//! `(model, seed)` pair replays the exact same event sequence. This is the
//! property that makes the paper's figures reproducible as tests.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod audit;
pub mod dist;
pub mod engine;
pub mod metrics;
pub mod queue;
pub mod rng;
pub mod time;
pub mod units;

pub use audit::{Auditable, Violation};
pub use dist::{Exponential, LogNormal, UniformDuration};
pub use engine::{Model, Scheduler, Simulation};
pub use metrics::{Counter, Histogram, StepSeries, Summary, TimeRegression};
pub use queue::EventQueue;
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};
