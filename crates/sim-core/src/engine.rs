//! The simulation driver loop.
//!
//! A [`Model`] owns all mutable world state and handles one event at a
//! time. The [`Simulation`] wrapper owns the clock and the pending-event
//! set and repeatedly feeds the model the earliest event. Models schedule
//! follow-up events through the [`Scheduler`] handle they receive.
//!
//! The split keeps the kernel generic: each substrate crate defines its own
//! event enum for unit testing, and `hog-core` defines the unified event
//! enum used for full-stack runs.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Handle through which a model schedules future events during a callback.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// Build a scheduler handle over `queue` with the clock at `now`.
    ///
    /// [`Simulation::run`] constructs these internally; this constructor
    /// exists for external executors (e.g. a federation co-simulating
    /// several models, each with its own queue, under one global clock)
    /// that need to hand a model the same handle the driver loop would.
    #[inline]
    pub fn over(now: SimTime, queue: &'a mut EventQueue<E>) -> Self {
        Scheduler { now, queue }
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire after `delay`.
    #[inline]
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedule `event` at the absolute instant `at`. Events scheduled in
    /// the past are clamped to fire "now" (still after the current event)
    /// rather than violating clock monotonicity.
    #[inline]
    pub fn at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.queue.push(at, event);
    }

    /// Schedule `event` to fire immediately after the current one.
    #[inline]
    pub fn now_event(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    /// Number of pending events (excluding the one being handled).
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Reserve `n` consecutive queue sequence numbers (see
    /// [`EventQueue::reserve_seqs`]); pair with [`Scheduler::at_with_seq`].
    #[inline]
    pub fn reserve_seqs(&mut self, n: u64) -> u64 {
        self.queue.reserve_seqs(n)
    }

    /// Schedule `event` at `at` under a previously reserved sequence
    /// number, clamping past times to "now" like [`Scheduler::at`].
    #[inline]
    pub fn at_with_seq(&mut self, at: SimTime, seq: u64, event: E) {
        let at = at.max(self.now);
        self.queue.push_with_seq(at, seq, event);
    }
}

/// A simulation model: world state plus an event handler.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle a single event at its firing time, scheduling any follow-ups
    /// through `sched`.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);

    /// Return `true` to stop the run early (checked after every event).
    fn finished(&self) -> bool {
        false
    }
}

/// Outcome of a simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunStats {
    /// Clock value when the run stopped.
    pub end_time: SimTime,
    /// Number of events handled.
    pub events_handled: u64,
    /// High-water mark of the pending-event set (scale diagnostics).
    pub peak_queue: usize,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// Why a run terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained.
    QueueEmpty,
    /// The model reported completion via [`Model::finished`].
    ModelFinished,
    /// The configured horizon was reached.
    HorizonReached,
    /// The configured event budget was exhausted (runaway guard).
    EventBudgetExhausted,
}

/// The simulation executor: clock + event queue + driver loop.
pub struct Simulation<M: Model> {
    queue: EventQueue<M::Event>,
    now: SimTime,
    horizon: SimTime,
    event_budget: u64,
}

impl<M: Model> Default for Simulation<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Model> Simulation<M> {
    /// A simulation with no horizon and a practically unlimited event
    /// budget (2^63 events).
    pub fn new() -> Self {
        Simulation {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: SimTime::MAX,
            event_budget: u64::MAX / 2,
        }
    }

    /// Stop the run when the clock would pass `horizon` (the event at the
    /// horizon itself still executes).
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Cap the number of events handled; guards against non-terminating
    /// models in tests.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Current clock value.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Seed an initial event before the run starts.
    pub fn schedule(&mut self, at: SimTime, event: M::Event) {
        self.queue.push(at, event);
    }

    /// A scheduler handle over this simulation's queue at the current
    /// clock, for bootstrap code shared with externally-driven executors.
    pub fn scheduler(&mut self) -> Scheduler<'_, M::Event> {
        Scheduler::over(self.now, &mut self.queue)
    }

    /// Drive `model` until the queue drains, the model finishes, the
    /// horizon passes, or the event budget is exhausted.
    pub fn run(&mut self, model: &mut M) -> RunStats {
        let mut handled = 0u64;
        loop {
            if handled >= self.event_budget {
                return RunStats {
                    end_time: self.now,
                    events_handled: handled,
                    peak_queue: self.queue.peak_len(),
                    stop: StopReason::EventBudgetExhausted,
                };
            }
            let Some((at, event)) = self.queue.pop() else {
                return RunStats {
                    end_time: self.now,
                    events_handled: handled,
                    peak_queue: self.queue.peak_len(),
                    stop: StopReason::QueueEmpty,
                };
            };
            debug_assert!(at >= self.now, "event queue produced a past event");
            if at > self.horizon {
                // Leave the event unexecuted; the clock parks at the horizon.
                self.now = self.horizon;
                return RunStats {
                    end_time: self.now,
                    events_handled: handled,
                    peak_queue: self.queue.peak_len(),
                    stop: StopReason::HorizonReached,
                };
            }
            self.now = at;
            let mut sched = Scheduler {
                now: self.now,
                queue: &mut self.queue,
            };
            model.handle(event, &mut sched);
            handled += 1;
            if model.finished() {
                return RunStats {
                    end_time: self.now,
                    events_handled: handled,
                    peak_queue: self.queue.peak_len(),
                    stop: StopReason::ModelFinished,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: a counter that reschedules itself `n` times.
    struct Ticker {
        remaining: u32,
        fire_times: Vec<SimTime>,
    }

    enum TickEvent {
        Tick,
    }

    impl Model for Ticker {
        type Event = TickEvent;
        fn handle(&mut self, _ev: TickEvent, sched: &mut Scheduler<'_, TickEvent>) {
            self.fire_times.push(sched.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.after(SimDuration::from_secs(10), TickEvent::Tick);
            }
        }
        fn finished(&self) -> bool {
            false
        }
    }

    #[test]
    fn ticker_runs_to_completion() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, TickEvent::Tick);
        let mut m = Ticker {
            remaining: 3,
            fire_times: vec![],
        };
        let stats = sim.run(&mut m);
        assert_eq!(stats.stop, StopReason::QueueEmpty);
        assert_eq!(m.fire_times.len(), 4);
        assert_eq!(stats.end_time, SimTime::from_secs(30));
        assert_eq!(
            m.fire_times,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                SimTime::from_secs(30)
            ]
        );
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim = Simulation::new().with_horizon(SimTime::from_secs(15));
        sim.schedule(SimTime::ZERO, TickEvent::Tick);
        let mut m = Ticker {
            remaining: 100,
            fire_times: vec![],
        };
        let stats = sim.run(&mut m);
        assert_eq!(stats.stop, StopReason::HorizonReached);
        assert_eq!(m.fire_times.len(), 2); // t=0 and t=10
        assert_eq!(stats.end_time, SimTime::from_secs(15));
    }

    #[test]
    fn event_budget_guards_runaway() {
        struct Forever;
        impl Model for Forever {
            type Event = ();
            fn handle(&mut self, _: (), sched: &mut Scheduler<'_, ()>) {
                sched.now_event(());
            }
        }
        let mut sim = Simulation::new().with_event_budget(1000);
        sim.schedule(SimTime::ZERO, ());
        let stats = sim.run(&mut Forever);
        assert_eq!(stats.stop, StopReason::EventBudgetExhausted);
        assert_eq!(stats.events_handled, 1000);
    }

    #[test]
    fn model_finished_stops_immediately() {
        struct StopAfter(u32, u32);
        impl Model for StopAfter {
            type Event = ();
            fn handle(&mut self, _: (), sched: &mut Scheduler<'_, ()>) {
                self.0 += 1;
                sched.after(SimDuration::from_secs(1), ());
            }
            fn finished(&self) -> bool {
                self.0 >= self.1
            }
        }
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, ());
        let mut m = StopAfter(0, 5);
        let stats = sim.run(&mut m);
        assert_eq!(stats.stop, StopReason::ModelFinished);
        assert_eq!(m.0, 5);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        struct PastScheduler {
            tried: bool,
            observed: Vec<SimTime>,
        }
        impl Model for PastScheduler {
            type Event = u8;
            fn handle(&mut self, ev: u8, sched: &mut Scheduler<'_, u8>) {
                self.observed.push(sched.now());
                if ev == 0 && !self.tried {
                    self.tried = true;
                    sched.at(SimTime::ZERO, 1); // "in the past" w.r.t. t=5
                }
            }
        }
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_secs(5), 0u8);
        let mut m = PastScheduler {
            tried: false,
            observed: vec![],
        };
        sim.run(&mut m);
        assert_eq!(
            m.observed,
            vec![SimTime::from_secs(5), SimTime::from_secs(5)]
        );
    }
}
