//! The simulation driver loop.
//!
//! A [`Model`] owns all mutable world state and handles one event at a
//! time. The [`Simulation`] wrapper owns the clock and the pending-event
//! set and repeatedly feeds the model the earliest event. Models schedule
//! follow-up events through the [`Scheduler`] handle they receive.
//!
//! The split keeps the kernel generic: each substrate crate defines its own
//! event enum for unit testing, and `hog-core` defines the unified event
//! enum used for full-stack runs.

use crate::queue::EventQueue;
use crate::time::{SimDuration, SimTime};

/// Handle through which a model schedules future events during a callback.
pub struct Scheduler<'a, E> {
    now: SimTime,
    queue: &'a mut EventQueue<E>,
}

impl<'a, E> Scheduler<'a, E> {
    /// Build a scheduler handle over `queue` with the clock at `now`.
    ///
    /// [`Simulation::run`] constructs these internally; this constructor
    /// exists for external executors (e.g. a federation co-simulating
    /// several models, each with its own queue, under one global clock)
    /// that need to hand a model the same handle the driver loop would.
    #[inline]
    pub fn over(now: SimTime, queue: &'a mut EventQueue<E>) -> Self {
        Scheduler { now, queue }
    }

    /// The current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Schedule `event` to fire after `delay`.
    #[inline]
    pub fn after(&mut self, delay: SimDuration, event: E) {
        self.queue.push(self.now + delay, event);
    }

    /// Schedule `event` at the absolute instant `at`. Events scheduled in
    /// the past are clamped to fire "now" (still after the current event)
    /// rather than violating clock monotonicity.
    #[inline]
    pub fn at(&mut self, at: SimTime, event: E) {
        let at = at.max(self.now);
        self.queue.push(at, event);
    }

    /// Schedule `event` to fire immediately after the current one.
    #[inline]
    pub fn now_event(&mut self, event: E) {
        self.queue.push(self.now, event);
    }

    /// Number of pending events (excluding the one being handled).
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Reserve `n` consecutive queue sequence numbers (see
    /// [`EventQueue::reserve_seqs`]); pair with [`Scheduler::at_with_seq`].
    #[inline]
    pub fn reserve_seqs(&mut self, n: u64) -> u64 {
        self.queue.reserve_seqs(n)
    }

    /// Schedule `event` at `at` under a previously reserved sequence
    /// number, clamping past times to "now" like [`Scheduler::at`].
    #[inline]
    pub fn at_with_seq(&mut self, at: SimTime, seq: u64, event: E) {
        let at = at.max(self.now);
        self.queue.push_with_seq(at, seq, event);
    }
}

/// A simulation model: world state plus an event handler.
pub trait Model {
    /// The event alphabet of this model.
    type Event;

    /// Handle a single event at its firing time, scheduling any follow-ups
    /// through `sched`.
    fn handle(&mut self, event: Self::Event, sched: &mut Scheduler<'_, Self::Event>);

    /// Return `true` to stop the run early (checked after every event).
    fn finished(&self) -> bool {
        false
    }

    /// Whether `event` may be folded into a batched dispatch with the
    /// events that immediately follow it at the *same* firing instant.
    ///
    /// When the popped event is batchable, [`Simulation::run`] keeps
    /// popping while the queue head shares the fire time and is itself
    /// batchable, then hands the whole run to [`Model::handle_batch`] in
    /// the exact order the events would have popped individually. Only
    /// *contiguous* events coalesce — a non-batchable event at the same
    /// instant ends the batch — so dispatch order is preserved verbatim
    /// and outcomes stay bit-identical to per-event dispatch. Models
    /// override this for high-frequency events (heartbeats) whose
    /// per-dispatch overhead (tracer advance, liveness census) can be
    /// hoisted out of the per-event loop.
    fn batchable(&self, _event: &Self::Event) -> bool {
        false
    }

    /// Handle a contiguous run of same-instant batchable events (see
    /// [`Model::batchable`]). `events` is in pop order; the default
    /// implementation dispatches them one by one through
    /// [`Model::handle`], so overriding `batchable` alone never changes
    /// behavior. Implementations pop from the front and must stop as soon
    /// as [`Model::finished`] turns true, leaving the rest in the deque —
    /// the driver loop counts only consumed events as handled and checks
    /// `finished` after the batch, exactly as the per-event loop would
    /// after the event that tripped it.
    fn handle_batch(
        &mut self,
        events: &mut std::collections::VecDeque<Self::Event>,
        sched: &mut Scheduler<'_, Self::Event>,
    ) {
        while !self.finished() {
            let Some(event) = events.pop_front() else { break };
            self.handle(event, sched);
        }
    }
}

/// Outcome of a simulation run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RunStats {
    /// Clock value when the run stopped.
    pub end_time: SimTime,
    /// Number of events handled.
    pub events_handled: u64,
    /// High-water mark of the pending-event set (scale diagnostics).
    pub peak_queue: usize,
    /// Why the run stopped.
    pub stop: StopReason,
}

/// Why a run terminated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The event queue drained.
    QueueEmpty,
    /// The model reported completion via [`Model::finished`].
    ModelFinished,
    /// The configured horizon was reached.
    HorizonReached,
    /// The configured event budget was exhausted (runaway guard).
    EventBudgetExhausted,
}

/// The simulation executor: clock + event queue + driver loop.
pub struct Simulation<M: Model> {
    queue: EventQueue<M::Event>,
    now: SimTime,
    horizon: SimTime,
    event_budget: u64,
}

impl<M: Model> Default for Simulation<M> {
    fn default() -> Self {
        Self::new()
    }
}

impl<M: Model> Simulation<M> {
    /// A simulation with no horizon and a practically unlimited event
    /// budget (2^63 events).
    pub fn new() -> Self {
        Simulation {
            queue: EventQueue::new(),
            now: SimTime::ZERO,
            horizon: SimTime::MAX,
            event_budget: u64::MAX / 2,
        }
    }

    /// Stop the run when the clock would pass `horizon` (the event at the
    /// horizon itself still executes).
    pub fn with_horizon(mut self, horizon: SimTime) -> Self {
        self.horizon = horizon;
        self
    }

    /// Cap the number of events handled; guards against non-terminating
    /// models in tests.
    pub fn with_event_budget(mut self, budget: u64) -> Self {
        self.event_budget = budget;
        self
    }

    /// Current clock value.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Seed an initial event before the run starts.
    pub fn schedule(&mut self, at: SimTime, event: M::Event) {
        self.queue.push(at, event);
    }

    /// A scheduler handle over this simulation's queue at the current
    /// clock, for bootstrap code shared with externally-driven executors.
    pub fn scheduler(&mut self) -> Scheduler<'_, M::Event> {
        Scheduler::over(self.now, &mut self.queue)
    }

    /// Drive `model` until the queue drains, the model finishes, the
    /// horizon passes, or the event budget is exhausted.
    ///
    /// Contiguous same-instant events the model marks [`Model::batchable`]
    /// are popped together and dispatched through [`Model::handle_batch`]
    /// in exact pop order; everything else goes through [`Model::handle`]
    /// one event at a time.
    pub fn run(&mut self, model: &mut M) -> RunStats {
        let mut handled = 0u64;
        let mut batch: std::collections::VecDeque<M::Event> = std::collections::VecDeque::new();
        loop {
            if handled >= self.event_budget {
                return RunStats {
                    end_time: self.now,
                    events_handled: handled,
                    peak_queue: self.queue.peak_len(),
                    stop: StopReason::EventBudgetExhausted,
                };
            }
            let Some((at, event)) = self.queue.pop() else {
                return RunStats {
                    end_time: self.now,
                    events_handled: handled,
                    peak_queue: self.queue.peak_len(),
                    stop: StopReason::QueueEmpty,
                };
            };
            debug_assert!(at >= self.now, "event queue produced a past event");
            if at > self.horizon {
                // Leave the event unexecuted; the clock parks at the horizon.
                self.now = self.horizon;
                return RunStats {
                    end_time: self.now,
                    events_handled: handled,
                    peak_queue: self.queue.peak_len(),
                    stop: StopReason::HorizonReached,
                };
            }
            self.now = at;
            let head_batchable = |q: &EventQueue<M::Event>, m: &M| {
                q.peek().is_some_and(|(t, e)| t == at && m.batchable(e))
            };
            if model.batchable(&event) && head_batchable(&self.queue, model) {
                batch.clear();
                batch.push_back(event);
                while (handled + batch.len() as u64) < self.event_budget
                    && head_batchable(&self.queue, model)
                {
                    batch.push_back(self.queue.pop().expect("peeked event vanished").1);
                }
                let popped = batch.len() as u64;
                let mut sched = Scheduler {
                    now: self.now,
                    queue: &mut self.queue,
                };
                model.handle_batch(&mut batch, &mut sched);
                handled += popped - batch.len() as u64;
                batch.clear();
            } else {
                let mut sched = Scheduler {
                    now: self.now,
                    queue: &mut self.queue,
                };
                model.handle(event, &mut sched);
                handled += 1;
            }
            if model.finished() {
                return RunStats {
                    end_time: self.now,
                    events_handled: handled,
                    peak_queue: self.queue.peak_len(),
                    stop: StopReason::ModelFinished,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A toy model: a counter that reschedules itself `n` times.
    struct Ticker {
        remaining: u32,
        fire_times: Vec<SimTime>,
    }

    enum TickEvent {
        Tick,
    }

    impl Model for Ticker {
        type Event = TickEvent;
        fn handle(&mut self, _ev: TickEvent, sched: &mut Scheduler<'_, TickEvent>) {
            self.fire_times.push(sched.now());
            if self.remaining > 0 {
                self.remaining -= 1;
                sched.after(SimDuration::from_secs(10), TickEvent::Tick);
            }
        }
        fn finished(&self) -> bool {
            false
        }
    }

    #[test]
    fn ticker_runs_to_completion() {
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, TickEvent::Tick);
        let mut m = Ticker {
            remaining: 3,
            fire_times: vec![],
        };
        let stats = sim.run(&mut m);
        assert_eq!(stats.stop, StopReason::QueueEmpty);
        assert_eq!(m.fire_times.len(), 4);
        assert_eq!(stats.end_time, SimTime::from_secs(30));
        assert_eq!(
            m.fire_times,
            vec![
                SimTime::ZERO,
                SimTime::from_secs(10),
                SimTime::from_secs(20),
                SimTime::from_secs(30)
            ]
        );
    }

    #[test]
    fn horizon_stops_run() {
        let mut sim = Simulation::new().with_horizon(SimTime::from_secs(15));
        sim.schedule(SimTime::ZERO, TickEvent::Tick);
        let mut m = Ticker {
            remaining: 100,
            fire_times: vec![],
        };
        let stats = sim.run(&mut m);
        assert_eq!(stats.stop, StopReason::HorizonReached);
        assert_eq!(m.fire_times.len(), 2); // t=0 and t=10
        assert_eq!(stats.end_time, SimTime::from_secs(15));
    }

    #[test]
    fn event_budget_guards_runaway() {
        struct Forever;
        impl Model for Forever {
            type Event = ();
            fn handle(&mut self, _: (), sched: &mut Scheduler<'_, ()>) {
                sched.now_event(());
            }
        }
        let mut sim = Simulation::new().with_event_budget(1000);
        sim.schedule(SimTime::ZERO, ());
        let stats = sim.run(&mut Forever);
        assert_eq!(stats.stop, StopReason::EventBudgetExhausted);
        assert_eq!(stats.events_handled, 1000);
    }

    #[test]
    fn model_finished_stops_immediately() {
        struct StopAfter(u32, u32);
        impl Model for StopAfter {
            type Event = ();
            fn handle(&mut self, _: (), sched: &mut Scheduler<'_, ()>) {
                self.0 += 1;
                sched.after(SimDuration::from_secs(1), ());
            }
            fn finished(&self) -> bool {
                self.0 >= self.1
            }
        }
        let mut sim = Simulation::new();
        sim.schedule(SimTime::ZERO, ());
        let mut m = StopAfter(0, 5);
        let stats = sim.run(&mut m);
        assert_eq!(stats.stop, StopReason::ModelFinished);
        assert_eq!(m.0, 5);
    }

    /// Batched dispatch must observe the exact same (time, event) stream
    /// as per-event dispatch, batch only *contiguous* same-instant runs,
    /// and count handled events identically.
    #[test]
    fn batched_dispatch_matches_per_event() {
        #[derive(Clone, Copy, Debug, PartialEq, Eq)]
        enum Ev {
            Beat(u32),
            Other(u32),
        }
        struct Beats {
            batching: bool,
            log: Vec<(SimTime, Ev)>,
            batch_sizes: Vec<usize>,
        }
        impl Model for Beats {
            type Event = Ev;
            fn handle(&mut self, ev: Ev, sched: &mut Scheduler<'_, Ev>) {
                self.log.push((sched.now(), ev));
                // Beats re-arm once, landing on a shared later instant.
                if let Ev::Beat(n) = ev {
                    if n < 10 {
                        sched.after(SimDuration::from_secs(5), Ev::Beat(n + 10));
                    }
                }
            }
            fn batchable(&self, ev: &Ev) -> bool {
                self.batching && matches!(ev, Ev::Beat(_))
            }
            fn handle_batch(
                &mut self,
                events: &mut std::collections::VecDeque<Ev>,
                sched: &mut Scheduler<'_, Ev>,
            ) {
                self.batch_sizes.push(events.len());
                while let Some(ev) = events.pop_front() {
                    self.handle(ev, sched);
                }
            }
        }
        let drive = |batching: bool| {
            let mut sim = Simulation::new();
            let t = SimTime::from_secs(1);
            // Contiguous beats, a same-instant interloper, more beats.
            sim.schedule(t, Ev::Beat(0));
            sim.schedule(t, Ev::Beat(1));
            sim.schedule(t, Ev::Other(0));
            sim.schedule(t, Ev::Beat(2));
            sim.schedule(t, Ev::Beat(3));
            let mut m = Beats {
                batching,
                log: vec![],
                batch_sizes: vec![],
            };
            let stats = sim.run(&mut m);
            (m.log, m.batch_sizes, stats.events_handled)
        };
        let (plain_log, plain_batches, plain_handled) = drive(false);
        let (batch_log, batch_batches, batch_handled) = drive(true);
        assert!(plain_batches.is_empty());
        assert_eq!(plain_log, batch_log, "batching reordered dispatch");
        assert_eq!(plain_handled, batch_handled);
        // Beat(0),Beat(1) coalesce; Other(0) breaks the run; Beat(2),Beat(3)
        // coalesce; the four re-armed beats at t+5 coalesce into one batch.
        assert_eq!(batch_batches, vec![2, 2, 4]);
    }

    #[test]
    fn scheduling_in_past_clamps_to_now() {
        struct PastScheduler {
            tried: bool,
            observed: Vec<SimTime>,
        }
        impl Model for PastScheduler {
            type Event = u8;
            fn handle(&mut self, ev: u8, sched: &mut Scheduler<'_, u8>) {
                self.observed.push(sched.now());
                if ev == 0 && !self.tried {
                    self.tried = true;
                    sched.at(SimTime::ZERO, 1); // "in the past" w.r.t. t=5
                }
            }
        }
        let mut sim = Simulation::new();
        sim.schedule(SimTime::from_secs(5), 0u8);
        let mut m = PastScheduler {
            tried: false,
            observed: vec![],
        };
        sim.run(&mut m);
        assert_eq!(
            m.observed,
            vec![SimTime::from_secs(5), SimTime::from_secs(5)]
        );
    }
}
