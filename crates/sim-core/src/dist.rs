//! Inverse-transform samplers for the distributions the models need.
//!
//! We keep the dependency footprint small by implementing the handful of
//! distributions ourselves instead of pulling in `rand_distr`:
//!
//! * [`Exponential`] — job inter-arrival times (paper: mean 14 s) and
//!   opportunistic node lifetimes.
//! * [`UniformDuration`] — batch-queue acquisition delays.
//! * [`LogNormal`] — heavy-tailed service-time jitter.
//! * [`Pareto`] — power-law tails for preemption inter-arrival and
//!   straggler slowdowns (the OSG preemption study's tail shape).
//!
//! Every sampler returns a [`SimDuration`] so call sites cannot confuse
//! seconds with milliseconds.

use crate::rng::SimRng;
use crate::time::SimDuration;

/// Exponential distribution parameterised by its mean.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Exponential {
    mean_secs: f64,
}

impl Exponential {
    /// Exponential with the given mean. A non-positive mean yields a
    /// degenerate distribution that always samples zero.
    pub fn from_mean(mean: SimDuration) -> Self {
        Exponential {
            mean_secs: mean.as_secs_f64(),
        }
    }

    /// Exponential with mean given in seconds.
    pub fn from_mean_secs(mean_secs: f64) -> Self {
        Exponential { mean_secs }
    }

    /// The configured mean.
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.mean_secs)
    }

    /// Draw a sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        if self.mean_secs <= 0.0 {
            return SimDuration::ZERO;
        }
        // Inverse transform: -mean * ln(U), with U in (0, 1].
        let u = 1.0 - rng.unit(); // avoid ln(0)
        SimDuration::from_secs_f64(-self.mean_secs * u.ln())
    }
}

/// Uniform distribution over a closed duration interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UniformDuration {
    lo: SimDuration,
    hi: SimDuration,
}

impl UniformDuration {
    /// Uniform over `[lo, hi]`. If `hi < lo` the bounds are swapped.
    pub fn new(lo: SimDuration, hi: SimDuration) -> Self {
        if hi < lo {
            UniformDuration { lo: hi, hi: lo }
        } else {
            UniformDuration { lo, hi }
        }
    }

    /// A degenerate point distribution.
    pub fn point(v: SimDuration) -> Self {
        UniformDuration { lo: v, hi: v }
    }

    /// Draw a sample.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let lo = self.lo.as_millis();
        let hi = self.hi.as_millis();
        if lo == hi {
            return self.lo;
        }
        SimDuration::from_millis(rng.uniform_u64(lo, hi + 1))
    }

    /// The distribution mean, `(lo + hi) / 2` (cost models).
    pub fn mean(&self) -> SimDuration {
        SimDuration::from_millis((self.lo.as_millis() + self.hi.as_millis()) / 2)
    }
}

/// Log-normal distribution specified by the *linear-space* median and a
/// shape parameter sigma (the standard deviation of the underlying normal).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Construct from the median duration and sigma. `sigma <= 0` gives a
    /// point distribution at the median.
    pub fn from_median(median: SimDuration, sigma: f64) -> Self {
        let m = median.as_secs_f64().max(1e-9);
        LogNormal {
            mu: m.ln(),
            sigma: sigma.max(0.0),
        }
    }

    /// Draw a sample, using a Box–Muller standard normal under the hood.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let z = standard_normal(rng);
        SimDuration::from_secs_f64((self.mu + self.sigma * z).exp())
    }
}

/// Pareto (type I) distribution: `P(X > x) = (scale / x)^shape` for
/// `x >= scale`. The heavy tail observed for Open Science Grid preemption
/// inter-arrival times — most glideins die young, but a power-law
/// minority survive for many hours.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Pareto {
    scale_secs: f64,
    shape: f64,
}

impl Pareto {
    /// Pareto with minimum value `scale` and tail index `shape`. A
    /// non-positive scale degenerates to a point at zero; shapes are
    /// clamped to at least 0.1 so the inverse transform stays finite.
    pub fn new(scale: SimDuration, shape: f64) -> Self {
        Pareto {
            scale_secs: scale.as_secs_f64(),
            shape: shape.max(0.1),
        }
    }

    /// The configured minimum (scale) value.
    pub fn scale(&self) -> SimDuration {
        SimDuration::from_secs_f64(self.scale_secs.max(0.0))
    }

    /// The configured tail index.
    pub fn shape(&self) -> f64 {
        self.shape
    }

    /// Draw a sample via inverse transform: `scale * U^(-1/shape)`.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        if self.scale_secs <= 0.0 {
            return SimDuration::ZERO;
        }
        let u = (1.0 - rng.unit()).max(f64::MIN_POSITIVE); // U in (0, 1]
        SimDuration::from_secs_f64(self.scale_secs * u.powf(-1.0 / self.shape))
    }
}

/// One standard-normal variate via Box–Muller (we discard the second to
/// keep the sampler stateless; throughput is irrelevant here).
pub fn standard_normal(rng: &mut SimRng) -> f64 {
    let u1 = (1.0 - rng.unit()).max(f64::MIN_POSITIVE);
    let u2 = rng.unit();
    (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn mean_of(samples: &[SimDuration]) -> f64 {
        samples.iter().map(|d| d.as_secs_f64()).sum::<f64>() / samples.len() as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let dist = Exponential::from_mean(SimDuration::from_secs(14));
        let mut rng = SimRng::seed_from_u64(123);
        let samples: Vec<_> = (0..20_000).map(|_| dist.sample(&mut rng)).collect();
        let m = mean_of(&samples);
        assert!((m - 14.0).abs() < 0.5, "sample mean {m} too far from 14");
    }

    #[test]
    fn exponential_degenerate() {
        let dist = Exponential::from_mean_secs(0.0);
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(dist.sample(&mut rng), SimDuration::ZERO);
    }

    #[test]
    fn exponential_memorylessness_rough() {
        // P(X > 2m) should be about e^-2 ~= 0.135.
        let dist = Exponential::from_mean_secs(10.0);
        let mut rng = SimRng::seed_from_u64(5);
        let n = 20_000;
        let over = (0..n)
            .filter(|_| dist.sample(&mut rng).as_secs_f64() > 20.0)
            .count();
        let p = over as f64 / n as f64;
        assert!((p - 0.1353).abs() < 0.02, "tail probability {p}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let d = UniformDuration::new(SimDuration::from_secs(2), SimDuration::from_secs(5));
        let mut rng = SimRng::seed_from_u64(7);
        for _ in 0..5000 {
            let s = d.sample(&mut rng);
            assert!(s >= SimDuration::from_secs(2) && s <= SimDuration::from_secs(5));
        }
    }

    #[test]
    fn uniform_swapped_bounds() {
        let d = UniformDuration::new(SimDuration::from_secs(5), SimDuration::from_secs(2));
        let mut rng = SimRng::seed_from_u64(7);
        let s = d.sample(&mut rng);
        assert!(s >= SimDuration::from_secs(2) && s <= SimDuration::from_secs(5));
    }

    #[test]
    fn uniform_point() {
        let d = UniformDuration::point(SimDuration::from_secs(3));
        let mut rng = SimRng::seed_from_u64(7);
        assert_eq!(d.sample(&mut rng), SimDuration::from_secs(3));
    }

    #[test]
    fn lognormal_median_roughly_right() {
        let d = LogNormal::from_median(SimDuration::from_secs(30), 0.5);
        let mut rng = SimRng::seed_from_u64(21);
        let mut samples: Vec<f64> = (0..10_001)
            .map(|_| d.sample(&mut rng).as_secs_f64())
            .collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        assert!((median - 30.0).abs() < 2.0, "median {median}");
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let d = Pareto::new(SimDuration::from_secs(60), 1.5);
        let mut rng = SimRng::seed_from_u64(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng).as_secs_f64()).collect();
        assert!(samples.iter().all(|&s| s >= 60.0), "support starts at scale");
        // P(X > 2*scale) = 2^-1.5 ~= 0.3536.
        let over = samples.iter().filter(|&&s| s > 120.0).count() as f64 / n as f64;
        assert!((over - 0.3536).abs() < 0.02, "tail probability {over}");
    }

    #[test]
    fn pareto_degenerate_and_clamped() {
        let mut rng = SimRng::seed_from_u64(1);
        assert_eq!(
            Pareto::new(SimDuration::ZERO, 2.0).sample(&mut rng),
            SimDuration::ZERO
        );
        // Non-positive shapes clamp rather than explode.
        let d = Pareto::new(SimDuration::from_secs(1), -3.0);
        assert!(d.shape() >= 0.1);
        assert!(d.sample(&mut rng) >= SimDuration::from_secs(1));
    }

    #[test]
    fn standard_normal_moments() {
        let mut rng = SimRng::seed_from_u64(31);
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| standard_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
