//! Runtime invariant auditing primitives.
//!
//! Substrate models (network, HDFS, MapReduce, …) expose an `audit()`
//! method returning a list of [`Violation`]s — internal-consistency
//! breaches that should never occur in a correct simulation, whatever
//! faults are injected. The chaos layer (`hog-chaos`) aggregates these
//! into a structured failure report; a clean model returns an empty list.

use crate::time::SimTime;

/// One breached invariant, attributed to the layer that detected it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Which layer detected the breach (`"net"`, `"hdfs"`, `"mapreduce"`,
    /// `"cluster"`, …).
    pub layer: &'static str,
    /// Human-readable description of the breached invariant, with enough
    /// state to debug it (node ids, counters, expected vs actual).
    pub detail: String,
}

impl Violation {
    /// Build a violation for `layer` with the given description.
    pub fn new(layer: &'static str, detail: impl Into<String>) -> Self {
        Violation {
            layer,
            detail: detail.into(),
        }
    }
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.layer, self.detail)
    }
}

/// A model whose internal bookkeeping can be cross-checked at runtime.
///
/// Implementations must be *pure observers*: calling `audit` must not
/// change model state or consume randomness, so that enabling auditing
/// never perturbs a deterministic run.
pub trait Auditable {
    /// Check every internal invariant; return one [`Violation`] per breach
    /// (empty when consistent).
    fn audit(&self) -> Vec<Violation>;
}

/// Render a violation list as a structured multi-line dump with a header
/// carrying the simulation time — the body of a chaos failure report.
pub fn render_violations(at: SimTime, violations: &[Violation]) -> String {
    let mut out = format!(
        "invariant audit failed at t={}s: {} violation(s)\n",
        at.as_millis() / 1000,
        violations.len()
    );
    for v in violations {
        out.push_str("  - ");
        out.push_str(&v.to_string());
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn violation_formats_with_layer() {
        let v = Violation::new("hdfs", "used mismatch on node 3");
        assert_eq!(v.to_string(), "[hdfs] used mismatch on node 3");
    }

    #[test]
    fn render_includes_time_and_every_violation() {
        let vs = vec![
            Violation::new("net", "link over capacity"),
            Violation::new("mapreduce", "slot overflow"),
        ];
        let dump = render_violations(SimTime::from_millis(42_000), &vs);
        assert!(dump.contains("t=42s"));
        assert!(dump.contains("2 violation(s)"));
        assert!(dump.contains("[net] link over capacity"));
        assert!(dump.contains("[mapreduce] slot overflow"));
    }
}
