//! Byte-size and bandwidth helpers.
//!
//! Data sizes are plain `u64` bytes throughout the workspace; bandwidths
//! are `f64` bytes/second. These helpers keep magnitudes readable at call
//! sites (`64 * MIB`, `gbit_per_s(1.0)`).

/// One kibibyte.
pub const KIB: u64 = 1024;
/// One mebibyte.
pub const MIB: u64 = 1024 * KIB;
/// One gibibyte.
pub const GIB: u64 = 1024 * MIB;
/// One tebibyte.
pub const TIB: u64 = 1024 * GIB;

/// Convert megabits/second to bytes/second.
#[inline]
pub fn mbit_per_s(mbit: f64) -> f64 {
    mbit * 1_000_000.0 / 8.0
}

/// Convert gigabits/second to bytes/second.
#[inline]
pub fn gbit_per_s(gbit: f64) -> f64 {
    gbit * 1_000_000_000.0 / 8.0
}

/// Convert mebibytes/second to bytes/second.
#[inline]
pub fn mib_per_s(mib: f64) -> f64 {
    mib * MIB as f64
}

/// Seconds needed to move `bytes` at `rate` bytes/second. Returns infinity
/// for non-positive rates (caller decides how to clamp).
#[inline]
pub fn transfer_secs(bytes: u64, rate: f64) -> f64 {
    if rate <= 0.0 {
        f64::INFINITY
    } else {
        bytes as f64 / rate
    }
}

/// Human-readable rendering of a byte count ("1.5 GiB").
pub fn fmt_bytes(bytes: u64) -> String {
    const UNITS: [(&str, u64); 4] = [("TiB", TIB), ("GiB", GIB), ("MiB", MIB), ("KiB", KIB)];
    for (name, unit) in UNITS {
        if bytes >= unit {
            return format!("{:.2} {name}", bytes as f64 / unit as f64);
        }
    }
    format!("{bytes} B")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        assert_eq!(gbit_per_s(1.0), 125_000_000.0);
        assert_eq!(mbit_per_s(100.0), 12_500_000.0);
        assert_eq!(mib_per_s(1.0), 1_048_576.0);
    }

    #[test]
    fn transfer_time() {
        // 125 MB over 1 Gbps = 1 second.
        assert!((transfer_secs(125_000_000, gbit_per_s(1.0)) - 1.0).abs() < 1e-12);
        assert!(transfer_secs(1, 0.0).is_infinite());
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_bytes(512), "512 B");
        assert_eq!(fmt_bytes(64 * MIB), "64.00 MiB");
        assert_eq!(fmt_bytes(3 * GIB / 2), "1.50 GiB");
    }
}
