//! Seedable, reproducible random number generation.
//!
//! All stochastic processes in the simulation (preemption lifetimes, batch
//! queue delays, job inter-arrival times, …) draw from a [`SimRng`]. The
//! generator is `rand`'s `SmallRng` seeded explicitly; two runs with the
//! same seed produce identical traces. [`SimRng::fork`] derives independent
//! child streams (one per site, per node, …) so adding draws to one
//! component does not perturb another — this keeps experiments comparable
//! across configurations.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// The simulation's random number generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    inner: SmallRng,
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn seed_from_u64(seed: u64) -> Self {
        SimRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent child stream identified by `stream`.
    ///
    /// The child's seed mixes the parent seed material with the stream id
    /// through SplitMix64 finalization, so `fork(a)` and `fork(b)` are
    /// decorrelated for `a != b` and deterministic for equal inputs.
    pub fn fork(&mut self, stream: u64) -> SimRng {
        let base = self.inner.next_u64();
        SimRng::seed_from_u64(splitmix64(base ^ splitmix64(stream)))
    }

    /// Uniform draw in `[0, 1)`.
    #[inline]
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform draw in `[lo, hi)`. Returns `lo` when the range is empty.
    #[inline]
    pub fn uniform_f64(&mut self, lo: f64, hi: f64) -> f64 {
        if hi <= lo {
            return lo;
        }
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[lo, hi)`. Panics if `lo >= hi`.
    #[inline]
    pub fn uniform_u64(&mut self, lo: u64, hi: u64) -> u64 {
        self.inner.gen_range(lo..hi)
    }

    /// Uniform index in `[0, n)`. Panics if `n == 0`.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        self.inner.gen_range(0..n)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        // Standard downward Fisher–Yates driven by our own index() so the
        // draw sequence is under this crate's control.
        for i in (1..slice.len()).rev() {
            let j = self.index(i + 1);
            slice.swap(i, j);
        }
    }

    /// Choose one element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "choose() on empty slice");
        &slice[self.index(slice.len())]
    }

    /// Raw 64 random bits (for mixing / hashing purposes).
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

/// SplitMix64 finalizer; good avalanche for seed derivation.
#[inline]
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SimRng::seed_from_u64(42);
        let mut b = SimRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from_u64(1);
        let mut b = SimRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "streams should be decorrelated, {same} collisions");
    }

    #[test]
    fn fork_streams_are_deterministic_and_distinct() {
        let mut parent1 = SimRng::seed_from_u64(7);
        let mut parent2 = SimRng::seed_from_u64(7);
        let mut c1 = parent1.fork(5);
        let mut c2 = parent2.fork(5);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut parent = SimRng::seed_from_u64(7);
        let mut x = parent.fork(1);
        let mut parent = SimRng::seed_from_u64(7);
        let mut y = parent.fork(2);
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn unit_in_range() {
        let mut r = SimRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::seed_from_u64(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-5.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn uniform_f64_empty_range_returns_lo() {
        let mut r = SimRng::seed_from_u64(3);
        assert_eq!(r.uniform_f64(5.0, 5.0), 5.0);
        assert_eq!(r.uniform_f64(5.0, 1.0), 5.0);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "astronomically unlikely identity");
    }

    #[test]
    fn uniform_u64_bounds() {
        let mut r = SimRng::seed_from_u64(11);
        for _ in 0..1000 {
            let x = r.uniform_u64(10, 20);
            assert!((10..20).contains(&x));
        }
    }
}
