//! Deterministic pending-event set.
//!
//! A binary min-heap keyed on `(time, sequence)`. The monotonically
//! increasing sequence number guarantees that events scheduled for the same
//! instant pop in the order they were pushed, which makes whole-simulation
//! replays bit-identical — a property the reproduction tests rely on.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry. Ordered so that the *earliest* `(at, seq)` pair is
/// the heap maximum (we invert the comparison instead of wrapping in
/// `Reverse` to keep the hot comparison branch-light).
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: smaller (at, seq) compares Greater so it surfaces first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use hog_sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Total number of events ever pushed (for instrumentation).
    pushed: u64,
    /// High-water mark of pending events (for instrumentation).
    peak_len: usize,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
            peak_len: 0,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            pushed: 0,
            peak_len: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.push_with_seq(at, seq, event);
    }

    /// Reserve `n` consecutive sequence numbers without pushing anything,
    /// returning the first of the range. Later [`push_with_seq`] calls can
    /// hand the reserved numbers back one by one, letting a caller schedule
    /// events *lazily* while preserving the exact tie-break order a
    /// batch-at-once push would have produced.
    ///
    /// [`push_with_seq`]: EventQueue::push_with_seq
    pub fn reserve_seqs(&mut self, n: u64) -> u64 {
        let first = self.next_seq;
        self.next_seq += n;
        first
    }

    /// Schedule `event` at `at` with an explicitly reserved sequence number
    /// (from [`reserve_seqs`]). The heap orders solely on `(at, seq)`, so an
    /// event pushed late with an early reserved seq pops exactly where it
    /// would have had it been pushed eagerly.
    ///
    /// [`reserve_seqs`]: EventQueue::reserve_seqs
    #[inline]
    pub fn push_with_seq(&mut self, at: SimTime, seq: u64, event: E) {
        self.pushed += 1;
        self.heap.push(Entry { at, seq, event });
        if self.heap.len() > self.peak_len {
            self.peak_len = self.heap.len();
        }
    }

    /// Remove and return the earliest event, together with its firing time.
    /// Ties in time pop in push order.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The firing time of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Borrow the earliest pending event without removing it. Lets the
    /// driver loop decide whether the head can join a same-instant batch
    /// (see `Model::batchable`) before committing to the pop.
    #[inline]
    pub fn peek(&self) -> Option<(SimTime, &E)> {
        self.heap.peek().map(|e| (e.at, &e.event))
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events pushed over the queue's lifetime.
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Largest number of events that were ever pending at once.
    #[inline]
    pub fn peak_len(&self) -> usize {
        self.peak_len
    }

    /// Drop every pending event (the lifetime push counter is preserved).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &s in &[5u64, 1, 4, 2, 3] {
            q.push(SimTime::from_secs(s), s);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn fifo_on_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "c");
        q.push(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_secs(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2);
        assert_eq!(q.peak_len(), 2);
        q.push(SimTime::ZERO, ());
        assert_eq!(q.peak_len(), 2);
    }

    #[test]
    fn reserved_seqs_pop_in_reserved_order() {
        // Reserve three slots up front, push them out of wall-clock order
        // (and interleaved with ordinary pushes), and check the pop order
        // matches what an eager batch push would have produced.
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        let first = q.reserve_seqs(3);
        q.push(t, "plain-after-reserve"); // seq = first + 3
        q.push_with_seq(t, first + 2, "r2");
        q.push_with_seq(t, first, "r0");
        q.push_with_seq(t, first + 1, "r1");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec!["r0", "r1", "r2", "plain-after-reserve"]);
    }

    proptest! {
        /// Popping must always yield a non-decreasing time sequence, and for
        /// equal times the original push index must be increasing.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }
    }
}
