//! Deterministic pending-event set.
//!
//! A binary min-heap keyed on `(time, sequence)`. The monotonically
//! increasing sequence number guarantees that events scheduled for the same
//! instant pop in the order they were pushed, which makes whole-simulation
//! replays bit-identical — a property the reproduction tests rely on.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Internal heap entry. Ordered so that the *earliest* `(at, seq)` pair is
/// the heap maximum (we invert the comparison instead of wrapping in
/// `Reverse` to keep the hot comparison branch-light).
struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    #[inline]
    fn cmp(&self, other: &Self) -> Ordering {
        // Inverted: smaller (at, seq) compares Greater so it surfaces first.
        (other.at, other.seq).cmp(&(self.at, self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use hog_sim_core::{EventQueue, SimTime};
///
/// let mut q = EventQueue::new();
/// q.push(SimTime::from_secs(2), "later");
/// q.push(SimTime::from_secs(1), "sooner");
/// assert_eq!(q.pop(), Some((SimTime::from_secs(1), "sooner")));
/// assert_eq!(q.pop(), Some((SimTime::from_secs(2), "later")));
/// assert_eq!(q.pop(), None);
/// ```
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    /// Total number of events ever pushed (for instrumentation).
    pushed: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            pushed: 0,
        }
    }

    /// Create an empty queue with pre-reserved capacity.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            pushed: 0,
        }
    }

    /// Schedule `event` to fire at absolute time `at`.
    #[inline]
    pub fn push(&mut self, at: SimTime, event: E) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.pushed += 1;
        self.heap.push(Entry { at, seq, event });
    }

    /// Remove and return the earliest event, together with its firing time.
    /// Ties in time pop in push order.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| (e.at, e.event))
    }

    /// The firing time of the earliest pending event, if any.
    #[inline]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at)
    }

    /// Number of pending events.
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events pushed over the queue's lifetime.
    #[inline]
    pub fn total_pushed(&self) -> u64 {
        self.pushed
    }

    /// Drop every pending event (the lifetime push counter is preserved).
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        for &s in &[5u64, 1, 4, 2, 3] {
            q.push(SimTime::from_secs(s), s);
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn fifo_on_equal_times() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            q.push(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, e)| e)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_push_pop_keeps_order() {
        let mut q = EventQueue::new();
        q.push(SimTime::from_secs(10), "c");
        q.push(SimTime::from_secs(1), "a");
        assert_eq!(q.pop().unwrap().1, "a");
        q.push(SimTime::from_secs(5), "b");
        assert_eq!(q.pop().unwrap().1, "b");
        assert_eq!(q.pop().unwrap().1, "c");
        assert!(q.is_empty());
    }

    #[test]
    fn counters() {
        let mut q = EventQueue::new();
        q.push(SimTime::ZERO, ());
        q.push(SimTime::ZERO, ());
        assert_eq!(q.len(), 2);
        assert_eq!(q.total_pushed(), 2);
        q.clear();
        assert!(q.is_empty());
        assert_eq!(q.total_pushed(), 2);
    }

    proptest! {
        /// Popping must always yield a non-decreasing time sequence, and for
        /// equal times the original push index must be increasing.
        #[test]
        fn prop_pop_order(times in proptest::collection::vec(0u64..1000, 1..200)) {
            let mut q = EventQueue::new();
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(t), i);
            }
            let mut last: Option<(SimTime, usize)> = None;
            while let Some((t, idx)) = q.pop() {
                if let Some((lt, lidx)) = last {
                    prop_assert!(t >= lt);
                    if t == lt {
                        prop_assert!(idx > lidx);
                    }
                }
                last = Some((t, idx));
            }
        }
    }
}
