//! Integer-millisecond simulation clock.
//!
//! All simulation time is kept in whole milliseconds (`u64`). Integer time
//! keeps the event queue totally ordered without floating-point comparison
//! hazards and makes runs bit-reproducible across platforms.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An absolute instant on the simulation clock, in milliseconds since the
/// start of the run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulation time, in milliseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation (t = 0).
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinity" sentinel for schedules.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1000)
    }

    /// Raw milliseconds since t = 0.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// Time since t = 0 expressed in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// Duration elapsed since `earlier`, saturating to zero if `earlier` is
    /// actually later (defensive for metric code paths).
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference between two instants.
    #[inline]
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1000)
    }

    /// Construct from whole minutes.
    #[inline]
    pub const fn from_mins(m: u64) -> Self {
        SimDuration(m * 60_000)
    }

    /// Construct from fractional seconds, rounding to the nearest
    /// millisecond. Negative or non-finite inputs clamp to zero.
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        // Saturate instead of wrapping for absurdly large durations.
        let ms = (s * 1000.0).round();
        if ms >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ms as u64)
        }
    }

    /// Raw milliseconds.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// The span in (fractional) seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1000.0
    }

    /// True if this span is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Saturating subtraction.
    #[inline]
    pub fn saturating_sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }

    /// Multiply the span by a non-negative float factor (rounds to ms).
    #[inline]
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * factor)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    /// Panics in debug builds if `rhs > self`; use
    /// [`SimTime::saturating_since`] where reversal is possible.
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimTime subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        debug_assert!(rhs.0 <= self.0, "SimDuration subtraction went negative");
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_millis(), 3000);
        assert_eq!(SimDuration::from_mins(2).as_millis(), 120_000);
        assert_eq!(SimDuration::from_secs_f64(1.5).as_millis(), 1500);
    }

    #[test]
    fn from_secs_f64_clamps_garbage() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(
            SimDuration::from_secs_f64(f64::INFINITY).as_millis(),
            u64::MAX
        );
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_secs(10) + SimDuration::from_secs(5);
        assert_eq!(t, SimTime::from_secs(15));
        assert_eq!(t - SimTime::from_secs(10), SimDuration::from_secs(5));
        assert_eq!(SimDuration::from_secs(4) * 3, SimDuration::from_secs(12));
        assert_eq!(SimDuration::from_secs(9) / 3, SimDuration::from_secs(3));
    }

    #[test]
    fn saturating_since_never_underflows() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(2);
        assert_eq!(early.saturating_since(late), SimDuration::ZERO);
        assert_eq!(late.saturating_since(early), SimDuration::from_secs(1));
        assert_eq!(early.checked_since(late), None);
    }

    #[test]
    fn mul_f64_rounds() {
        let d = SimDuration::from_millis(1000);
        assert_eq!(d.mul_f64(0.5).as_millis(), 500);
        assert_eq!(d.mul_f64(0.0), SimDuration::ZERO);
    }

    #[test]
    fn ordering() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::MAX > SimTime::from_secs(1_000_000));
    }
}
