//! Per-reduce shuffle bookkeeping.
//!
//! Each reduce must fetch one partition from every map. Fetches are
//! batched: all currently-available partitions living at one *site* are
//! pulled in a single network flow (the flow's source is marked "diffuse"
//! in the fluid model, since the bytes really stream from many nodes of
//! that site in parallel). This keeps the flow count per reduce at
//! O(sites × waves) instead of O(maps), matching the granularity at which
//! the WAN — the paper's bottleneck — is actually exercised.

use hog_net::{NodeId, SiteId};
use std::collections::{HashMap, HashSet};

/// One shuffle fetch: pull `bytes` (the partitions of `maps`) from site
/// `src_site`, using `src_rep` as the representative flow endpoint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FetchOrder {
    /// Map indices covered by this fetch.
    pub maps: Vec<u32>,
    /// Representative source node (one of the map-output holders).
    pub src_rep: NodeId,
    /// Site the bytes come from.
    pub src_site: SiteId,
    /// Total bytes of this batch.
    pub bytes: u64,
}

/// Where a pending map partition currently lives.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Source {
    node: NodeId,
    site: SiteId,
    bytes: u64,
}

/// Shuffle state of one reduce attempt.
#[derive(Clone, Debug, Default)]
pub struct ReducePlan {
    /// Map partitions not yet fetched, keyed by map index. `None` source
    /// means the output was lost and the map is being re-executed.
    pending: HashMap<u32, Option<Source>>,
    /// Fetches currently in flight (order id → covered maps).
    in_flight: HashMap<u64, Vec<u32>>,
    /// Map indices whose partitions this reduce already holds.
    fetched_maps: HashSet<u32>,
    next_order_id: u64,
    fetched: u32,
    total: u32,
}

impl ReducePlan {
    /// A plan expecting `total_maps` partitions. Completed maps are added
    /// via [`ReducePlan::map_available`] (including those that finished
    /// before the reduce started).
    pub fn new(total_maps: u32) -> Self {
        ReducePlan {
            pending: HashMap::new(),
            in_flight: HashMap::new(),
            fetched_maps: HashSet::new(),
            next_order_id: 0,
            fetched: 0,
            total: total_maps,
        }
    }

    /// A map's output became available on `node`.
    pub fn map_available(&mut self, map: u32, node: NodeId, site: SiteId, bytes: u64) {
        if self.is_fetched(map) || self.in_flight.values().flatten().any(|&m| m == map) {
            return;
        }
        self.pending.insert(map, Some(Source { node, site, bytes }));
    }

    /// A map's output was lost (its node died); it will reappear via
    /// [`ReducePlan::map_available`] once re-executed.
    pub fn map_lost(&mut self, map: u32) {
        if !self.is_fetched(map) {
            self.pending.insert(map, None);
        }
    }

    fn is_fetched(&self, map: u32) -> bool {
        // A map is fetched iff it is neither pending nor in flight and the
        // fetched counter accounts for it. We track explicitly:
        self.fetched_maps.contains(&map)
    }

    /// How many partitions have been fetched.
    pub fn fetched_count(&self) -> u32 {
        self.fetched
    }

    /// True when every one of the `total` partitions has been fetched.
    pub fn complete(&self) -> bool {
        self.fetched == self.total
    }

    /// Number of fetches currently in flight.
    pub fn in_flight_count(&self) -> usize {
        self.in_flight.len()
    }

    /// Emit up to `limit - in_flight` new fetch orders, batching pending
    /// partitions by source site (largest batch first). Returns the order
    /// ids paired with the orders.
    pub fn next_orders(&mut self, limit: usize) -> Vec<(u64, FetchOrder)> {
        let mut out = Vec::new();
        while self.in_flight.len() < limit {
            // Group pending-with-source by site.
            let mut by_site: HashMap<SiteId, Vec<(u32, Source)>> = HashMap::new();
            for (&m, src) in &self.pending {
                if let Some(s) = src {
                    by_site.entry(s.site).or_default().push((m, *s));
                }
            }
            if by_site.is_empty() {
                break;
            }
            // Largest batch first; site id tie-break for determinism.
            let (&site, _) = by_site
                .iter()
                .max_by_key(|(&s, v)| {
                    (
                        v.iter().map(|(_, x)| x.bytes).sum::<u64>(),
                        std::cmp::Reverse(s),
                    )
                })
                .unwrap();
            let mut batch = by_site.remove(&site).unwrap();
            batch.sort_by_key(|&(m, _)| m);
            let maps: Vec<u32> = batch.iter().map(|&(m, _)| m).collect();
            let bytes: u64 = batch.iter().map(|&(_, s)| s.bytes).sum();
            let src_rep = batch[0].1.node;
            for &(m, _) in &batch {
                self.pending.remove(&m);
            }
            let id = self.next_order_id;
            self.next_order_id += 1;
            self.in_flight.insert(id, maps.clone());
            out.push((
                id,
                FetchOrder {
                    maps,
                    src_rep,
                    src_site: site,
                    bytes,
                },
            ));
        }
        out
    }

    /// A fetch completed: its maps are now held by the reduce.
    pub fn fetch_done(&mut self, order: u64) {
        if let Some(maps) = self.in_flight.remove(&order) {
            for m in maps {
                self.fetched += 1;
                self.fetched_maps.insert(m);
            }
        }
    }

    /// A fetch failed (source vanished): its maps return to pending
    /// *without* a source; callers re-add sources for maps whose outputs
    /// still exist via [`ReducePlan::map_available`]. Returns the affected
    /// map indices (drives the JobTracker's too-many-fetch-failures map
    /// re-execution).
    pub fn fetch_failed(&mut self, order: u64) -> Vec<u32> {
        if let Some(maps) = self.in_flight.remove(&order) {
            for &m in &maps {
                self.pending.insert(m, None);
            }
            maps
        } else {
            Vec::new()
        }
    }

    /// Maps currently without a known source (diagnostics/tests).
    pub fn sourceless(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self
            .pending
            .iter()
            .filter(|(_, s)| s.is_none())
            .map(|(&m, _)| m)
            .collect();
        v.sort_unstable();
        v
    }
    /// Number of partitions currently pending (diagnostics/tests).
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn plan3() -> ReducePlan {
        let mut p = ReducePlan::new(3);
        p.map_available(0, NodeId(1), SiteId(0), 100);
        p.map_available(1, NodeId(2), SiteId(0), 100);
        p.map_available(2, NodeId(9), SiteId(1), 50);
        p
    }

    #[test]
    fn batches_by_site_largest_first() {
        let mut p = plan3();
        let orders = p.next_orders(2);
        assert_eq!(orders.len(), 2);
        let (_, first) = &orders[0];
        assert_eq!(first.src_site, SiteId(0));
        assert_eq!(first.maps, vec![0, 1]);
        assert_eq!(first.bytes, 200);
        let (_, second) = &orders[1];
        assert_eq!(second.src_site, SiteId(1));
        assert_eq!(second.maps, vec![2]);
    }

    #[test]
    fn parallel_limit_respected() {
        let mut p = plan3();
        let orders = p.next_orders(1);
        assert_eq!(orders.len(), 1);
        assert_eq!(p.in_flight_count(), 1);
        // No more until the first completes.
        assert!(p.next_orders(1).is_empty());
    }

    #[test]
    fn completion_tracking() {
        let mut p = plan3();
        let orders = p.next_orders(5);
        assert!(!p.complete());
        for (id, _) in orders {
            p.fetch_done(id);
        }
        assert_eq!(p.fetched_count(), 3);
        assert!(p.complete());
    }

    #[test]
    fn failed_fetch_returns_maps_sourceless() {
        let mut p = plan3();
        let orders = p.next_orders(5);
        let (id, order) = &orders[0];
        p.fetch_failed(*id);
        assert_eq!(p.sourceless(), order.maps.clone());
        // Re-adding sources makes them fetchable again.
        for &m in &order.maps {
            p.map_available(m, NodeId(5), SiteId(2), 100);
        }
        let retry = p.next_orders(5);
        assert!(!retry.is_empty());
    }

    #[test]
    fn late_maps_join_later_waves() {
        let mut p = ReducePlan::new(2);
        p.map_available(0, NodeId(1), SiteId(0), 10);
        let o1 = p.next_orders(4);
        assert_eq!(o1.len(), 1);
        p.fetch_done(o1[0].0);
        assert!(!p.complete());
        p.map_available(1, NodeId(2), SiteId(0), 10);
        let o2 = p.next_orders(4);
        assert_eq!(o2.len(), 1);
        p.fetch_done(o2[0].0);
        assert!(p.complete());
    }

    #[test]
    fn duplicate_availability_is_ignored_once_fetched() {
        let mut p = ReducePlan::new(1);
        p.map_available(0, NodeId(1), SiteId(0), 10);
        let o = p.next_orders(1);
        p.fetch_done(o[0].0);
        p.map_available(0, NodeId(3), SiteId(1), 10); // stale re-announcement
        assert!(p.next_orders(1).is_empty());
        assert!(p.complete());
    }

    #[test]
    fn map_lost_then_reexecuted() {
        let mut p = ReducePlan::new(1);
        p.map_lost(0);
        assert!(p.next_orders(1).is_empty(), "no source yet");
        p.map_available(0, NodeId(4), SiteId(0), 10);
        let o = p.next_orders(1);
        assert_eq!(o.len(), 1);
    }
}
