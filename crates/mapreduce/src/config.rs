//! MapReduce runtime parameters.

use hog_sched::SchedPolicy;
use hog_sim_core::units::{mib_per_s, GIB};
use hog_sim_core::SimDuration;

/// Tunables of the MapReduce model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MrParams {
    /// TaskTracker heartbeat period (assignment latency granularity).
    pub heartbeat_interval: SimDuration,
    /// Silence after which the JobTracker declares a tracker dead (30 s in
    /// HOG, ~10 min stock — same knob as the namenode's).
    pub tracker_dead_timeout: SimDuration,
    /// Fraction of a job's maps that must finish before its reduces are
    /// scheduled (`mapred.reduce.slowstart.completed.maps`).
    pub reduce_slowstart: f64,
    /// Speculation trigger: attempt elapsed > factor × mean completed task
    /// duration (paper: "1/3 slower than average" → 1.33).
    pub speculative_factor: f64,
    /// Whether speculative execution is enabled at all.
    pub speculative_enabled: bool,
    /// Minimum completed tasks of a kind before speculation may trigger.
    pub speculative_min_completed: u32,
    /// Max execution attempts per task before the job is failed
    /// (`mapred.map.max.attempts`).
    pub max_attempts: u8,
    /// Cooldown before a failed task may be reassigned. Spreads retries
    /// out so a transient bad node (e.g. a zombie that the disk self-check
    /// will evict within 3 minutes) cannot burn a task's whole attempt
    /// budget in seconds.
    pub retry_backoff: SimDuration,
    /// Concurrent shuffle fetch flows per reduce attempt
    /// (`mapred.reduce.parallel.copies`, batched by source site here).
    pub shuffle_parallel: usize,
    /// Failed attempts of one job on one tracker before that tracker is
    /// blacklisted for the job.
    pub blacklist_threshold: u8,
    /// Failed shuffle fetches of one completed map before the JobTracker
    /// declares its output lost and re-executes the map ("too many fetch
    /// failures" in Hadoop 0.20).
    pub fetch_fail_threshold: u8,
    /// Maximum concurrent execution copies of one task. Hadoop 0.20 (and
    /// the paper's HOG) cap this at 2 — original + one speculative copy.
    /// The paper's future work proposes making it configurable; values
    /// above 2 are exercised by the multi-copy experiment (X6).
    pub max_task_copies: u8,
    /// Launch extra copies eagerly (no straggler threshold) whenever slots
    /// are idle, up to `max_task_copies` — the paper's §VI proposal of
    /// running every task redundantly and taking the fastest.
    pub eager_copies: bool,
    /// Local scratch disk available for intermediate data per worker.
    pub scratch_capacity: u64,
    /// Sequential read rate of the worker-local disk (map input when the
    /// block is node-local, reduce merge passes).
    pub disk_read_rate: f64,
    /// Sequential write rate of the worker-local disk (map spill).
    pub disk_write_rate: f64,
    /// Slot-assignment policy (stock Hadoop FIFO by default; see
    /// `hog-sched` for the fair and failure-aware alternatives).
    pub sched: SchedPolicy,
}

impl MrParams {
    /// HOG settings: fast failure detection, otherwise stock Hadoop 0.20
    /// defaults.
    pub fn hog() -> Self {
        MrParams {
            heartbeat_interval: SimDuration::from_secs(3),
            tracker_dead_timeout: SimDuration::from_secs(30),
            reduce_slowstart: 0.05,
            speculative_factor: 1.33,
            speculative_enabled: true,
            speculative_min_completed: 3,
            max_attempts: 4,
            retry_backoff: SimDuration::from_secs(60),
            shuffle_parallel: 2,
            blacklist_threshold: 3,
            fetch_fail_threshold: 3,
            max_task_copies: 2,
            eager_copies: false,
            scratch_capacity: 20 * GIB,
            disk_read_rate: mib_per_s(90.0),
            disk_write_rate: mib_per_s(70.0),
            sched: SchedPolicy::Fifo,
        }
    }

    /// Stock settings for the dedicated cluster (slow dead-tracker
    /// detection; ample scratch disk).
    pub fn stock() -> Self {
        MrParams {
            tracker_dead_timeout: SimDuration::from_secs(630),
            scratch_capacity: 200 * GIB,
            ..Self::hog()
        }
    }

    /// Builder: scratch capacity (disk-overflow experiment X4).
    pub fn with_scratch(mut self, bytes: u64) -> Self {
        self.scratch_capacity = bytes;
        self
    }

    /// Builder: dead-tracker timeout (ablation X1).
    pub fn with_dead_timeout(mut self, t: SimDuration) -> Self {
        self.tracker_dead_timeout = t;
        self
    }

    /// Builder: toggle speculation.
    pub fn with_speculation(mut self, on: bool) -> Self {
        self.speculative_enabled = on;
        self
    }

    /// Builder: slot-assignment policy.
    pub fn with_scheduler(mut self, policy: SchedPolicy) -> Self {
        self.sched = policy;
        self
    }

    /// Builder: multi-copy task execution (paper §VI future work). `k = 1`
    /// disables extra copies; `k = 2` is stock speculation; `k > 2` with
    /// `eager` runs every task k-way redundantly, taking the fastest.
    pub fn with_task_copies(mut self, k: u8, eager: bool) -> Self {
        self.max_task_copies = k.max(1);
        self.eager_copies = eager;
        self.speculative_enabled = k > 1;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets() {
        let hog = MrParams::hog();
        assert_eq!(hog.tracker_dead_timeout, SimDuration::from_secs(30));
        assert!(hog.speculative_enabled);
        assert_eq!(hog.max_attempts, 4);
        let stock = MrParams::stock();
        assert!(stock.tracker_dead_timeout > SimDuration::from_secs(600));
        assert!(stock.scratch_capacity > hog.scratch_capacity);
    }

    #[test]
    fn builders() {
        let p = MrParams::hog()
            .with_scratch(123)
            .with_dead_timeout(SimDuration::from_secs(5))
            .with_speculation(false);
        assert_eq!(p.scratch_capacity, 123);
        assert_eq!(p.tracker_dead_timeout, SimDuration::from_secs(5));
        assert!(!p.speculative_enabled);
    }
}
