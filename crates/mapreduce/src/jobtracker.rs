//! The JobTracker: slot assignment (policy-driven via [`hog_sched`]),
//! speculation, shuffle coordination, tracker liveness and failure
//! handling.
//!
//! All scheduling *mechanism* lives here — task tables, locality
//! indices, slot accounting, the speculation index. The *choices* (job
//! order, locality gating, node admission) are delegated to the
//! [`Scheduler`] policy selected by [`MrParams::sched`]; the default
//! [FIFO policy](hog_sched::FifoSched) reproduces stock Hadoop (and the
//! pre-trait JobTracker) bit-for-bit.

use crate::config::MrParams;
use crate::job::{
    AttemptPhase, AttemptState, JobId, JobState, JobStatus, JobSubmission, TaskKind, TaskRef,
};
use crate::shuffle::{FetchOrder, ReducePlan};
use crate::tracker::{TrackerLiveness, TrackerState};
use crate::AttemptRef;
use hog_hdfs::BlockId;
use hog_net::{NodeId, RackId, SiteId, Topology};
use hog_obs::{Layer, TraceEvent, Tracer};
use hog_sched::{Gate, JobSnapshot, Scheduler, SlotKind};
use hog_sim_core::metrics::Counter;
use hog_sim_core::{SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};

pub use hog_sched::Locality;

/// A task handed to a tasktracker on heartbeat.
#[derive(Clone, Debug, PartialEq)]
pub enum Assignment {
    /// Run a map task.
    Map {
        /// The attempt to execute.
        attempt: AttemptRef,
        /// Input block to read.
        block: BlockId,
        /// Input bytes.
        input_bytes: u64,
        /// CPU seconds of the map function.
        cpu_secs: f64,
        /// Intermediate bytes the map writes to local scratch.
        output_bytes: u64,
        /// Locality the scheduler achieved.
        locality: Locality,
    },
    /// Run a reduce task (shuffle begins via [`JobTracker::reduce_next`]).
    Reduce {
        /// The attempt to execute.
        attempt: AttemptRef,
    },
}

impl Assignment {
    /// The attempt this assignment starts.
    pub fn attempt(&self) -> AttemptRef {
        match self {
            Assignment::Map { attempt, .. } | Assignment::Reduce { attempt } => *attempt,
        }
    }
}

/// Notifications for the mediator.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JtNote {
    /// Cancel this attempt's in-flight work (a sibling won, or its job
    /// died); its slot is already freed.
    KillAttempt {
        /// The attempt to kill.
        attempt: AttemptRef,
        /// Where it was running.
        node: NodeId,
    },
    /// A job finished successfully.
    JobCompleted {
        /// The job.
        job: JobId,
    },
    /// A job exhausted a task's attempts and was killed.
    JobFailed {
        /// The job.
        job: JobId,
    },
}

/// Why an attempt failed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FailReason {
    /// The tracker died under it.
    NodeLost,
    /// Local scratch disk full (paper §IV-D.2).
    DiskFull,
    /// Input block unreadable (missing or all sources dead).
    LostBlock,
    /// The node is a zombie: accepted the task, failed instantly
    /// (§IV-D.1).
    ZombieNode,
    /// A shuffle fetch could not be completed.
    FetchFailed,
}

/// What a reduce attempt should do next.
#[derive(Clone, Debug, PartialEq)]
pub enum ReduceStep {
    /// Start these shuffle fetches (order id → fetch).
    Fetch(Vec<(u64, FetchOrder)>),
    /// Nothing to do yet; the JobTracker will wake the attempt when new
    /// map output lands.
    Wait,
    /// All partitions fetched: run merge-sort + reduce, then write output.
    StartSort {
        /// CPU seconds of merge + reduce.
        cpu_secs: f64,
        /// Final output bytes to write to HDFS.
        output_bytes: u64,
        /// Output replication factor.
        replication: u16,
    },
}

/// Output of [`JobTracker::map_done`].
#[derive(Clone, Debug, Default)]
pub struct MapDoneOutput {
    /// Kill/completion notifications.
    pub notes: Vec<JtNote>,
    /// Reduce attempts that may now have fetch work.
    pub wake_reduces: Vec<AttemptRef>,
}

/// Per-job locality index. The replica locations are fixed at submission
/// (as Hadoop caches them), but membership tracks only maps still
/// *pending*: every `pending_maps` transition updates the per-node/rack/
/// site sets, so the locality ladder walks exactly the assignable
/// candidates instead of filtering ever-longer lists of finished tasks.
/// `BTreeSet` iteration is ascending by map index — the same pick the old
/// static lists produced, since those were built in ascending map order.
/// The rack tier is consulted only by rack-aware policies
/// ([`Scheduler::rack_aware`]).
#[derive(Clone, Default)]
struct LocalityIndex {
    /// Per-map `(node, rack, site)` replica triples, fixed at submission
    /// so pending-set maintenance never needs the topology again.
    locs: Vec<Vec<(NodeId, RackId, SiteId)>>,
    /// Maps still pending with a replica on this node / rack / site.
    pend_node: HashMap<NodeId, BTreeSet<u32>>,
    pend_rack: HashMap<RackId, BTreeSet<u32>>,
    pend_site: HashMap<SiteId, BTreeSet<u32>>,
}

impl LocalityIndex {
    /// Map `m` became pending: add it to its replicas' candidate sets.
    fn insert_pending(&mut self, m: u32) {
        for &(n, r, s) in &self.locs[m as usize] {
            self.pend_node.entry(n).or_default().insert(m);
            self.pend_rack.entry(r).or_default().insert(m);
            self.pend_site.entry(s).or_default().insert(m);
        }
    }

    /// Map `m` left the pending set (assigned): drop it everywhere.
    fn remove_pending(&mut self, m: u32) {
        for &(n, r, s) in &self.locs[m as usize] {
            if let Some(set) = self.pend_node.get_mut(&n) {
                set.remove(&m);
            }
            if let Some(set) = self.pend_rack.get_mut(&r) {
                set.remove(&m);
            }
            if let Some(set) = self.pend_site.get_mut(&s) {
                set.remove(&m);
            }
        }
    }
}

/// Sunk work that makes a doomed attempt's rescue *urgent* — worth a
/// copy ahead of fresh pending work. Losing this much progress (plus the
/// 30 s detector and a from-scratch rerun) costs more than making one
/// pending task wait a heartbeat; below it, rescues only fill otherwise
/// idle slots.
const RESCUE_URGENT_SUNK: SimDuration = SimDuration::from_secs(60);

/// One slot kind's cached policy job order. Valid while `epoch` matches
/// the JobTracker's `sched_epoch` (0 never matches — a fresh cache is
/// always stale). The buffer is reused across rebuilds, so steady-state
/// heartbeats allocate nothing.
#[derive(Clone, Default)]
struct OrderCache {
    epoch: u64,
    buf: Vec<u32>,
}

/// Scheduling / failure counters for reports.
#[derive(Clone, Copy, Debug, Default)]
pub struct JtCounters {
    /// Map assignments at each locality level.
    pub node_local: u64,
    /// Rack-local map assignments (always 0 under FIFO, whose ladder has
    /// no rack rung).
    pub rack_local: u64,
    /// Site-local map assignments.
    pub site_local: u64,
    /// Remote map assignments.
    pub remote: u64,
    /// Speculative attempts launched.
    pub speculative: u64,
    /// Rescue copies launched on predicted-failure signals
    /// ([`Scheduler::predicts_failure`]).
    pub rescue_copies: u64,
    /// Unplanned node deaths whose running tasks already had a live
    /// rescue copy elsewhere (the prediction paid off).
    pub rescue_hits: u64,
    /// Unplanned node deaths that caught a running task with no rescue
    /// copy in flight (the predictor was late or never fired).
    pub rescue_misses: u64,
    /// Attempt failures.
    pub failures: u64,
    /// Jobs completed.
    pub jobs_completed: u64,
    /// Jobs failed.
    pub jobs_failed: u64,
}

/// Aggregate task backlog over incomplete jobs (one elastic-controller
/// input; also exported as hog-obs gauges).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Backlog {
    /// Map tasks not yet (re)assigned.
    pub pending_maps: usize,
    /// Map attempts currently running.
    pub running_maps: usize,
    /// Reduce tasks not yet assigned.
    pub pending_reduces: usize,
    /// Reduce attempts currently running.
    pub running_reduces: usize,
    /// Jobs still running tasks.
    pub active_jobs: usize,
}

/// The MapReduce master. See the crate docs for the modelled behaviours.
///
/// `Clone` snapshots the JobTracker wholesale — job/task ledger, tracker
/// records, scheduling policy (failure history included) and rng. The
/// master-failover checkpoint in `hog-core` is exactly such a snapshot.
#[derive(Clone)]
pub struct JobTracker {
    cfg: MrParams,
    jobs: Vec<JobState>,
    locality: Vec<LocalityIndex>,
    /// Incomplete jobs in submission order (the queue policies reorder).
    fifo: Vec<JobId>,
    trackers: BTreeMap<NodeId, TrackerState>,
    /// Exactly the trackers whose liveness is `Silent`, so the per-tick
    /// death check walks suspects instead of the whole tracker map.
    /// Ascending, like a full scan of `trackers` (audited).
    silent: BTreeSet<NodeId>,
    /// Trackers whose liveness is `Dead`, for O(1) `reported_live`.
    dead_trackers: usize,
    /// Reduce attempts that returned `StartSort` already.
    sorting: HashSet<AttemptRef>,
    /// Attempts launched as predicted-failure rescues, kept to tell
    /// prediction hits from misses when the doomed node actually dies.
    rescue_attempts: HashSet<AttemptRef>,
    /// Negative cache for rescue scans, per slot kind × urgency tier:
    /// an unsuccessful scan at `t` suppresses rescans of that tier until
    /// the clock moves on, so heartbeats within one master tick pay for
    /// at most one walk each.
    rescue_last_scan: [[Option<SimTime>; 2]; 2],
    /// The slot-assignment policy (chosen by [`MrParams::sched`]).
    sched: Box<dyn Scheduler>,
    rng: SimRng,
    counters: JtCounters,
    _spec_counter: Counter,
    tracer: Tracer,
    /// Monotonic epoch, bumped on every scheduling-relevant mutation
    /// (job submitted/retired, a task changed pending↔running). Guards
    /// the cached policy orders and, transitively, the pending locality
    /// index invariants (see DESIGN §15).
    sched_epoch: u64,
    /// Cached policy job orders (`[map, reduce]`), valid while their
    /// epoch matches `sched_epoch` and the policy is
    /// [`Scheduler::order_cacheable`].
    order_cache: [OrderCache; 2],
    /// Reused snapshot scratch for [`Scheduler::job_order`] rebuilds.
    snap_buf: Vec<JobSnapshot>,
    /// Aggregate backlog over incomplete jobs, maintained incrementally
    /// at every pending/running transition so `backlog()` is O(1) per
    /// master tick (audited against a full recount).
    agg: Backlog,
}

impl TaskKind {
    fn as_str(self) -> &'static str {
        match self {
            TaskKind::Map => "map",
            TaskKind::Reduce => "reduce",
        }
    }
}

impl FailReason {
    fn as_str(self) -> &'static str {
        match self {
            FailReason::NodeLost => "node_lost",
            FailReason::DiskFull => "disk_full",
            FailReason::LostBlock => "lost_block",
            FailReason::ZombieNode => "zombie_node",
            FailReason::FetchFailed => "fetch_failed",
        }
    }
}

impl JobTracker {
    /// A JobTracker with the given parameters; the slot-assignment policy
    /// comes from [`MrParams::sched`].
    pub fn new(cfg: MrParams, rng: SimRng) -> Self {
        JobTracker {
            jobs: Vec::new(),
            locality: Vec::new(),
            fifo: Vec::new(),
            trackers: BTreeMap::new(),
            silent: BTreeSet::new(),
            dead_trackers: 0,
            sorting: HashSet::new(),
            rescue_attempts: HashSet::new(),
            rescue_last_scan: [[None; 2]; 2],
            sched: hog_sched::build(cfg.sched),
            cfg,
            rng,
            counters: JtCounters::default(),
            _spec_counter: Counter::new(),
            tracer: Tracer::disabled(),
            sched_epoch: 1,
            order_cache: [OrderCache::default(), OrderCache::default()],
            snap_buf: Vec::new(),
            agg: Backlog::default(),
        }
    }

    /// Invalidate the cached job orders: something a policy snapshot
    /// reflects (queue membership, pending/running counts) changed.
    #[inline]
    fn bump_epoch(&mut self) {
        self.sched_epoch += 1;
    }

    // ------------------------------------------------------------------
    // Incremental index maintenance
    //
    // Every `pending_maps` / `pending_reduces` transition of an
    // incomplete job flows through these helpers so three structures stay
    // consistent transactionally: the per-job pending locality index, the
    // aggregate backlog counters and the scheduling epoch. Jobs already
    // terminal keep their raw sets (the ledger serializes them) but no
    // longer contribute to the indices, which only cover the fifo.
    // ------------------------------------------------------------------

    fn pending_map_insert(&mut self, jid: JobId, m: u32) {
        let job = &mut self.jobs[jid.0 as usize];
        if !job.pending_maps.insert(m) {
            return;
        }
        if job.status == JobStatus::Running {
            self.locality[jid.0 as usize].insert_pending(m);
            self.agg.pending_maps += 1;
            self.sched_epoch += 1;
        }
    }

    fn pending_map_remove(&mut self, jid: JobId, m: u32) {
        let job = &mut self.jobs[jid.0 as usize];
        if !job.pending_maps.remove(&m) {
            return;
        }
        if job.status == JobStatus::Running {
            self.locality[jid.0 as usize].remove_pending(m);
            self.agg.pending_maps -= 1;
            self.sched_epoch += 1;
        }
    }

    fn pending_reduce_insert(&mut self, jid: JobId, r: u32) {
        let job = &mut self.jobs[jid.0 as usize];
        if job.pending_reduces.insert(r) && job.status == JobStatus::Running {
            self.agg.pending_reduces += 1;
            self.sched_epoch += 1;
        }
    }

    fn pending_reduce_remove(&mut self, jid: JobId, r: u32) {
        let job = &mut self.jobs[jid.0 as usize];
        if job.pending_reduces.remove(&r) && job.status == JobStatus::Running {
            self.agg.pending_reduces -= 1;
            self.sched_epoch += 1;
        }
    }

    /// A `kind` attempt started or stopped: adjust the aggregate running
    /// counters and invalidate the cached orders.
    fn note_running_delta(&mut self, kind: TaskKind, delta: isize) {
        let slot = match kind {
            TaskKind::Map => &mut self.agg.running_maps,
            TaskKind::Reduce => &mut self.agg.running_reduces,
        };
        *slot = slot.checked_add_signed(delta).expect("running underflow");
        self.sched_epoch += 1;
    }

    /// Attach the shared trace handle (disabled by default).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// The active configuration.
    pub fn config(&self) -> &MrParams {
        &self.cfg
    }

    /// Scheduling counters.
    pub fn counters(&self) -> JtCounters {
        self.counters
    }

    /// Name of the active slot-assignment policy.
    pub fn scheduler_name(&self) -> &'static str {
        self.sched.name()
    }

    /// Incomplete jobs in submission order (the raw queue the policy
    /// reorders; exposed for tests and oracles).
    pub fn job_queue(&self) -> &[JobId] {
        &self.fifo
    }

    // ------------------------------------------------------------------
    // Tracker liveness
    // ------------------------------------------------------------------

    /// A tasktracker started on `node` (living in `site`).
    pub fn register_tracker(
        &mut self,
        now: SimTime,
        node: NodeId,
        site: SiteId,
        map_slots: u8,
        reduce_slots: u8,
    ) {
        let old = self.trackers.insert(
            node,
            TrackerState::new(map_slots, reduce_slots, self.cfg.scratch_capacity, now),
        );
        match old.map(|t| t.liveness) {
            Some(TrackerLiveness::Dead) => self.dead_trackers -= 1,
            Some(TrackerLiveness::Silent) => {
                self.silent.remove(&node);
            }
            _ => {}
        }
        self.sched.on_tracker_registered(node, site, now);
    }

    /// The tracker stopped heartbeating (worker preempted cleanly).
    pub fn tracker_silent(&mut self, now: SimTime, node: NodeId) {
        if let Some(t) = self.trackers.get_mut(&node) {
            if t.liveness == TrackerLiveness::Live {
                t.liveness = TrackerLiveness::Silent;
                t.last_heartbeat = now;
                self.silent.insert(node);
            }
        }
    }

    /// Whether the JobTracker currently believes the tracker usable.
    pub fn tracker_live(&self, node: NodeId) -> bool {
        self.trackers
            .get(&node)
            .is_some_and(|t| t.liveness == TrackerLiveness::Live)
    }

    /// Whether a tracker currently hosts running attempts *or* map
    /// outputs some unfinished reduce may still fetch. The elastic
    /// shrink avoids reclaiming either: killing a running attempt
    /// reschedules it, and killing still-needed map outputs forces the
    /// maps to re-run — both turn a voluntary shrink into rescheduling
    /// churn. Scratch stops pinning the tracker once every reduce of
    /// every job holding output here is past its shuffle (scheduled and
    /// fetches complete): from then on the outputs are dead weight, and
    /// a later re-attempt would recover through the ordinary
    /// fetch-failure → map-re-run path, exactly as after any death.
    pub fn tracker_busy(&self, node: NodeId) -> bool {
        let Some(t) = self.trackers.get(&node) else {
            return false;
        };
        if !t.running.is_empty() {
            return true;
        }
        if t.scratch_used == 0 {
            return false;
        }
        self.jobs.iter().any(|job| {
            !job.all_done()
                && job.scratch_by_node.get(&node).copied().unwrap_or(0) > 0
                && (!job.pending_reduces.is_empty()
                    || job.reduce_plans.values().any(|p| !p.complete()))
        })
    }

    /// Trackers the JobTracker believes alive (Fig. 5 master view).
    /// O(1): `dead_trackers` is maintained at every liveness transition.
    pub fn reported_live(&self) -> usize {
        self.trackers.len() - self.dead_trackers
    }

    /// Aggregate task backlog over incomplete jobs — the demand half of
    /// the elastic controller's pool snapshot. O(1): the counters are
    /// maintained incrementally at every pending/running transition (and
    /// audited against a full recount in debug builds).
    pub fn backlog(&self) -> Backlog {
        self.agg
    }

    /// Recount the backlog from the job table (the audit oracle for the
    /// incremental counters `backlog` returns).
    fn recount_backlog(&self) -> Backlog {
        let mut b = Backlog::default();
        for &jid in &self.fifo {
            let job = &self.jobs[jid.0 as usize];
            if job.status != JobStatus::Running {
                continue;
            }
            b.active_jobs += 1;
            b.pending_maps += job.pending_maps.len();
            b.pending_reduces += job.pending_reduces.len();
            b.running_maps += job.running_maps as usize;
            b.running_reduces += job.running_reduces as usize;
        }
        b
    }

    /// Running slot count per incomplete job, in submission order (the
    /// per-job slot-share series hog-obs samples each master tick).
    pub fn job_shares(&self) -> impl Iterator<Item = (JobId, u32)> + '_ {
        self.fifo.iter().map(|&jid| {
            let job = &self.jobs[jid.0 as usize];
            (jid, job.running_maps + job.running_reduces)
        })
    }

    /// Jain's fairness index `J = (Σx)² / (n·Σx²)` over the running
    /// slot counts of jobs that currently want capacity (some task
    /// pending or running). 1.0 means perfectly even shares; 1/n means
    /// one job holds everything. Degenerate cases (≤ 1 contender, or
    /// nobody holds a slot yet) report 1.0.
    pub fn jain_fairness(&self) -> f64 {
        let mut n = 0usize;
        let mut sum = 0.0f64;
        let mut sumsq = 0.0f64;
        for &jid in &self.fifo {
            let job = &self.jobs[jid.0 as usize];
            if job.status != JobStatus::Running {
                continue;
            }
            let demand = job.pending_maps.len()
                + job.pending_reduces.len()
                + (job.running_maps + job.running_reduces) as usize;
            if demand == 0 {
                continue;
            }
            let share = (job.running_maps + job.running_reduces) as f64;
            n += 1;
            sum += share;
            sumsq += share * share;
        }
        if n <= 1 || sumsq == 0.0 {
            return 1.0;
        }
        (sum * sum) / (n as f64 * sumsq)
    }

    /// The active policy's failure penalty for a site (0.0 for policies
    /// without failure history). Read by the elastic controller to pick
    /// shrink victims at churn-prone sites first.
    pub fn site_penalty(&self, site: SiteId, now: SimTime) -> f64 {
        self.sched.site_penalty(site, now)
    }

    /// Declare overdue silent trackers dead: reschedule their running
    /// attempts and re-run completed maps whose outputs died with them.
    pub fn check_dead(&mut self, now: SimTime) -> (Vec<NodeId>, Vec<JtNote>) {
        // Walk only the Silent suspects (`self.silent` mirrors the
        // liveness field exactly). Ascending like the full-map scan this
        // replaces, so the declaration order is unchanged.
        let overdue: Vec<NodeId> = self
            .silent
            .iter()
            .copied()
            .filter(|n| {
                self.trackers.get(n).is_some_and(|t| {
                    now.saturating_since(t.last_heartbeat) >= self.cfg.tracker_dead_timeout
                })
            })
            .collect();
        let mut notes = Vec::new();
        for node in &overdue {
            notes.extend(self.declare_tracker_dead(now, *node));
        }
        (overdue, notes)
    }

    fn declare_tracker_dead(&mut self, now: SimTime, node: NodeId) -> Vec<JtNote> {
        self.tracker_gone(now, node, false)
    }

    /// Gracefully retire a tracker the elastic controller is releasing.
    /// Unlike a crash this is voluntary, so it neither feeds the
    /// scheduler's failure history (a planned release is not a site
    /// fault) nor proactively re-runs completed maps for jobs whose
    /// reduces are all past their shuffle — for those the outputs are
    /// dead weight, and any later reduce re-attempt recovers through
    /// the ordinary fetch-failure path.
    pub fn decommission_tracker(&mut self, now: SimTime, node: NodeId) -> Vec<JtNote> {
        self.tracker_gone(now, node, true)
    }

    fn tracker_gone(&mut self, now: SimTime, node: NodeId, planned: bool) -> Vec<JtNote> {
        let mut notes = Vec::new();
        // One scoped borrow pulls everything the rest of the path needs,
        // so the `on_tracker_dead` policy hook below can do whatever it
        // likes to tracker state without an unwrap turning a missing
        // entry into a panic.
        let running = {
            let Some(t) = self.trackers.get_mut(&node) else {
                return notes; // unknown tracker: nothing to declare
            };
            if t.liveness != TrackerLiveness::Dead {
                self.dead_trackers += 1;
            }
            t.liveness = TrackerLiveness::Dead;
            let running: Vec<AttemptRef> = std::mem::take(&mut t.running).into_iter().collect();
            t.scratch_used = 0;
            running
        };
        self.silent.remove(&node);
        if !planned {
            self.sched.on_tracker_dead(node, now);
            // Score the predictor against reality: each attempt this
            // crash caught either had a rescue copy in flight (hit) or
            // did not (miss).
            if self.sched.prediction_enabled() {
                for &att in &running {
                    match self.rescue_outcome(att) {
                        Some(true) => self.counters.rescue_hits += 1,
                        Some(false) => self.counters.rescue_misses += 1,
                        None => {}
                    }
                }
            }
        }
        self.tracer.emit(|| {
            let kind = if planned {
                "tracker_decommissioned"
            } else {
                "tracker_dead"
            };
            TraceEvent::new(Layer::MapReduce, kind)
                .with("node", node.0)
                .with("aborted_attempts", running.len())
        });
        // Requeue running attempts (killed, not failed: no blame).
        for att in running {
            notes.extend(self.abort_attempt(now, att, node, false));
        }
        // Re-run completed maps whose intermediate output is gone, for
        // jobs that still need their shuffle data.
        for jid in self.fifo.clone() {
            let job = &mut self.jobs[jid.0 as usize];
            if job.status != JobStatus::Running {
                continue;
            }
            job.scratch_by_node.remove(&node);
            // Nothing needs old map output once every reduce has finished.
            if job.all_done() || job.reduces_done == job.spec.reduces {
                continue;
            }
            // A planned release only hands over trackers whose outputs no
            // unfinished reduce can still fetch (every reduce scheduled
            // and past its shuffle); verify rather than assume, so a
            // schedule change between victim selection and the kill still
            // re-runs what is genuinely needed.
            if planned
                && job.pending_reduces.is_empty()
                && job.reduce_plans.values().all(|p| p.complete())
            {
                continue;
            }
            let mut lost: Vec<u32> = Vec::new();
            for (i, task) in job.maps.iter_mut().enumerate() {
                if task.done && task.completed_on == Some(node) {
                    task.done = false;
                    task.completed_on = None;
                    lost.push(i as u32);
                }
            }
            if lost.is_empty() {
                continue;
            }
            job.maps_done -= lost.len() as u32;
            for &m in &lost {
                for plan in job.reduce_plans.values_mut() {
                    plan.map_lost(m);
                }
            }
            for &m in &lost {
                self.pending_map_insert(jid, m);
            }
        }
        notes
    }

    // ------------------------------------------------------------------
    // Job lifecycle
    // ------------------------------------------------------------------

    /// Submit a job; split locality hints come from the submission.
    pub fn submit_job(&mut self, now: SimTime, spec: JobSubmission, topo: &Topology) -> JobId {
        let id = JobId(self.jobs.len() as u32);
        let maps = spec.maps();
        let reduces = spec.reduces as usize;
        let mut idx = LocalityIndex {
            locs: Vec::with_capacity(spec.split_locations.len()),
            ..LocalityIndex::default()
        };
        for locs in &spec.split_locations {
            idx.locs.push(
                locs.iter()
                    .map(|&n| (n, topo.rack_of(n), topo.site_of(n)))
                    .collect(),
            );
        }
        // Every map starts pending.
        for m in 0..maps {
            idx.insert_pending(m);
        }
        self.locality.push(idx);
        self.jobs.push(JobState::new(spec, now));
        self.fifo.push(id);
        self.agg.active_jobs += 1;
        self.agg.pending_maps += maps as usize;
        self.agg.pending_reduces += reduces;
        self.bump_epoch();
        self.sched.on_job_arrived(id.0, now);
        self.tracer.emit(|| {
            let spec = &self.jobs[id.0 as usize].spec;
            TraceEvent::new(Layer::MapReduce, "job_submit")
                .with("job", id.0)
                .with("maps", spec.maps())
                .with("reduces", spec.reduces as u64)
        });
        id
    }

    /// Job state (read-only, for reports and the mediator).
    pub fn job(&self, id: JobId) -> &JobState {
        &self.jobs[id.0 as usize]
    }

    /// Number of jobs submitted so far.
    pub fn job_count(&self) -> usize {
        self.jobs.len()
    }

    /// Jobs not yet finished.
    pub fn incomplete_jobs(&self) -> usize {
        self.fifo.len()
    }

    /// Response time of a finished job.
    pub fn response_time(&self, id: JobId) -> Option<SimDuration> {
        let j = self.job(id);
        j.finished.map(|f| f.saturating_since(j.submitted))
    }

    // ------------------------------------------------------------------
    // Scheduling (heartbeat-driven)
    // ------------------------------------------------------------------

    /// A tasktracker heartbeat: record liveness and hand out work for its
    /// free slots (FIFO across jobs; node-local → site-local → remote for
    /// maps; slowstart-gated reduces; speculation as a fallback).
    pub fn heartbeat(&mut self, now: SimTime, node: NodeId, topo: &Topology) -> Vec<Assignment> {
        let mut out = Vec::new();
        self.heartbeat_into(now, node, topo, &mut out);
        out
    }

    /// [`JobTracker::heartbeat`] with a caller-owned assignment buffer
    /// (cleared first): the allocation-free path the batched master tick
    /// drives for every node in a coalesced heartbeat run.
    pub fn heartbeat_into(
        &mut self,
        now: SimTime,
        node: NodeId,
        topo: &Topology,
        out: &mut Vec<Assignment>,
    ) {
        out.clear();
        // One tracker lookup serves the whole heartbeat: every successful
        // assignment starts exactly one attempt of its kind on this node,
        // so the free counts can be tracked locally instead of recounting
        // the running set per slot.
        let (mut free_maps, mut free_reduces) = {
            let Some(t) = self.trackers.get_mut(&node) else {
                return;
            };
            if t.liveness == TrackerLiveness::Dead {
                return;
            }
            t.last_heartbeat = now;
            if t.liveness == TrackerLiveness::Silent {
                // Partition healed before the timeout: off the suspect
                // list (the branch keeps the hot Live→Live path free of
                // a set lookup).
                self.silent.remove(&node);
            }
            t.liveness = TrackerLiveness::Live;
            (t.free_map_slots(), t.free_reduce_slots())
        };
        while free_maps > 0 {
            match self.assign_map(now, node, topo) {
                Some(a) => {
                    out.push(a);
                    free_maps -= 1;
                }
                None => break,
            }
        }
        while free_reduces > 0 {
            match self.assign_reduce(now, node, topo) {
                Some(a) => {
                    out.push(a);
                    free_reduces -= 1;
                }
                None => break,
            }
        }
    }

    fn start_attempt(&mut self, now: SimTime, task: TaskRef, node: NodeId) -> AttemptRef {
        let job = &mut self.jobs[task.job.0 as usize];
        let ts = job.task_mut(task);
        let attempt = ts.attempts.len() as u8;
        ts.attempts.push(AttemptState {
            node,
            started: now,
            phase: AttemptPhase::Running,
        });
        job.note_attempt_started(task.kind, task.index, attempt, now);
        let att = AttemptRef { task, attempt };
        self.note_running_delta(task.kind, 1);
        self.trackers.get_mut(&node).unwrap().running.insert(att);
        self.tracer.emit(|| {
            TraceEvent::new(Layer::MapReduce, "attempt_start")
                .with("job", task.job.0)
                .with("kind", task.kind.as_str())
                .with("task", task.index)
                .with("attempt", attempt as u64)
                .with("node", node.0)
        });
        att
    }

    /// The policy's assignment order for one `kind` slot, served from the
    /// epoch-guarded cache when the policy is [`Scheduler::order_cacheable`]
    /// and nothing scheduling-relevant changed since the last rebuild.
    /// The cache is *taken out* (so the caller can iterate it while
    /// mutating `self`) and must be handed back via [`JobTracker::put_order`];
    /// a rebuild reuses both the snapshot scratch and the order buffer, so
    /// the steady state allocates nothing.
    fn take_order(&mut self, kind: SlotKind, now: SimTime) -> OrderCache {
        let slot = kind as usize;
        let mut cache = std::mem::take(&mut self.order_cache[slot]);
        if !self.sched.order_cacheable() || cache.epoch != self.sched_epoch {
            self.snap_buf.clear();
            for (queue_pos, &jid) in self.fifo.iter().enumerate() {
                let job = &self.jobs[jid.0 as usize];
                let (pending, running) = match kind {
                    SlotKind::Map => (job.pending_maps.len() as u32, job.running_maps),
                    SlotKind::Reduce => (job.pending_reduces.len() as u32, job.running_reduces),
                };
                self.snap_buf.push(JobSnapshot {
                    id: jid.0,
                    queue_pos,
                    pending,
                    running,
                });
            }
            cache.buf.clear();
            self.sched.job_order(&self.snap_buf, kind, now, &mut cache.buf);
            cache.epoch = self.sched_epoch;
        }
        cache
    }

    /// Return an order taken with [`JobTracker::take_order`]. If the epoch
    /// moved while the caller held it (an assignment happened), the stored
    /// epoch no longer matches and the next take rebuilds.
    fn put_order(&mut self, kind: SlotKind, cache: OrderCache) {
        self.order_cache[kind as usize] = cache;
    }

    fn assign_map(&mut self, now: SimTime, node: NodeId, topo: &Topology) -> Option<Assignment> {
        let site = topo.site_of(node);
        if !self.sched.admit(node, site, SlotKind::Map, now) {
            return None;
        }
        // Urgent rescues outrank fresh work: an attempt with substantial
        // sunk work on a doomed node loses all of it when the node dies,
        // while a pending task merely waits one more heartbeat. Without
        // this tier a backlogged preemption wave — when every heartbeat
        // finds pending work — starves the rescue path exactly when it
        // matters most.
        if self.sched.prediction_enabled() {
            if let Some(a) = self.rescue(now, node, TaskKind::Map, topo, RESCUE_URGENT_SUNK) {
                return Some(a);
            }
        }
        let order = self.take_order(SlotKind::Map, now);
        let picked = self.try_assign_map(now, node, site, topo, &order.buf);
        self.put_order(SlotKind::Map, order);
        if picked.is_some() {
            return picked;
        }
        // No pending map anywhere: rescue tasks off predicted-doomed
        // nodes first (more urgent than stragglers), then speculate.
        if self.sched.prediction_enabled() {
            if let Some(a) = self.rescue(now, node, TaskKind::Map, topo, SimDuration::ZERO) {
                return Some(a);
            }
        }
        if self.cfg.speculative_enabled {
            return self.speculate(now, node, TaskKind::Map, topo);
        }
        None
    }

    fn try_assign_map(
        &mut self,
        now: SimTime,
        node: NodeId,
        site: SiteId,
        topo: &Topology,
        order: &[u32],
    ) -> Option<Assignment> {
        let rack = topo.rack_of(node);
        let rack_aware = self.sched.rack_aware();
        for &jid in order {
            let jid = JobId(jid);
            let job = &self.jobs[jid.0 as usize];
            if job.status != JobStatus::Running
                || job.blacklisted(node, self.cfg.blacklist_threshold)
            {
                continue;
            }
            if job.pending_maps.is_empty() {
                continue;
            }
            // The index sets hold only pending maps, so membership is
            // free; with no backoffs recorded every candidate is
            // eligible without a per-task lookup.
            let no_backoff = job.retry_after.is_empty();
            let ok = |m: &&u32| no_backoff || job.retry_eligible(TaskKind::Map, **m, now);
            // Walk the locality ladder: node → (rack) → site → remote.
            // The rack rung only exists for rack-aware policies; FIFO
            // keeps the paper's exact three-level ladder.
            let idx = &self.locality[jid.0 as usize];
            let mut pick: Option<(u32, Locality)> = None;
            if let Some(cands) = idx.pend_node.get(&node) {
                if let Some(&m) = cands.iter().find(ok) {
                    pick = Some((m, Locality::NodeLocal));
                }
            }
            if pick.is_none() && rack_aware {
                if let Some(cands) = idx.pend_rack.get(&rack) {
                    if let Some(&m) = cands.iter().find(ok) {
                        pick = Some((m, Locality::RackLocal));
                    }
                }
            }
            if pick.is_none() {
                if let Some(cands) = idx.pend_site.get(&site) {
                    if let Some(&m) = cands.iter().find(ok) {
                        pick = Some((m, Locality::SiteLocal));
                    }
                }
            }
            // Remote (lowest eligible pending index).
            if pick.is_none() {
                pick = job
                    .pending_maps
                    .iter()
                    .find(ok)
                    .map(|&m| (m, Locality::Remote));
            }
            let Some((m, locality)) = pick else {
                continue; // everything pending is cooling down
            };
            // Delay scheduling: the policy may decline the best level on
            // offer, leaving the job's tasks pending in the hope that a
            // better-placed slot heartbeats soon.
            if self.sched.locality_gate(jid.0, locality, now) == Gate::Defer {
                continue;
            }
            match locality {
                Locality::NodeLocal => self.counters.node_local += 1,
                Locality::RackLocal => self.counters.rack_local += 1,
                Locality::SiteLocal => self.counters.site_local += 1,
                Locality::Remote => self.counters.remote += 1,
            }
            self.pending_map_remove(jid, m);
            let spec = &self.jobs[jid.0 as usize].spec;
            let (block, input_bytes) = spec.input_blocks[m as usize];
            let cpu_secs = spec.map_cpu_secs;
            let output_bytes = spec.map_output_bytes;
            let task = TaskRef {
                job: jid,
                kind: TaskKind::Map,
                index: m,
            };
            let attempt = self.start_attempt(now, task, node);
            self.sched
                .on_assigned(jid.0, SlotKind::Map, node, Some(locality), now);
            return Some(Assignment::Map {
                attempt,
                block,
                input_bytes,
                cpu_secs,
                output_bytes,
                locality,
            });
        }
        None
    }

    fn assign_reduce(&mut self, now: SimTime, node: NodeId, topo: &Topology) -> Option<Assignment> {
        let site = topo.site_of(node);
        if !self.sched.admit(node, site, SlotKind::Reduce, now) {
            return None;
        }
        let order = self.take_order(SlotKind::Reduce, now);
        let picked = self.try_assign_reduce(now, node, topo, &order.buf);
        self.put_order(SlotKind::Reduce, order);
        if picked.is_some() {
            return picked;
        }
        // Reduces get no *urgent* rescue tier: a reduce copy re-fetches
        // its whole shuffle over the same (often cross-site) links the
        // original is using, so buying one at the cost of a fresh
        // assignment doubles the most expensive traffic in the system —
        // a measured net loss in BENCH_churn. On an otherwise idle slot
        // the copy only costs the duplicate fetch, which the relative
        // placement bar and the site-median gate keep rare enough to pay.
        if self.sched.prediction_enabled() {
            if let Some(a) = self.rescue(now, node, TaskKind::Reduce, topo, SimDuration::ZERO) {
                return Some(a);
            }
        }
        if self.cfg.speculative_enabled {
            return self.speculate(now, node, TaskKind::Reduce, topo);
        }
        None
    }

    fn try_assign_reduce(
        &mut self,
        now: SimTime,
        node: NodeId,
        topo: &Topology,
        order: &[u32],
    ) -> Option<Assignment> {
        for &jid in order {
            let jid = JobId(jid);
            let job = &self.jobs[jid.0 as usize];
            if job.status != JobStatus::Running
                || job.blacklisted(node, self.cfg.blacklist_threshold)
                || !job.slowstart_reached(self.cfg.reduce_slowstart)
                || job.pending_reduces.is_empty()
            {
                continue;
            }
            let no_backoff = job.retry_after.is_empty();
            let Some(&r) = job
                .pending_reduces
                .iter()
                .find(|r| no_backoff || job.retry_eligible(TaskKind::Reduce, **r, now))
            else {
                continue; // all pending reduces cooling down
            };
            self.pending_reduce_remove(jid, r);
            let task = TaskRef {
                job: jid,
                kind: TaskKind::Reduce,
                index: r,
            };
            let attempt = self.start_attempt(now, task, node);
            self.init_reduce_plan(attempt, topo);
            self.sched
                .on_assigned(jid.0, SlotKind::Reduce, node, None, now);
            return Some(Assignment::Reduce { attempt });
        }
        None
    }

    /// Populate a fresh reduce attempt's shuffle plan with every map
    /// output already completed. Maps whose output sits on a tracker the
    /// JobTracker already knows is dead (e.g. decommissioned by the
    /// elastic controller after its reduces finished shuffling, then
    /// needed again by this re-attempt) are requeued immediately instead
    /// of being handed out as doomed fetch sources — burning a
    /// fetch-failure strike cycle per map just to rediscover a death the
    /// master already observed would stretch recovery by hours.
    fn init_reduce_plan(&mut self, att: AttemptRef, topo: &Topology) {
        let jid = att.task.job;
        let total = self.jobs[jid.0 as usize].spec.maps();
        let part = self.partition_bytes(jid);
        let mut plan = ReducePlan::new(total);
        // Collect (map, node) of completed maps first to appease borrows.
        type MapLoc = Vec<(u32, NodeId)>;
        let (done, lost): (MapLoc, MapLoc) = self.jobs[jid.0 as usize]
            .maps
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.completed_on.filter(|_| t.done).map(|n| (i as u32, n)))
            .partition(|&(_, n)| {
                self.trackers
                    .get(&n)
                    .is_none_or(|t| t.liveness != TrackerLiveness::Dead)
            });
        for (m, n) in done {
            plan.map_available(m, n, topo.site_of(n), part);
        }
        if !lost.is_empty() {
            let job = &mut self.jobs[jid.0 as usize];
            job.maps_done -= lost.len() as u32;
            for &(m, _) in &lost {
                let task = &mut job.maps[m as usize];
                task.done = false;
                task.completed_on = None;
                for p in job.reduce_plans.values_mut() {
                    p.map_lost(m);
                }
            }
            for &(m, _) in &lost {
                self.pending_map_insert(jid, m);
            }
        }
        self.jobs[jid.0 as usize].reduce_plans.insert(att, plan);
    }

    /// Bytes of one map's partition destined for one reduce.
    fn partition_bytes(&self, job: JobId) -> u64 {
        let spec = &self.jobs[job.0 as usize].spec;
        spec.map_output_bytes / spec.reduces.max(1) as u64
    }

    /// One rescue copy of a `kind` task currently running on a node the
    /// policy predicts will die ([`Scheduler::predicts_failure`]),
    /// launched *before* the 30 s liveness detector can fire. Rescues
    /// share speculation's ≤ 2 copy budget, so a rescued task is never
    /// rescued twice; placement is judged per doomed candidate by
    /// [`Scheduler::allow_rescue`], a bar *relative* to the node being
    /// rescued from so the pass keeps working when a preemption wave
    /// taints the whole pool.
    fn rescue(
        &mut self,
        now: SimTime,
        node: NodeId,
        kind: TaskKind,
        topo: &Topology,
        min_sunk: SimDuration,
    ) -> Option<Assignment> {
        let slot_kind = match kind {
            TaskKind::Map => SlotKind::Map,
            TaskKind::Reduce => SlotKind::Reduce,
        };
        // Negative cache: a fruitless scan suppresses rescans of this
        // urgency tier until the clock moves (coalesced heartbeats share
        // one instant). The tiers cache separately — a fruitless urgent
        // scan says nothing about the wider any-sunk scan.
        let tier = usize::from(min_sunk > SimDuration::ZERO);
        if self.rescue_last_scan[slot_kind as usize][tier]
            .is_some_and(|t| now.saturating_since(t) == SimDuration::ZERO)
        {
            return None;
        }
        let order = self.take_order(slot_kind, now);
        let picked = self.try_rescue(now, node, kind, topo, &order.buf, min_sunk);
        self.put_order(slot_kind, order);
        if picked.is_none() {
            self.rescue_last_scan[slot_kind as usize][tier] = Some(now);
        }
        picked
    }

    fn try_rescue(
        &mut self,
        now: SimTime,
        node: NodeId,
        kind: TaskKind,
        topo: &Topology,
        order: &[u32],
        min_sunk: SimDuration,
    ) -> Option<Assignment> {
        for &jid in order {
            let jid = JobId(jid);
            let job = &self.jobs[jid.0 as usize];
            if job.status != JobStatus::Running
                || job.blacklisted(node, self.cfg.blacklist_threshold)
            {
                continue;
            }
            let max_copies = self.cfg.max_task_copies as usize;
            let tasks = match kind {
                TaskKind::Map => &job.maps,
                TaskKind::Reduce => &job.reduces,
            };
            // Walk the whole running index: unlike speculation there is
            // no age cutoff (doom is a property of the node, not the
            // attempt), so the negative cache above does the cost control.
            // `min_sunk` filters the urgent tier to attempts whose sunk
            // work is actually worth outranking fresh assignments for.
            // Candidates are taken in task-index order (BTreeMap), not
            // sunk-work order: the oldest running attempts are mostly
            // stragglers, whose slowness is task-intrinsic — a copy of
            // one is just as slow, so chasing sunk work buys the most
            // expensive duplicates with the least residual exposure.
            let mut doomed: BTreeMap<u32, NodeId> = BTreeMap::new();
            let mut on_node: HashSet<u32> = HashSet::new();
            for &(start, k, index, attempt) in &job.running_by_start {
                if k != kind {
                    continue;
                }
                let a = &tasks[index as usize].attempts[attempt as usize];
                debug_assert_eq!(a.phase, AttemptPhase::Running);
                if a.node == node {
                    on_node.insert(index);
                } else if now.saturating_since(start) >= min_sunk
                    && self.sched.marks_doomed(a.node, topo.site_of(a.node), now)
                {
                    doomed.insert(index, a.node);
                }
            }
            let site = topo.site_of(node);
            let candidate = doomed.iter().map(|(&i, &n)| (i, n)).find(|&(index, dn)| {
                let t = &tasks[index as usize];
                let running = t.running_attempts();
                !t.done
                    && running >= 1
                    && running < max_copies
                    && !on_node.contains(&index)
                    && self.sched.allow_rescue(node, site, dn, topo.site_of(dn), now)
            });
            let candidate = candidate.map(|(index, _)| index);
            let Some(index) = candidate else {
                continue;
            };
            self.counters.rescue_copies += 1;
            self.tracer.emit(|| {
                TraceEvent::new(Layer::MapReduce, "rescue")
                    .with("job", jid.0)
                    .with("kind", kind.as_str())
                    .with("task", index)
                    .with("node", node.0)
            });
            let task = TaskRef { job: jid, kind, index };
            let attempt = self.start_attempt(now, task, node);
            self.rescue_attempts.insert(attempt);
            return Some(match kind {
                TaskKind::Map => {
                    // The rescue copy reads the same fixed replica set as
                    // the doomed original, so it gets whatever locality the
                    // rescuing node actually has — unlike speculation,
                    // which models Hadoop's blind remote re-execution.
                    let replicas = &self.locality[jid.0 as usize].locs[index as usize];
                    let locality = if replicas.iter().any(|&(n, _, _)| n == node) {
                        Locality::NodeLocal
                    } else if self.sched.rack_aware()
                        && replicas.iter().any(|&(_, r, _)| r == topo.rack_of(node))
                    {
                        Locality::RackLocal
                    } else if replicas.iter().any(|&(_, _, s)| s == site) {
                        Locality::SiteLocal
                    } else {
                        Locality::Remote
                    };
                    match locality {
                        Locality::NodeLocal => self.counters.node_local += 1,
                        Locality::RackLocal => self.counters.rack_local += 1,
                        Locality::SiteLocal => self.counters.site_local += 1,
                        Locality::Remote => self.counters.remote += 1,
                    }
                    let spec = &self.jobs[jid.0 as usize].spec;
                    let (block, input_bytes) = spec.input_blocks[index as usize];
                    let a = Assignment::Map {
                        attempt,
                        block,
                        input_bytes,
                        cpu_secs: spec.map_cpu_secs,
                        output_bytes: spec.map_output_bytes,
                        locality,
                    };
                    self.sched
                        .on_assigned(jid.0, SlotKind::Map, node, Some(locality), now);
                    a
                }
                TaskKind::Reduce => {
                    self.init_reduce_plan(attempt, topo);
                    self.sched
                        .on_assigned(jid.0, SlotKind::Reduce, node, None, now);
                    Assignment::Reduce { attempt }
                }
            });
        }
        None
    }

    /// Prediction outcome for an attempt lost to an unplanned death:
    /// `Some(true)` when a rescue sibling is already running (or even
    /// finished) elsewhere, `Some(false)` when the predictor left it
    /// uncovered, `None` when the lost attempt is itself a rescue copy
    /// (the rescue was mis-placed; neither hit nor miss).
    fn rescue_outcome(&self, att: AttemptRef) -> Option<bool> {
        if self.rescue_attempts.contains(&att) {
            return None;
        }
        let ts = self.jobs[att.task.job.0 as usize].task(att.task);
        let hit = ts.attempts.iter().enumerate().any(|(i, a)| {
            i as u8 != att.attempt
                && matches!(a.phase, AttemptPhase::Running | AttemptPhase::Succeeded)
                && self.rescue_attempts.contains(&AttemptRef {
                    task: att.task,
                    attempt: i as u8,
                })
        });
        Some(hit)
    }

    /// One speculative attempt for a straggling `kind` task, if any
    /// qualifies (paper: task 1/3 slower than average; ≤ 2 copies).
    ///
    /// Candidates are found through the job's [`JobState::running_by_start`]
    /// index — the oldest-first walk stops at the first attempt too young
    /// to be a straggler, the same bucketed-queue trick the Namenode uses
    /// for its under-replication scan, so the cost is O(running stragglers)
    /// rather than O(tasks) per idle heartbeat.
    fn speculate(
        &mut self,
        now: SimTime,
        node: NodeId,
        kind: TaskKind,
        topo: &Topology,
    ) -> Option<Assignment> {
        if !self.sched.allow_speculation(node, topo.site_of(node), now) {
            return None;
        }
        let slot_kind = match kind {
            TaskKind::Map => SlotKind::Map,
            TaskKind::Reduce => SlotKind::Reduce,
        };
        let order = self.take_order(slot_kind, now);
        let picked = self.try_speculate(now, node, kind, topo, &order.buf);
        self.put_order(slot_kind, order);
        picked
    }

    fn try_speculate(
        &mut self,
        now: SimTime,
        node: NodeId,
        kind: TaskKind,
        topo: &Topology,
        order: &[u32],
    ) -> Option<Assignment> {
        // Rate-limit unsuccessful scans so repeated idle heartbeats within
        // the same instant's window stay cheap.
        const SCAN_COOLDOWN: SimDuration = SimDuration::from_secs(5);
        for &jid in order {
            let jid = JobId(jid);
            let job = &self.jobs[jid.0 as usize];
            if job.status != JobStatus::Running
                || job.blacklisted(node, self.cfg.blacklist_threshold)
            {
                continue;
            }
            if !self.cfg.eager_copies && now.saturating_since(job.spec_last_scan) < SCAN_COOLDOWN {
                continue;
            }
            // Eager mode (multi-copy, §VI) skips the straggler threshold;
            // stock speculation requires a mean over completed tasks.
            let threshold = if self.cfg.eager_copies {
                0.0
            } else {
                let mean = match kind {
                    TaskKind::Map => job.mean_map_secs(self.cfg.speculative_min_completed),
                    TaskKind::Reduce => job.mean_reduce_secs(self.cfg.speculative_min_completed),
                };
                let Some(mean) = mean else { continue };
                mean * self.cfg.speculative_factor
            };
            let max_copies = self.cfg.max_task_copies as usize;
            let tasks = match kind {
                TaskKind::Map => &job.maps,
                TaskKind::Reduce => &job.reduces,
            };
            // Walk running attempts oldest-first. An attempt qualifies its
            // task when it is older than the straggler threshold and not on
            // the heartbeating node; a task is a candidate when *all* its
            // running attempts qualify. Attempts younger than the threshold
            // are never reached (the walk breaks), so their tasks fall
            // short of the all-running-attempts-old bar exactly as in the
            // pre-index linear scan.
            let mut old_ok: BTreeMap<u32, usize> = BTreeMap::new();
            let mut on_node: HashSet<u32> = HashSet::new();
            for &(started, k, index, attempt) in &job.running_by_start {
                let young = !self.cfg.eager_copies
                    && now.saturating_since(started).as_secs_f64() <= threshold;
                if young {
                    break; // later entries started even more recently
                }
                if k != kind {
                    continue;
                }
                let a = &tasks[index as usize].attempts[attempt as usize];
                debug_assert_eq!(a.phase, AttemptPhase::Running);
                if a.node == node {
                    on_node.insert(index);
                } else {
                    *old_ok.entry(index).or_insert(0) += 1;
                }
            }
            let candidate = old_ok.iter().find_map(|(&index, &qualifying)| {
                let t = &tasks[index as usize];
                let running = t.running_attempts();
                (!t.done
                    && running >= 1
                    && running < max_copies
                    && !on_node.contains(&index)
                    && qualifying == running)
                    .then_some(index as usize)
            });
            let Some(index) = candidate else {
                self.jobs[jid.0 as usize].spec_last_scan = now;
                continue;
            };
            self.counters.speculative += 1;
            self.tracer.emit(|| {
                TraceEvent::new(Layer::MapReduce, "speculate")
                    .with("job", jid.0)
                    .with("kind", kind.as_str())
                    .with("task", index)
                    .with("node", node.0)
            });
            let task = TaskRef {
                job: jid,
                kind,
                index: index as u32,
            };
            let attempt = self.start_attempt(now, task, node);
            return Some(match kind {
                TaskKind::Map => {
                    let spec = &self.jobs[jid.0 as usize].spec;
                    let (block, input_bytes) = spec.input_blocks[index];
                    self.counters.remote += 1;
                    let a = Assignment::Map {
                        attempt,
                        block,
                        input_bytes,
                        cpu_secs: spec.map_cpu_secs,
                        output_bytes: spec.map_output_bytes,
                        locality: Locality::Remote,
                    };
                    self.sched
                        .on_assigned(jid.0, SlotKind::Map, node, Some(Locality::Remote), now);
                    a
                }
                TaskKind::Reduce => {
                    self.init_reduce_plan(attempt, topo);
                    self.sched
                        .on_assigned(jid.0, SlotKind::Reduce, node, None, now);
                    Assignment::Reduce { attempt }
                }
            });
        }
        None
    }

    // ------------------------------------------------------------------
    // Attempt completion / failure
    // ------------------------------------------------------------------

    /// Is the attempt still running (guards stale mediator events)?
    pub fn attempt_active(&self, att: AttemptRef) -> bool {
        let job = &self.jobs[att.task.job.0 as usize];
        if job.status != JobStatus::Running {
            return false;
        }
        job.task(att.task)
            .attempts
            .get(att.attempt as usize)
            .is_some_and(|a| a.phase == AttemptPhase::Running)
    }

    /// Reserve scratch space on `node` for `att`'s map output; `false`
    /// means the disk is full and the attempt must fail.
    pub fn reserve_map_scratch(&mut self, att: AttemptRef, node: NodeId) -> bool {
        let bytes = self.jobs[att.task.job.0 as usize].spec.map_output_bytes;
        let Some(t) = self.trackers.get_mut(&node) else {
            return false;
        };
        if !t.try_reserve_scratch(bytes) {
            return false;
        }
        *self.jobs[att.task.job.0 as usize]
            .scratch_by_node
            .entry(node)
            .or_insert(0) += bytes;
        true
    }

    /// A map attempt finished its spill: the task is complete.
    pub fn map_done(&mut self, now: SimTime, att: AttemptRef, topo: &Topology) -> MapDoneOutput {
        let mut out = MapDoneOutput::default();
        if !self.attempt_active(att) {
            return out;
        }
        let jid = att.task.job;
        let (node, dur) = {
            let job = &mut self.jobs[jid.0 as usize];
            let ts = job.task_mut(att.task);
            let a = &mut ts.attempts[att.attempt as usize];
            a.phase = AttemptPhase::Succeeded;
            let node = a.node;
            let started = a.started;
            let dur = now.saturating_since(a.started).as_secs_f64();
            ts.done = true;
            ts.completed_on = Some(node);
            job.note_attempt_stopped(att.task.kind, att.task.index, att.attempt, started);
            job.maps_done += 1;
            job.map_duration_stats.0 += dur;
            job.map_duration_stats.1 += 1;
            (node, dur)
        };
        self.note_running_delta(TaskKind::Map, -1);
        self.tracer.emit(|| {
            TraceEvent::new(Layer::MapReduce, "task_done")
                .with("job", jid.0)
                .with("kind", "map")
                .with("task", att.task.index)
                .with("attempt", att.attempt as u64)
                .with("node", node.0)
                .with("secs", dur)
        });
        self.trackers.get_mut(&node).map(|t| t.running.remove(&att));
        out.notes.extend(self.kill_siblings(att));
        // Announce the new output to running reduce attempts.
        let site = topo.site_of(node);
        let part = self.partition_bytes(jid);
        let job = &mut self.jobs[jid.0 as usize];
        for (ratt, plan) in job.reduce_plans.iter_mut() {
            plan.map_available(att.task.index, node, site, part);
            out.wake_reduces.push(*ratt);
        }
        out.wake_reduces.sort();
        // A re-executed map can be the last piece of an otherwise-finished
        // job (every reduce already completed before the original output
        // was lost).
        out.notes.extend(self.maybe_complete_job(now, jid));
        out
    }

    /// Close the job if everything is done. Idempotent.
    fn maybe_complete_job(&mut self, now: SimTime, jid: JobId) -> Vec<JtNote> {
        let job = &mut self.jobs[jid.0 as usize];
        if job.status != JobStatus::Running || !job.all_done() {
            return Vec::new();
        }
        if job.spec.reduces == 0 && job.spec.maps() > 0 {
            // Map-only jobs complete via try_complete_maponly (kept
            // separate so the mediator controls when it fires).
            return Vec::new();
        }
        job.status = JobStatus::Succeeded;
        job.finished = Some(now);
        self.counters.jobs_completed += 1;
        self.tracer.emit(|| {
            TraceEvent::new(Layer::MapReduce, "job_done")
                .with("job", jid.0)
                .with("ok", true)
        });
        self.retire_job(now, jid);
        vec![JtNote::JobCompleted { job: jid }]
    }

    /// Kill the other running attempts of `att`'s task.
    fn kill_siblings(&mut self, att: AttemptRef) -> Vec<JtNote> {
        let mut notes = Vec::new();
        let job = &mut self.jobs[att.task.job.0 as usize];
        let ts = job.task_mut(att.task);
        let mut to_kill: Vec<(u8, NodeId, SimTime)> = Vec::new();
        for (i, a) in ts.attempts.iter_mut().enumerate() {
            if i as u8 != att.attempt && a.phase == AttemptPhase::Running {
                a.phase = AttemptPhase::Killed;
                to_kill.push((i as u8, a.node, a.started));
            }
        }
        for (i, node, started) in to_kill {
            job.note_attempt_stopped(att.task.kind, att.task.index, i, started);
            let sibling = AttemptRef {
                task: att.task,
                attempt: i,
            };
            if let Some(t) = self.trackers.get_mut(&node) {
                t.running.remove(&sibling);
            }
            job.reduce_plans.remove(&sibling);
            self.sorting.remove(&sibling);
            notes.push(JtNote::KillAttempt {
                attempt: sibling,
                node,
            });
        }
        if !notes.is_empty() {
            self.note_running_delta(att.task.kind, -(notes.len() as isize));
        }
        notes
    }

    /// An attempt failed. Counts toward the task's failure budget and the
    /// per-job tracker blacklist; requeues the task unless a sibling still
    /// runs; fails the job at `max_attempts`.
    pub fn attempt_failed(
        &mut self,
        now: SimTime,
        att: AttemptRef,
        reason: FailReason,
    ) -> Vec<JtNote> {
        if !self.attempt_active(att) {
            return Vec::new();
        }
        self.counters.failures += 1;
        let node =
            self.jobs[att.task.job.0 as usize].task(att.task).attempts[att.attempt as usize].node;
        {
            let job = &mut self.jobs[att.task.job.0 as usize];
            *job.tracker_failures.entry(node).or_insert(0) += 1;
        }
        self.sched.on_attempt_failed(att.task.job.0, node, now);
        self.tracer.emit(|| {
            TraceEvent::new(Layer::MapReduce, "attempt_fail")
                .with("job", att.task.job.0)
                .with("kind", att.task.kind.as_str())
                .with("task", att.task.index)
                .with("attempt", att.attempt as u64)
                .with("node", node.0)
                .with("reason", reason.as_str())
        });
        self.abort_attempt(now, att, node, true)
    }

    /// Common path for failure (`blame = true`) and node-death requeue
    /// (`blame = false`). The tracker's slot is freed by the caller when
    /// the tracker is dead; otherwise here.
    fn abort_attempt(
        &mut self,
        now: SimTime,
        att: AttemptRef,
        node: NodeId,
        blame: bool,
    ) -> Vec<JtNote> {
        let mut notes = Vec::new();
        let jid = att.task.job;
        let max_attempts = self.cfg.max_attempts;
        let job = &mut self.jobs[jid.0 as usize];
        if job.status != JobStatus::Running {
            return notes;
        }
        let ts = job.task_mut(att.task);
        let Some(a) = ts.attempts.get_mut(att.attempt as usize) else {
            return notes;
        };
        if a.phase != AttemptPhase::Running {
            return notes;
        }
        a.phase = if blame {
            AttemptPhase::Failed
        } else {
            AttemptPhase::Killed
        };
        let started = a.started;
        if blame {
            ts.failures += 1;
        }
        let exhausted = blame && ts.failures >= max_attempts;
        let still_running = ts.running_attempts() > 0;
        job.note_attempt_stopped(att.task.kind, att.task.index, att.attempt, started);
        self.note_running_delta(att.task.kind, -1);
        if let Some(t) = self.trackers.get_mut(&node) {
            t.running.remove(&att);
        }
        // Drop any shuffle state of a failed reduce attempt.
        self.jobs[jid.0 as usize].reduce_plans.remove(&att);
        self.sorting.remove(&att);
        if exhausted {
            notes.extend(self.fail_job(now, jid));
            return notes;
        }
        if !still_running && !self.jobs[jid.0 as usize].task(att.task).done {
            if blame {
                // Retry backoff: don't immediately hand the task back out.
                let backoff = self.cfg.retry_backoff;
                self.jobs[jid.0 as usize]
                    .retry_after
                    .insert((att.task.kind, att.task.index), now + backoff);
            }
            match att.task.kind {
                TaskKind::Map => self.pending_map_insert(jid, att.task.index),
                TaskKind::Reduce => self.pending_reduce_insert(jid, att.task.index),
            }
        }
        notes
    }

    fn fail_job(&mut self, now: SimTime, jid: JobId) -> Vec<JtNote> {
        let mut notes = Vec::new();
        self.counters.jobs_failed += 1;
        self.tracer.emit(|| {
            TraceEvent::new(Layer::MapReduce, "job_done")
                .with("job", jid.0)
                .with("ok", false)
        });
        let job = &mut self.jobs[jid.0 as usize];
        job.status = JobStatus::Failed;
        job.finished = None;
        // Kill every running attempt of the job.
        let mut to_kill: Vec<(AttemptRef, NodeId)> = Vec::new();
        for (kind, tasks) in [
            (TaskKind::Map, &mut job.maps),
            (TaskKind::Reduce, &mut job.reduces),
        ] {
            for (i, ts) in tasks.iter_mut().enumerate() {
                for (ai, a) in ts.attempts.iter_mut().enumerate() {
                    if a.phase == AttemptPhase::Running {
                        a.phase = AttemptPhase::Killed;
                        to_kill.push((
                            AttemptRef {
                                task: TaskRef {
                                    job: jid,
                                    kind,
                                    index: i as u32,
                                },
                                attempt: ai as u8,
                            },
                            a.node,
                        ));
                    }
                }
            }
        }
        job.reduce_plans.clear();
        // Every running attempt was just killed: the running index and
        // counts empty wholesale.
        job.running_by_start.clear();
        let (rm, rr) = (job.running_maps, job.running_reduces);
        job.running_maps = 0;
        job.running_reduces = 0;
        self.agg.running_maps -= rm as usize;
        self.agg.running_reduces -= rr as usize;
        self.bump_epoch();
        for (att, node) in to_kill {
            if let Some(t) = self.trackers.get_mut(&node) {
                t.running.remove(&att);
            }
            self.sorting.remove(&att);
            notes.push(JtNote::KillAttempt { attempt: att, node });
        }
        self.retire_job(now, jid);
        notes.push(JtNote::JobFailed { job: jid });
        notes
    }

    /// Free the job's scratch space everywhere, drop it from the queue
    /// and tell the policy.
    fn retire_job(&mut self, now: SimTime, jid: JobId) {
        let scratch = std::mem::take(&mut self.jobs[jid.0 as usize].scratch_by_node);
        for (node, bytes) in scratch {
            if let Some(t) = self.trackers.get_mut(&node) {
                t.release_scratch(bytes);
            }
        }
        let was_queued = self.fifo.contains(&jid);
        self.fifo.retain(|&j| j != jid);
        if !self.rescue_attempts.is_empty() {
            self.rescue_attempts.retain(|a| a.task.job != jid);
        }
        if was_queued {
            // Whatever the job still contributed to the aggregate backlog
            // (failed jobs retire with tasks still pending) leaves with it.
            let (pm, pr, rm, rr) = {
                let job = &self.jobs[jid.0 as usize];
                (
                    job.pending_maps.len(),
                    job.pending_reduces.len(),
                    job.running_maps as usize,
                    job.running_reduces as usize,
                )
            };
            self.agg.active_jobs -= 1;
            self.agg.pending_maps -= pm;
            self.agg.pending_reduces -= pr;
            self.agg.running_maps -= rm;
            self.agg.running_reduces -= rr;
            let idx = &mut self.locality[jid.0 as usize];
            idx.pend_node.clear();
            idx.pend_rack.clear();
            idx.pend_site.clear();
            self.bump_epoch();
        }
        self.sched.on_job_removed(jid.0, now);
    }

    // ------------------------------------------------------------------
    // Reduce-side protocol
    // ------------------------------------------------------------------

    /// What should this reduce attempt do now? Called after assignment,
    /// after each fetch completes/fails, and when woken by new map output.
    pub fn reduce_next(&mut self, att: AttemptRef) -> ReduceStep {
        if !self.attempt_active(att) || self.sorting.contains(&att) {
            return ReduceStep::Wait;
        }
        let parallel = self.cfg.shuffle_parallel;
        let jid = att.task.job;
        let job = &mut self.jobs[jid.0 as usize];
        let all_maps_done = job.all_maps_done();
        let Some(plan) = job.reduce_plans.get_mut(&att) else {
            return ReduceStep::Wait;
        };
        let orders = plan.next_orders(parallel);
        if !orders.is_empty() {
            return ReduceStep::Fetch(orders);
        }
        if plan.complete() && all_maps_done {
            self.sorting.insert(att);
            let spec = &self.jobs[jid.0 as usize].spec;
            return ReduceStep::StartSort {
                cpu_secs: spec.reduce_cpu_secs,
                output_bytes: spec.reduce_output_bytes,
                replication: spec.output_replication,
            };
        }
        ReduceStep::Wait
    }

    /// A shuffle fetch finished.
    pub fn fetch_done(&mut self, att: AttemptRef, order: u64) {
        if let Some(plan) = self.jobs[att.task.job.0 as usize]
            .reduce_plans
            .get_mut(&att)
        {
            plan.fetch_done(order);
            self.tracer.emit(|| {
                TraceEvent::new(Layer::MapReduce, "fetch_done")
                    .with("job", att.task.job.0)
                    .with("task", att.task.index)
                    .with("attempt", att.attempt as u64)
                    .with("order", order)
            });
        }
    }

    /// A shuffle fetch failed (source died or its data is gone). The
    /// affected maps become sourceless; each accrues a fetch-failure
    /// strike, and past `fetch_fail_threshold` the map's output is
    /// declared lost and the map re-executed ("too many fetch failures" —
    /// this is what eventually evicts zombie-hosted outputs). Maps whose
    /// outputs still exist on live trackers are re-announced.
    pub fn fetch_failed(&mut self, att: AttemptRef, order: u64, topo: &Topology) {
        let jid = att.task.job;
        let part = self.partition_bytes(jid);
        let threshold = self.cfg.fetch_fail_threshold;
        let tracker_alive: HashSet<NodeId> = self
            .trackers
            .iter()
            .filter(|(_, t)| t.liveness == TrackerLiveness::Live)
            .map(|(&n, _)| n)
            .collect();
        let job = &mut self.jobs[jid.0 as usize];
        // Snapshot surviving outputs before borrowing the plan mutably.
        let sources: Vec<(u32, NodeId)> = job
            .maps
            .iter()
            .enumerate()
            .filter_map(|(i, t)| t.completed_on.filter(|_| t.done).map(|n| (i as u32, n)))
            .collect();
        let failed_maps = match job.reduce_plans.get_mut(&att) {
            Some(plan) => plan.fetch_failed(order),
            None => Vec::new(),
        };
        // Strike the failed maps; re-execute those past the threshold.
        let mut reexecute: Vec<u32> = Vec::new();
        for &m in &failed_maps {
            let strikes = job.map_fetch_failures.entry(m).or_insert(0);
            *strikes += 1;
            if *strikes >= threshold && job.maps[m as usize].done {
                reexecute.push(m);
            }
        }
        for m in &reexecute {
            let task = &mut job.maps[*m as usize];
            task.done = false;
            task.completed_on = None;
            job.maps_done -= 1;
            job.map_fetch_failures.remove(m);
            for plan in job.reduce_plans.values_mut() {
                plan.map_lost(*m);
            }
        }
        for &m in &reexecute {
            self.pending_map_insert(jid, m);
        }
        self.tracer.emit(|| {
            TraceEvent::new(Layer::MapReduce, "fetch_fail")
                .with("job", jid.0)
                .with("task", att.task.index)
                .with("attempt", att.attempt as u64)
                .with("order", order)
                .with("struck_maps", failed_maps.len())
                .with("reexecuted", reexecute.len())
        });
        // Re-announce maps whose outputs still exist (and were not just
        // declared lost).
        if let Some(plan) = self.jobs[jid.0 as usize].reduce_plans.get_mut(&att) {
            for (m, n) in sources {
                if tracker_alive.contains(&n) && !reexecute.contains(&m) {
                    plan.map_available(m, n, topo.site_of(n), part);
                }
            }
        }
    }

    /// The reduce attempt wrote its output to HDFS: the task is complete.
    pub fn reduce_done(&mut self, now: SimTime, att: AttemptRef) -> Vec<JtNote> {
        if !self.attempt_active(att) {
            return Vec::new();
        }
        let jid = att.task.job;
        let (node, dur) = {
            let job = &mut self.jobs[jid.0 as usize];
            let ts = job.task_mut(att.task);
            let a = &mut ts.attempts[att.attempt as usize];
            a.phase = AttemptPhase::Succeeded;
            let node = a.node;
            let started = a.started;
            let dur = now.saturating_since(a.started).as_secs_f64();
            ts.done = true;
            ts.completed_on = Some(node);
            job.note_attempt_stopped(att.task.kind, att.task.index, att.attempt, started);
            job.reduces_done += 1;
            job.reduce_duration_stats.0 += dur;
            job.reduce_duration_stats.1 += 1;
            (node, dur)
        };
        self.note_running_delta(TaskKind::Reduce, -1);
        self.tracer.emit(|| {
            TraceEvent::new(Layer::MapReduce, "task_done")
                .with("job", jid.0)
                .with("kind", "reduce")
                .with("task", att.task.index)
                .with("attempt", att.attempt as u64)
                .with("node", node.0)
                .with("secs", dur)
        });
        if let Some(t) = self.trackers.get_mut(&node) {
            t.running.remove(&att);
        }
        self.jobs[jid.0 as usize].reduce_plans.remove(&att);
        self.sorting.remove(&att);
        let mut notes = self.kill_siblings(att);
        notes.extend(self.maybe_complete_job(now, jid));
        notes
    }

    /// Map-only jobs: the mediator calls this after every map completes to
    /// close jobs with zero reduces.
    pub fn try_complete_maponly(&mut self, now: SimTime, jid: JobId) -> Vec<JtNote> {
        let job = &mut self.jobs[jid.0 as usize];
        if job.status == JobStatus::Running && job.spec.reduces == 0 && job.all_maps_done() {
            job.status = JobStatus::Succeeded;
            job.finished = Some(now);
            self.counters.jobs_completed += 1;
            self.tracer.emit(|| {
                TraceEvent::new(Layer::MapReduce, "job_done")
                    .with("job", jid.0)
                    .with("ok", true)
            });
            self.retire_job(now, jid);
            return vec![JtNote::JobCompleted { job: jid }];
        }
        Vec::new()
    }

    // ------------------------------------------------------------------
    // Master failover & recovery
    // ------------------------------------------------------------------

    /// Wholesale kill of every running attempt after a checkpoint
    /// restore (Hadoop-0.20 JobTracker-restart semantics): a freshly
    /// promoted master cannot trust any in-flight attempt it inherited
    /// from the image — the workers re-register with empty slates — so
    /// running attempts die without blame and their undone tasks requeue
    /// for immediate reassignment. Shuffle plans are dropped too; a
    /// reduce re-attempt rebuilds its plan through the ordinary
    /// `init_reduce_plan` path, which also requeues completed maps whose
    /// output hosts meanwhile died. Returns the attempt count killed.
    pub fn recover_kill_all(&mut self) -> usize {
        let mut killed = 0usize;
        for jid in self.fifo.clone() {
            let (requeue, rm, rr) = {
                let job = &mut self.jobs[jid.0 as usize];
                if job.status != JobStatus::Running {
                    continue;
                }
                let mut requeue: Vec<(TaskKind, u32)> = Vec::new();
                for (kind, tasks) in [
                    (TaskKind::Map, &mut job.maps),
                    (TaskKind::Reduce, &mut job.reduces),
                ] {
                    for (i, ts) in tasks.iter_mut().enumerate() {
                        let mut had_running = false;
                        for a in ts.attempts.iter_mut() {
                            if a.phase == AttemptPhase::Running {
                                a.phase = AttemptPhase::Killed;
                                had_running = true;
                                killed += 1;
                            }
                        }
                        if had_running && !ts.done {
                            requeue.push((kind, i as u32));
                        }
                    }
                }
                job.reduce_plans.clear();
                job.running_by_start.clear();
                let (rm, rr) = (job.running_maps, job.running_reduces);
                job.running_maps = 0;
                job.running_reduces = 0;
                // Retry bookkeeping died with the old master: the new one
                // hands everything back out as soon as slots heartbeat.
                job.retry_after.clear();
                (requeue, rm, rr)
            };
            self.agg.running_maps -= rm as usize;
            self.agg.running_reduces -= rr as usize;
            self.bump_epoch();
            for (kind, i) in requeue {
                match kind {
                    TaskKind::Map => self.pending_map_insert(jid, i),
                    TaskKind::Reduce => self.pending_reduce_insert(jid, i),
                }
            }
        }
        self.sorting.clear();
        for t in self.trackers.values_mut() {
            t.running.clear();
        }
        self.tracer.emit(|| {
            TraceEvent::new(Layer::MapReduce, "recover_kill_all").with("attempts", killed)
        });
        killed
    }

    /// Align the restored image with the crashed master's final ("ghost")
    /// state so queued simulation events cannot alias fresh work:
    ///
    /// * every task's attempt list is padded with `Killed` placeholder
    ///   attempts up to the ghost's per-task attempt count, so attempt
    ///   ordinals handed out after promotion have never been used before
    ///   (stale in-flight events for pre-crash attempts then land on
    ///   non-`Running` ordinals and are dropped);
    /// * the job table is padded to the ghost's length with terminal
    ///   *tombstone* jobs, so job ids minted during the lost edit window
    ///   stay out-of-queue placeholders and resubmitted jobs get fresh
    ///   ids beyond anything stale events can reference.
    pub fn recover_align_with_ghost(&mut self, ghost: &JobTracker, now: SimTime) {
        fn pad(ts: &mut crate::job::TaskState, ghost_ts: &crate::job::TaskState, now: SimTime) {
            while ts.attempts.len() < ghost_ts.attempts.len() {
                let g = &ghost_ts.attempts[ts.attempts.len()];
                ts.attempts.push(AttemptState {
                    node: g.node,
                    started: now,
                    phase: AttemptPhase::Killed,
                });
            }
        }
        let shared = self.jobs.len().min(ghost.jobs.len());
        for j in 0..shared {
            let gj = &ghost.jobs[j];
            let job = &mut self.jobs[j];
            for (ts, gts) in job.maps.iter_mut().zip(gj.maps.iter()) {
                pad(ts, gts, now);
            }
            for (ts, gts) in job.reduces.iter_mut().zip(gj.reduces.iter()) {
                pad(ts, gts, now);
            }
        }
        while self.jobs.len() < ghost.jobs.len() {
            let spec = JobSubmission {
                input_blocks: Vec::new(),
                split_locations: Vec::new(),
                reduces: 0,
                map_cpu_secs: 0.0,
                map_output_bytes: 0,
                reduce_cpu_secs: 0.0,
                reduce_output_bytes: 0,
                output_replication: 1,
            };
            let mut tomb = JobState::new(spec, now);
            tomb.status = JobStatus::Failed;
            self.jobs.push(tomb);
            self.locality.push(LocalityIndex::default());
        }
    }

    /// Force a job terminal after a failover: the client already saw it
    /// finish (the old master reported before crashing), so the new
    /// master must not run it again even though the restored image still
    /// has it `Running`. Counters and queue membership update exactly as
    /// if the job finished normally.
    pub fn recover_force_terminal(
        &mut self,
        now: SimTime,
        jid: JobId,
        finished: SimTime,
        ok: bool,
    ) {
        let job = &mut self.jobs[jid.0 as usize];
        if job.status != JobStatus::Running {
            return;
        }
        job.status = if ok {
            JobStatus::Succeeded
        } else {
            JobStatus::Failed
        };
        job.finished = ok.then_some(finished);
        if ok {
            self.counters.jobs_completed += 1;
        } else {
            self.counters.jobs_failed += 1;
        }
        self.tracer.emit(|| {
            TraceEvent::new(Layer::MapReduce, "recover_force_terminal")
                .with("job", jid.0)
                .with("ok", ok)
        });
        self.retire_job(now, jid);
    }

    /// Recompute per-tracker scratch accounting from the surviving jobs'
    /// ledgers after re-registration wiped every tracker record clean.
    /// Scratch charged to trackers the restored master no longer knows
    /// (or knows dead) is dropped from the job ledgers too — the space
    /// died with the node.
    pub fn recover_rebuild_scratch(&mut self) {
        for t in self.trackers.values_mut() {
            t.scratch_used = 0;
        }
        let fifo = self.fifo.clone();
        for &jid in &fifo {
            let trackers = &self.trackers;
            let job = &mut self.jobs[jid.0 as usize];
            job.scratch_by_node.retain(|n, _| {
                trackers
                    .get(n)
                    .is_some_and(|t| t.liveness != TrackerLiveness::Dead)
            });
        }
        let mut usage: Vec<(NodeId, u64)> = Vec::new();
        for &jid in &fifo {
            for (&n, &b) in &self.jobs[jid.0 as usize].scratch_by_node {
                usage.push((n, b));
            }
        }
        for (n, b) in usage {
            if let Some(t) = self.trackers.get_mut(&n) {
                t.scratch_used += b;
            }
        }
    }

    /// Deterministic serialization of the job/task ledger (the checkpoint
    /// counterpart of the namenode's fsimage): jobs in id order with
    /// full task/attempt detail, tracker records, queue and counters.
    /// Equal logical state produces byte-identical output.
    pub fn export_ledger(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        let _ = writeln!(
            s,
            "ledger v1 jobs={} trackers={} policy={}",
            self.jobs.len(),
            self.trackers.len(),
            self.sched.name()
        );
        for (j, job) in self.jobs.iter().enumerate() {
            let _ = writeln!(
                s,
                "job {j} status={:?} submitted={:?} finished={:?} maps_done={} reduces_done={} \
                 running={}/{} pending_maps={:?} pending_reduces={:?}",
                job.status,
                job.submitted,
                job.finished,
                job.maps_done,
                job.reduces_done,
                job.running_maps,
                job.running_reduces,
                job.pending_maps,
                job.pending_reduces
            );
            for (label, tasks) in [("map", &job.maps), ("reduce", &job.reduces)] {
                for (i, ts) in tasks.iter().enumerate() {
                    let attempts: Vec<String> = ts
                        .attempts
                        .iter()
                        .map(|a| format!("{}@{:?}:{:?}", a.node.0, a.started, a.phase))
                        .collect();
                    let _ = writeln!(
                        s,
                        "  {label} {i} done={} on={:?} failures={} attempts={attempts:?}",
                        ts.done,
                        ts.completed_on.map(|n| n.0),
                        ts.failures
                    );
                }
            }
            let mut plans: Vec<(AttemptRef, bool)> = job
                .reduce_plans
                .iter()
                .map(|(&a, p)| (a, p.complete()))
                .collect();
            plans.sort();
            let mut scratch: Vec<(u32, u64)> =
                job.scratch_by_node.iter().map(|(n, &b)| (n.0, b)).collect();
            scratch.sort();
            let mut retry: Vec<((TaskKind, u32), SimTime)> =
                job.retry_after.iter().map(|(&k, &t)| (k, t)).collect();
            retry.sort();
            let _ = writeln!(
                s,
                "  plans={plans:?} scratch={scratch:?} retry={retry:?} rbs={:?}",
                job.running_by_start
            );
        }
        for (n, t) in &self.trackers {
            let _ = writeln!(
                s,
                "tracker {} slots={}/{} live={:?} hb={:?} scratch={}/{} running={:?}",
                n.0,
                t.map_slots,
                t.reduce_slots,
                t.liveness,
                t.last_heartbeat,
                t.scratch_used,
                t.scratch_capacity,
                t.running
            );
        }
        let mut sorting: Vec<AttemptRef> = self.sorting.iter().copied().collect();
        sorting.sort();
        let _ = writeln!(s, "fifo={:?}", self.fifo);
        let _ = writeln!(s, "sorting={sorting:?}");
        let _ = writeln!(s, "counters={:?}", self.counters);
        s
    }

    /// Scratch usage of a tracker (disk-overflow reporting).
    pub fn tracker_scratch(&self, node: NodeId) -> Option<(u64, u64)> {
        self.trackers
            .get(&node)
            .map(|t| (t.scratch_used, t.scratch_capacity))
    }

    /// Immutable tracker view (tests).
    pub fn tracker(&self, node: NodeId) -> Option<&TrackerState> {
        self.trackers.get(&node)
    }

    /// Deterministic RNG access for mediator-level tie-breaks that should
    /// share the JobTracker's stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.rng
    }
}

impl hog_sim_core::Auditable for JobTracker {
    /// Cross-check tracker occupancy against the job table: slot and
    /// scratch usage must respect capacity, dead trackers must hold no
    /// attempts, and every attempt a tracker claims to run must exist in
    /// its job's state as `Running` on exactly that node.
    fn audit(&self) -> Vec<hog_sim_core::Violation> {
        use hog_sim_core::Violation;
        let mut out = Vec::new();
        for (&n, t) in &self.trackers {
            let maps = t.running_of(TaskKind::Map);
            let reduces = t.running_of(TaskKind::Reduce);
            if maps > t.map_slots as usize {
                out.push(Violation::new(
                    "mapreduce",
                    format!(
                        "tracker {} runs {maps} maps on {} map slots",
                        n.0, t.map_slots
                    ),
                ));
            }
            if reduces > t.reduce_slots as usize {
                out.push(Violation::new(
                    "mapreduce",
                    format!(
                        "tracker {} runs {reduces} reduces on {} reduce slots",
                        n.0, t.reduce_slots
                    ),
                ));
            }
            if t.scratch_used > t.scratch_capacity {
                out.push(Violation::new(
                    "mapreduce",
                    format!(
                        "tracker {} scratch overcommitted: {}/{} bytes",
                        n.0, t.scratch_used, t.scratch_capacity
                    ),
                ));
            }
            if t.liveness == TrackerLiveness::Dead && !t.running.is_empty() {
                out.push(Violation::new(
                    "mapreduce",
                    format!(
                        "dead tracker {} still holds {} running attempt(s)",
                        n.0,
                        t.running.len()
                    ),
                ));
            }
        }
        // The per-job running-attempt index must mirror the task tables:
        // every indexed entry is a live Running attempt, and the per-kind
        // counts match a full recount.
        for (&jid, job) in self
            .fifo
            .iter()
            .map(|jid| (jid, &self.jobs[jid.0 as usize]))
        {
            let mut maps = 0u32;
            let mut reduces = 0u32;
            for &(started, kind, index, attempt) in &job.running_by_start {
                let tasks = match kind {
                    TaskKind::Map => &job.maps,
                    TaskKind::Reduce => &job.reduces,
                };
                match tasks
                    .get(index as usize)
                    .and_then(|t| t.attempts.get(attempt as usize))
                {
                    Some(a) if a.phase == AttemptPhase::Running && a.started == started => {
                        match kind {
                            TaskKind::Map => maps += 1,
                            TaskKind::Reduce => reduces += 1,
                        }
                    }
                    _ => out.push(Violation::new(
                        "mapreduce",
                        format!(
                            "job {} running index holds stale {} task {index} attempt {attempt}",
                            jid.0,
                            kind.as_str()
                        ),
                    )),
                }
            }
            let actual_maps: u32 = job.maps.iter().map(|t| t.running_attempts() as u32).sum();
            let actual_reduces: u32 = job
                .reduces
                .iter()
                .map(|t| t.running_attempts() as u32)
                .sum();
            if (maps, reduces) != (actual_maps, actual_reduces)
                || (job.running_maps, job.running_reduces) != (actual_maps, actual_reduces)
            {
                out.push(Violation::new(
                    "mapreduce",
                    format!(
                        "job {} running index out of sync: indexed {maps}m/{reduces}r, counted {}m/{}r, tables {actual_maps}m/{actual_reduces}r",
                        jid.0, job.running_maps, job.running_reduces
                    ),
                ));
            }
        }
        // The silent suspect set and dead counter must mirror the
        // per-tracker liveness fields exactly.
        let silent_recount: BTreeSet<NodeId> = self
            .trackers
            .iter()
            .filter(|(_, t)| t.liveness == TrackerLiveness::Silent)
            .map(|(&n, _)| n)
            .collect();
        if silent_recount != self.silent {
            out.push(Violation::new(
                "mapreduce",
                format!(
                    "silent-tracker set drifted: cached {}, recounted {}",
                    self.silent.len(),
                    silent_recount.len()
                ),
            ));
        }
        let dead_recount = self
            .trackers
            .values()
            .filter(|t| t.liveness == TrackerLiveness::Dead)
            .count();
        if dead_recount != self.dead_trackers {
            out.push(Violation::new(
                "mapreduce",
                format!(
                    "dead-tracker count drifted: cached {}, recounted {dead_recount}",
                    self.dead_trackers
                ),
            ));
        }
        // The O(1) aggregate backlog must equal a full recount.
        let recount = self.recount_backlog();
        if recount != self.agg {
            out.push(Violation::new(
                "mapreduce",
                format!(
                    "aggregate backlog drifted: cached {:?}, recounted {recount:?}",
                    self.agg
                ),
            ));
        }
        // Each queued job's pending-locality index must match a rebuild
        // from its pending set: same members per node/rack/site, nothing
        // stale left behind.
        for &jid in &self.fifo {
            let job = &self.jobs[jid.0 as usize];
            if job.status != JobStatus::Running {
                continue;
            }
            let idx = &self.locality[jid.0 as usize];
            let mut node: HashMap<NodeId, BTreeSet<u32>> = HashMap::new();
            let mut rack: HashMap<RackId, BTreeSet<u32>> = HashMap::new();
            let mut site: HashMap<SiteId, BTreeSet<u32>> = HashMap::new();
            for &m in &job.pending_maps {
                for &(n, r, s) in &idx.locs[m as usize] {
                    node.entry(n).or_default().insert(m);
                    rack.entry(r).or_default().insert(m);
                    site.entry(s).or_default().insert(m);
                }
            }
            let nonempty = |m: &HashMap<NodeId, BTreeSet<u32>>| {
                m.iter()
                    .filter(|(_, s)| !s.is_empty())
                    .map(|(k, s)| (*k, s.clone()))
                    .collect::<HashMap<_, _>>()
            };
            let stale = nonempty(&idx.pend_node) != node
                || idx
                    .pend_rack
                    .iter()
                    .filter(|(_, s)| !s.is_empty())
                    .map(|(k, s)| (*k, s.clone()))
                    .collect::<HashMap<_, _>>()
                    != rack
                || idx
                    .pend_site
                    .iter()
                    .filter(|(_, s)| !s.is_empty())
                    .map(|(k, s)| (*k, s.clone()))
                    .collect::<HashMap<_, _>>()
                    != site;
            if stale {
                out.push(Violation::new(
                    "mapreduce",
                    format!(
                        "job {} pending-locality index out of sync with pending_maps",
                        jid.0
                    ),
                ));
            }
        }
        for (&n, t) in &self.trackers {
            for &att in &t.running {
                if !self.attempt_active(att) {
                    out.push(Violation::new(
                        "mapreduce",
                        format!("tracker {} holds inactive attempt {att:?}", n.0),
                    ));
                    continue;
                }
                let rec = &self.jobs[att.task.job.0 as usize].task(att.task).attempts
                    [att.attempt as usize];
                if rec.node != n {
                    out.push(Violation::new(
                        "mapreduce",
                        format!(
                            "attempt {att:?} recorded on node {} but held by tracker {}",
                            rec.node.0, n.0
                        ),
                    ));
                }
            }
        }
        out
    }
}
