//! TaskTracker state as held by the JobTracker.

use crate::job::TaskKind;
use crate::AttemptRef;
use hog_sim_core::SimTime;
use std::collections::BTreeSet;

/// Liveness of a tracker from the JobTracker's viewpoint (mirrors the
/// namenode's view of datanodes; HOG lowers both timeouts together).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrackerLiveness {
    /// Heartbeating.
    Live,
    /// Stopped heartbeating, timeout pending.
    Silent,
    /// Declared dead.
    Dead,
}

/// Per-tracker record.
#[derive(Clone, Debug)]
pub struct TrackerState {
    /// Concurrent map tasks this node may run (1 on HOG glideins; per
    /// Table III, 4 or 2 on the dedicated cluster).
    pub map_slots: u8,
    /// Concurrent reduce tasks (1 everywhere in the paper).
    pub reduce_slots: u8,
    /// Attempts currently running here.
    pub running: BTreeSet<AttemptRef>,
    /// Last heartbeat instant.
    pub last_heartbeat: SimTime,
    /// Liveness.
    pub liveness: TrackerLiveness,
    /// Scratch disk capacity for intermediate data.
    pub scratch_capacity: u64,
    /// Scratch bytes in use (map outputs of unfinished jobs).
    pub scratch_used: u64,
}

impl TrackerState {
    /// A fresh tracker.
    pub fn new(map_slots: u8, reduce_slots: u8, scratch: u64, now: SimTime) -> Self {
        TrackerState {
            map_slots,
            reduce_slots,
            running: BTreeSet::new(),
            last_heartbeat: now,
            liveness: TrackerLiveness::Live,
            scratch_capacity: scratch,
            scratch_used: 0,
        }
    }

    /// Running attempts of a kind.
    pub fn running_of(&self, kind: TaskKind) -> usize {
        self.running.iter().filter(|a| a.task.kind == kind).count()
    }

    /// Free map slots.
    pub fn free_map_slots(&self) -> usize {
        (self.map_slots as usize).saturating_sub(self.running_of(TaskKind::Map))
    }

    /// Free reduce slots.
    pub fn free_reduce_slots(&self) -> usize {
        (self.reduce_slots as usize).saturating_sub(self.running_of(TaskKind::Reduce))
    }

    /// Reserve scratch space for intermediate data; `false` = disk full
    /// (the §IV-D.2 failure).
    pub fn try_reserve_scratch(&mut self, bytes: u64) -> bool {
        if self.scratch_used + bytes > self.scratch_capacity {
            return false;
        }
        self.scratch_used += bytes;
        true
    }

    /// Release scratch space (job retired or attempt discarded).
    pub fn release_scratch(&mut self, bytes: u64) {
        self.scratch_used = self.scratch_used.saturating_sub(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::job::{JobId, TaskRef};

    fn att(kind: TaskKind, idx: u32) -> AttemptRef {
        AttemptRef {
            task: TaskRef {
                job: JobId(0),
                kind,
                index: idx,
            },
            attempt: 0,
        }
    }

    #[test]
    fn slot_accounting() {
        let mut t = TrackerState::new(4, 1, 1000, SimTime::ZERO);
        assert_eq!(t.free_map_slots(), 4);
        t.running.insert(att(TaskKind::Map, 0));
        t.running.insert(att(TaskKind::Map, 1));
        t.running.insert(att(TaskKind::Reduce, 0));
        assert_eq!(t.free_map_slots(), 2);
        assert_eq!(t.free_reduce_slots(), 0);
    }

    #[test]
    fn scratch_reservation() {
        let mut t = TrackerState::new(1, 1, 100, SimTime::ZERO);
        assert!(t.try_reserve_scratch(60));
        assert!(!t.try_reserve_scratch(41), "over capacity");
        assert!(t.try_reserve_scratch(40));
        t.release_scratch(60);
        assert_eq!(t.scratch_used, 40);
        t.release_scratch(1000); // saturates
        assert_eq!(t.scratch_used, 0);
    }
}
