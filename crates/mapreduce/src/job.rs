//! Job, task and attempt state.

use crate::shuffle::ReducePlan;
use crate::AttemptRef;
use hog_hdfs::BlockId;
use hog_net::NodeId;
use hog_sim_core::SimTime;
use std::collections::{BTreeSet, HashMap};

/// A MapReduce job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u32);

/// Map or reduce side.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TaskKind {
    /// A map task (one input block).
    Map,
    /// A reduce task (one partition).
    Reduce,
}

/// A task within a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskRef {
    /// Owning job.
    pub job: JobId,
    /// Map or reduce.
    pub kind: TaskKind,
    /// Index within its kind (map 0..M, reduce 0..R).
    pub index: u32,
}

/// Everything the JobTracker needs to run a job, computed by the driver
/// from the workload's loadgen parameters.
#[derive(Clone, Debug)]
pub struct JobSubmission {
    /// Input block per map task, with its byte size (block `i` feeds map
    /// `i`). HDFS replica locations at submit time provide the static
    /// split locality hints, exactly like Hadoop's `InputSplit`s.
    pub input_blocks: Vec<(BlockId, u64)>,
    /// Static locality hints: nodes believed to hold each input block at
    /// submission (parallel to `input_blocks`).
    pub split_locations: Vec<Vec<NodeId>>,
    /// Number of reduce tasks.
    pub reduces: u32,
    /// CPU seconds per map task.
    pub map_cpu_secs: f64,
    /// Intermediate bytes produced by each map task.
    pub map_output_bytes: u64,
    /// CPU seconds per reduce task (merge + reduce function).
    pub reduce_cpu_secs: f64,
    /// Final output bytes written by each reduce task.
    pub reduce_output_bytes: u64,
    /// Replication factor for the job's output files.
    pub output_replication: u16,
}

impl JobSubmission {
    /// Number of map tasks.
    pub fn maps(&self) -> u32 {
        self.input_blocks.len() as u32
    }
}

/// Lifecycle of one task attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AttemptPhase {
    /// Assigned, executing (map: read+compute+spill; reduce: shuffle etc.).
    Running,
    /// Finished successfully.
    Succeeded,
    /// Failed (node death, disk full, zombie node, lost block).
    Failed,
    /// Killed because a sibling attempt won.
    Killed,
}

/// One running/finished attempt.
#[derive(Clone, Debug)]
pub struct AttemptState {
    /// Where it runs.
    pub node: NodeId,
    /// When it was assigned.
    pub started: SimTime,
    /// Current phase.
    pub phase: AttemptPhase,
}

/// State of one task across its attempts.
#[derive(Clone, Debug, Default)]
pub struct TaskState {
    /// All attempts, indexed by attempt ordinal.
    pub attempts: Vec<AttemptState>,
    /// Completed?
    pub done: bool,
    /// For a completed map: where the winning attempt ran (shuffle source)
    /// and when it finished.
    pub completed_on: Option<NodeId>,
    /// Total failed attempts (drives job failure at `max_attempts`).
    pub failures: u8,
}

impl TaskState {
    /// Number of attempts currently running.
    pub fn running_attempts(&self) -> usize {
        self.attempts
            .iter()
            .filter(|a| a.phase == AttemptPhase::Running)
            .count()
    }
}

/// Job execution status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobStatus {
    /// Some tasks still pending/running.
    Running,
    /// All reduces (or all maps for map-only jobs) succeeded.
    Succeeded,
    /// A task exhausted its attempts.
    Failed,
}

/// Full state of one job inside the JobTracker.
#[derive(Clone)]
pub struct JobState {
    /// The submission that created it.
    pub spec: JobSubmission,
    /// Submission instant (response-time accounting).
    pub submitted: SimTime,
    /// Completion instant, when finished.
    pub finished: Option<SimTime>,
    /// Map task states.
    pub maps: Vec<TaskState>,
    /// Reduce task states.
    pub reduces: Vec<TaskState>,
    /// Per-reduce shuffle bookkeeping (indexed by reduce index; entries
    /// exist only while an attempt runs).
    pub reduce_plans: HashMap<AttemptRef, ReducePlan>,
    /// Pending map indices not yet (re)assigned. Ordered for deterministic
    /// pick order; the scheduler consults the locality index first.
    pub pending_maps: BTreeSet<u32>,
    /// Pending reduce indices.
    pub pending_reduces: BTreeSet<u32>,
    /// Completed map count (fast slowstart checks).
    pub maps_done: u32,
    /// Completed reduce count.
    pub reduces_done: u32,
    /// Status.
    pub status: JobStatus,
    /// Per-tracker failure counts for this job (blacklisting).
    pub tracker_failures: HashMap<NodeId, u8>,
    /// Shuffle-fetch failures per completed map ("too many fetch failures"
    /// re-executes the map).
    pub map_fetch_failures: HashMap<u32, u8>,
    /// Last unsuccessful speculation scan (rate-limits the scan so idle
    /// heartbeats stay cheap at 1000+ nodes).
    pub spec_last_scan: SimTime,
    /// Every running attempt, ordered by start instant — the speculation
    /// scan walks this oldest-first and stops at the first attempt too
    /// young to be a straggler, the same bucketed-queue trick the
    /// Namenode uses for under-replication. Keys are
    /// `(started, kind, task index, attempt ordinal)`.
    pub running_by_start: BTreeSet<(SimTime, TaskKind, u32, u8)>,
    /// Currently running map attempts (fair-share accounting).
    pub running_maps: u32,
    /// Currently running reduce attempts.
    pub running_reduces: u32,
    /// Earliest instant a failed task may be retried (retry backoff),
    /// keyed by (kind, index).
    pub retry_after: HashMap<(TaskKind, u32), SimTime>,
    /// Intermediate bytes this job holds on each node's scratch disk.
    pub scratch_by_node: HashMap<NodeId, u64>,
    /// Mean duration accounting for speculation: total seconds and count
    /// of completed maps.
    pub map_duration_stats: (f64, u32),
    /// Same for reduces.
    pub reduce_duration_stats: (f64, u32),
}

impl JobState {
    /// Fresh state from a submission.
    pub fn new(spec: JobSubmission, now: SimTime) -> Self {
        let m = spec.maps() as usize;
        let r = spec.reduces as usize;
        JobState {
            submitted: now,
            finished: None,
            maps: (0..m).map(|_| TaskState::default()).collect(),
            reduces: (0..r).map(|_| TaskState::default()).collect(),
            reduce_plans: HashMap::new(),
            pending_maps: (0..m as u32).collect::<BTreeSet<_>>(),
            pending_reduces: (0..r as u32).collect::<BTreeSet<_>>(),
            maps_done: 0,
            reduces_done: 0,
            status: JobStatus::Running,
            tracker_failures: HashMap::new(),
            map_fetch_failures: HashMap::new(),
            spec_last_scan: SimTime::ZERO,
            running_by_start: BTreeSet::new(),
            running_maps: 0,
            running_reduces: 0,
            retry_after: HashMap::new(),
            scratch_by_node: HashMap::new(),
            map_duration_stats: (0.0, 0),
            reduce_duration_stats: (0.0, 0),
            spec,
        }
    }

    /// Whether enough maps completed for reduces to start.
    pub fn slowstart_reached(&self, slowstart: f64) -> bool {
        if self.spec.maps() == 0 {
            return true;
        }
        self.maps_done as f64 >= slowstart * self.spec.maps() as f64
    }

    /// Whether every map has completed.
    pub fn all_maps_done(&self) -> bool {
        self.maps_done == self.spec.maps()
    }

    /// Whether the whole job is finished successfully.
    pub fn all_done(&self) -> bool {
        self.all_maps_done() && self.reduces_done == self.spec.reduces
    }

    /// The task state for a reference (panics on job mismatch upstream).
    pub fn task(&self, t: TaskRef) -> &TaskState {
        match t.kind {
            TaskKind::Map => &self.maps[t.index as usize],
            TaskKind::Reduce => &self.reduces[t.index as usize],
        }
    }

    /// Mutable task state.
    pub fn task_mut(&mut self, t: TaskRef) -> &mut TaskState {
        match t.kind {
            TaskKind::Map => &mut self.maps[t.index as usize],
            TaskKind::Reduce => &mut self.reduces[t.index as usize],
        }
    }

    /// Currently running attempts of one kind (kept incrementally; feeds
    /// the fair scheduler's load view).
    pub fn running_of(&self, kind: TaskKind) -> u32 {
        match kind {
            TaskKind::Map => self.running_maps,
            TaskKind::Reduce => self.running_reduces,
        }
    }

    /// Record an attempt entering `Running`: index it for the speculation
    /// scan and bump the per-kind running count.
    pub fn note_attempt_started(
        &mut self,
        kind: TaskKind,
        index: u32,
        attempt: u8,
        started: SimTime,
    ) {
        self.running_by_start
            .insert((started, kind, index, attempt));
        match kind {
            TaskKind::Map => self.running_maps += 1,
            TaskKind::Reduce => self.running_reduces += 1,
        }
    }

    /// Record an attempt leaving `Running` (succeeded, failed or killed).
    pub fn note_attempt_stopped(
        &mut self,
        kind: TaskKind,
        index: u32,
        attempt: u8,
        started: SimTime,
    ) {
        self.running_by_start
            .remove(&(started, kind, index, attempt));
        match kind {
            TaskKind::Map => self.running_maps = self.running_maps.saturating_sub(1),
            TaskKind::Reduce => self.running_reduces = self.running_reduces.saturating_sub(1),
        }
    }

    /// Is the tracker blacklisted for this job?
    pub fn blacklisted(&self, node: NodeId, threshold: u8) -> bool {
        self.tracker_failures
            .get(&node)
            .is_some_and(|&f| f >= threshold)
    }

    /// Whether a pending task is past its retry backoff.
    pub fn retry_eligible(&self, kind: TaskKind, index: u32, now: SimTime) -> bool {
        self.retry_after
            .get(&(kind, index))
            .is_none_or(|&t| t <= now)
    }

    /// Mean completed map duration in seconds (None below `min` samples).
    pub fn mean_map_secs(&self, min: u32) -> Option<f64> {
        let (sum, n) = self.map_duration_stats;
        (n >= min && n > 0).then(|| sum / n as f64)
    }

    /// Mean completed reduce duration in seconds.
    pub fn mean_reduce_secs(&self, min: u32) -> Option<f64> {
        let (sum, n) = self.reduce_duration_stats;
        (n >= min && n > 0).then(|| sum / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(maps: usize, reduces: u32) -> JobSubmission {
        JobSubmission {
            input_blocks: (0..maps).map(|i| (BlockId(i as u64), 64)).collect(),
            split_locations: vec![vec![]; maps],
            reduces,
            map_cpu_secs: 10.0,
            map_output_bytes: 32,
            reduce_cpu_secs: 5.0,
            reduce_output_bytes: 16,
            output_replication: 3,
        }
    }

    #[test]
    fn fresh_job_state() {
        let j = JobState::new(spec(10, 4), SimTime::from_secs(5));
        assert_eq!(j.pending_maps.len(), 10);
        assert_eq!(j.pending_reduces.len(), 4);
        assert_eq!(j.status, JobStatus::Running);
        assert!(!j.all_maps_done());
        assert!(!j.all_done());
    }

    #[test]
    fn slowstart_threshold() {
        let mut j = JobState::new(spec(100, 4), SimTime::ZERO);
        assert!(!j.slowstart_reached(0.05));
        j.maps_done = 5;
        assert!(j.slowstart_reached(0.05));
        // Map-only degenerate case.
        let j0 = JobState::new(spec(0, 0), SimTime::ZERO);
        assert!(j0.slowstart_reached(0.05));
    }

    #[test]
    fn duration_stats() {
        let mut j = JobState::new(spec(10, 2), SimTime::ZERO);
        assert_eq!(j.mean_map_secs(1), None);
        j.map_duration_stats = (30.0, 3);
        assert_eq!(j.mean_map_secs(3), Some(10.0));
        assert_eq!(j.mean_map_secs(4), None);
    }

    #[test]
    fn blacklisting() {
        let mut j = JobState::new(spec(1, 0), SimTime::ZERO);
        assert!(!j.blacklisted(NodeId(1), 3));
        j.tracker_failures.insert(NodeId(1), 3);
        assert!(j.blacklisted(NodeId(1), 3));
        assert!(!j.blacklisted(NodeId(1), 4));
    }
}
