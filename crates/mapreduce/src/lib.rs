//! Hadoop MapReduce 1.0 model.
//!
//! The computation half of the Hadoop cluster: a central **JobTracker**
//! and one **TaskTracker** per worker node, communicating by heartbeat.
//! What is modelled (because the paper's results depend on it):
//!
//! * **Policy-driven scheduling with locality levels** — on a tasktracker
//!   heartbeat the JobTracker hands out map tasks preferring *node-local*
//!   input, then *site-local* (HOG's site awareness applied to
//!   scheduling), then remote (§III-B.2). Job order, locality gating and
//!   node admission are delegated to a pluggable [`hog_sched::Scheduler`]
//!   policy selected by [`MrParams::sched`]; the default FIFO policy
//!   reproduces stock Hadoop exactly.
//! * **Speculative execution** — a task running ≥ 1/3 slower than the
//!   job's average gets a second attempt; at most two copies ever run
//!   (paper §IV-B; making this configurable for K > 2 is the paper's
//!   future work, implemented in `hog-core::multicopy`).
//! * **Shuffle** — each reduce fetches every map's partition; fetches are
//!   batched by source site and moved over the network model, which is
//!   where HOG's WAN penalty bites (§IV-D.2).
//! * **Intermediate-data disk accounting** — map output stays on the
//!   worker's scratch disk until the whole job finishes; workers run out
//!   of disk under reduce backlog, failing tasks (the §IV-D.2 disk
//!   overflow lesson).
//! * **Failure handling** — tasktracker death (30 s timeout like the
//!   namenode) reschedules running attempts *and re-runs completed maps
//!   whose outputs died with the node*; per-job tasktracker blacklisting
//!   after repeated failures; jobs fail after `max_attempts` per task.
//!
//! As with `hog-hdfs`, everything here is a synchronous state machine; the
//! mediator in `hog-core` owns time and bytes.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod config;
pub mod job;
pub mod jobtracker;
pub mod shuffle;
pub mod tracker;

pub use config::MrParams;
pub use hog_sched::SchedPolicy;
pub use job::{JobId, JobSubmission, TaskKind, TaskRef};
pub use jobtracker::{Assignment, Backlog, JobTracker, JtNote, ReduceStep};
pub use shuffle::FetchOrder;

/// One execution attempt of a task. `attempt` counts from 0; speculative
/// copies reuse the same task with a higher attempt number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AttemptRef {
    /// The task being attempted.
    pub task: TaskRef,
    /// Attempt ordinal.
    pub attempt: u8,
}
