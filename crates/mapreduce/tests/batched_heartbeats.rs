//! Property tests for the coalesced-heartbeat dispatch path.
//!
//! The batched master tick drains a same-instant run of heartbeats in one
//! dispatch, calling [`JobTracker::heartbeat_into`] with a single
//! assignment buffer reused across the whole run. These properties pin
//! the two ways that could diverge from the per-event path:
//!
//! * `coalesced_rounds_match_per_event` — over random interleavings of
//!   heartbeat rounds, map completions, tracker silences/deaths, late
//!   joins and time advances, a round delivered through the reused-buffer
//!   batch path yields exactly the per-node assignments of fresh
//!   per-event `heartbeat` calls, and leaves the tracker in an
//!   observably identical state (audit-clean, same backlog, same
//!   liveness census).
//! * `retry_backoff_gates_the_runnable_cursor` — the incremental
//!   locality index keeps per-job runnable candidate sets; a task thrown
//!   back into `pending` by a tracker death must not be served from the
//!   index before its retry backoff expires, and must be served after.

use hog_hdfs::BlockId;
use hog_mapreduce::tracker::TrackerLiveness;
use hog_mapreduce::jobtracker::FailReason;
use hog_mapreduce::{Assignment, AttemptRef, JobSubmission, JobTracker, MrParams};
use hog_net::{NodeId, SiteId, Topology};
use hog_sim_core::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

/// One step of the random schedule. A `Round` heartbeats every live
/// tracker at the same instant — the shape the engine's contiguous-pop
/// batching produces.
#[derive(Clone, Debug)]
enum Op {
    Round,
    FinishMap(usize),
    Silence(usize),
    AddTracker,
    Advance,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        Just(Op::Round),
        Just(Op::Round),
        (0usize..64).prop_map(Op::FinishMap),
        (0usize..64).prop_map(Op::Silence),
        Just(Op::AddTracker),
        Just(Op::Advance),
    ]
}

/// Whether this world dispatches rounds per-event (fresh `Vec` per
/// heartbeat) or batched (`heartbeat_into` reusing one buffer).
#[derive(Clone, Copy, PartialEq)]
enum Mode {
    PerEvent,
    Batched,
}

struct World {
    jt: JobTracker,
    topo: Topology,
    nodes: Vec<NodeId>,
    sites: Vec<SiteId>,
    running_maps: Vec<AttemptRef>,
    now: SimTime,
    mode: Mode,
    /// The batch path's persistent buffer (lives across rounds, exactly
    /// like the cluster's `assign_buf`).
    buf: Vec<Assignment>,
}

impl World {
    fn new(seed: u64, mode: Mode) -> Self {
        let mut topo = Topology::new();
        let mut sites = Vec::new();
        let mut nodes = Vec::new();
        for s in 0..3u16 {
            let site = topo.add_site(format!("S{s}"), format!("s{s}.edu"));
            sites.push(site);
            for _ in 0..4 {
                nodes.push(topo.add_node(site));
            }
        }
        let cfg = MrParams::hog().with_speculation(false);
        let mut jt = JobTracker::new(cfg, SimRng::seed_from_u64(seed));
        for &n in &nodes {
            jt.register_tracker(SimTime::ZERO, n, topo.site_of(n), 1, 1);
        }
        let mut w = World {
            jt,
            topo,
            nodes,
            sites,
            running_maps: Vec::new(),
            now: SimTime::from_secs(1),
            mode,
            buf: Vec::new(),
        };
        let mut rng = SimRng::seed_from_u64(seed ^ 0xbeef);
        for j in 0..3u64 {
            let maps = 3 + (rng.next_u64() % 6) as u32;
            let locs: Vec<Vec<NodeId>> = (0..maps)
                .map(|_| {
                    (0..1 + rng.next_u64() % 2)
                        .map(|_| w.nodes[(rng.next_u64() as usize) % w.nodes.len()])
                        .collect()
                })
                .collect();
            let spec = JobSubmission {
                input_blocks: (0..maps)
                    .map(|i| (BlockId(j * 100 + i as u64), 64))
                    .collect(),
                split_locations: locs,
                reduces: (rng.next_u64() % 3) as u32,
                map_cpu_secs: 10.0,
                map_output_bytes: 600,
                reduce_cpu_secs: 5.0,
                reduce_output_bytes: 300,
                output_replication: 2,
            };
            w.jt.submit_job(w.now, spec, &w.topo);
        }
        w
    }

    fn prune_dead(&mut self) {
        let jt = &self.jt;
        self.running_maps.retain(|att| {
            jt.attempt_active(*att)
                && jt
                    .job(att.task.job)
                    .task(att.task)
                    .attempts
                    .get(att.attempt as usize)
                    .is_some_and(|a| jt.tracker_live(a.node))
        });
    }

    /// One same-instant heartbeat round over every tracker, returning the
    /// per-node assignments in dispatch order.
    fn round(&mut self) -> Vec<(NodeId, Vec<Assignment>)> {
        let mut out = Vec::with_capacity(self.nodes.len());
        for i in 0..self.nodes.len() {
            let node = self.nodes[i];
            if self
                .jt
                .tracker(node)
                .is_some_and(|t| t.liveness == TrackerLiveness::Dead)
            {
                continue;
            }
            let assigns = match self.mode {
                Mode::PerEvent => self.jt.heartbeat(self.now, node, &self.topo),
                Mode::Batched => {
                    let mut buf = std::mem::take(&mut self.buf);
                    self.jt.heartbeat_into(self.now, node, &self.topo, &mut buf);
                    let assigns = buf.clone();
                    self.buf = buf;
                    assigns
                }
            };
            for a in &assigns {
                if let Assignment::Map { attempt, .. } = a {
                    self.running_maps.push(*attempt);
                }
            }
            out.push((node, assigns));
        }
        out
    }

    fn apply(&mut self, op: &Op) -> Option<Vec<(NodeId, Vec<Assignment>)>> {
        match op {
            Op::Round => return Some(self.round()),
            Op::FinishMap(i) => {
                self.prune_dead();
                if !self.running_maps.is_empty() {
                    let att = self.running_maps.swap_remove(i % self.running_maps.len());
                    let node = self.jt.job(att.task.job).task(att.task).attempts
                        [att.attempt as usize]
                        .node;
                    if self.jt.reserve_map_scratch(att, node) {
                        let _ = self.jt.map_done(self.now, att, &self.topo);
                    }
                }
            }
            Op::Silence(i) => {
                let node = self.nodes[i % self.nodes.len()];
                self.jt.tracker_silent(self.now, node);
            }
            Op::AddTracker => {
                let site = self.sites[self.nodes.len() % self.sites.len()];
                let n = self.topo.add_node(site);
                self.nodes.push(n);
                self.jt.register_tracker(self.now, n, site, 1, 1);
            }
            Op::Advance => {
                self.now += SimDuration::from_secs(10);
                let _ = self.jt.check_dead(self.now);
                self.prune_dead();
            }
        }
        None
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn coalesced_rounds_match_per_event(
        seed in 0u64..1_000_000,
        ops in proptest::collection::vec(op_strategy(), 1..50),
    ) {
        let mut per_event = World::new(seed, Mode::PerEvent);
        let mut batched = World::new(seed, Mode::Batched);
        for (step, op) in ops.iter().enumerate() {
            let a = per_event.apply(op);
            let b = batched.apply(op);
            prop_assert_eq!(
                &a, &b,
                "round {} diverged between per-event and batched dispatch",
                step
            );
        }
        // Observable state must agree too, not just the assignment log.
        prop_assert_eq!(per_event.jt.backlog(), batched.jt.backlog());
        prop_assert_eq!(per_event.jt.reported_live(), batched.jt.reported_live());
        prop_assert_eq!(per_event.jt.job_queue(), batched.jt.job_queue());
        for w in [&per_event, &batched] {
            let violations = hog_sim_core::Auditable::audit(&w.jt);
            prop_assert!(violations.is_empty(), "audit failed: {:?}", violations);
        }
    }

    /// A map thrown back to `pending` by a blamed failure is invisible
    /// to heartbeats until its retry backoff expires — the incremental
    /// locality index must not serve it early — and is assignable again
    /// the moment the backoff is over. (Node-death requeues carry no
    /// blame, hence no backoff; that path is exercised by the round
    /// test above.)
    #[test]
    fn retry_backoff_gates_the_runnable_cursor(
        seed in 0u64..1_000_000,
        probe_pct in 10u64..90,
    ) {
        let mut topo = Topology::new();
        let site = topo.add_site("S0".to_string(), "s0.edu".to_string());
        let worker = topo.add_node(site);
        let spare = topo.add_node(site);
        let cfg = MrParams::hog().with_speculation(false);
        let backoff = cfg.retry_backoff;
        let mut jt = JobTracker::new(cfg, SimRng::seed_from_u64(seed));
        jt.register_tracker(SimTime::ZERO, worker, site, 1, 1);
        jt.register_tracker(SimTime::ZERO, spare, site, 1, 1);
        // One single-map job whose only split replica is on `worker`.
        let spec = JobSubmission {
            input_blocks: vec![(BlockId(1), 64)],
            split_locations: vec![vec![worker]],
            reduces: 0,
            map_cpu_secs: 10.0,
            map_output_bytes: 600,
            reduce_cpu_secs: 5.0,
            reduce_output_bytes: 300,
            output_replication: 2,
        };
        jt.submit_job(SimTime::from_secs(1), spec, &topo);
        let t0 = SimTime::from_secs(2);
        let launched = jt.heartbeat(t0, worker, &topo);
        prop_assert_eq!(launched.len(), 1, "the map must launch on its replica node");
        let Assignment::Map { attempt, .. } = launched[0].clone() else {
            return Err(TestCaseError::fail("expected a map assignment"));
        };
        // Fail the attempt with blame: the task re-pends behind a retry
        // backoff stamped at the failure instant.
        let failed_at = SimTime::from_secs(3);
        let _ = jt.attempt_failed(failed_at, attempt, FailReason::ZombieNode);
        // Before the backoff expires the spare's heartbeats get nothing.
        let probe = failed_at
            + SimDuration::from_secs_f64(backoff.as_secs_f64() * probe_pct as f64 / 100.0);
        prop_assert!(probe < failed_at + backoff);
        let early = jt.heartbeat(probe, spare, &topo);
        prop_assert!(
            early.is_empty(),
            "task assigned {:?} before retry backoff expired",
            early
        );
        // At expiry the task is runnable again and goes to the spare.
        let late = jt.heartbeat(failed_at + backoff, spare, &topo);
        prop_assert_eq!(late.len(), 1, "task must be reassigned once backoff expires");
        match &late[0] {
            Assignment::Map { attempt, .. } => {
                prop_assert_eq!(attempt.task.index, 0);
            }
            other => prop_assert!(false, "expected a map assignment, got {:?}", other),
        }
        let violations = hog_sim_core::Auditable::audit(&jt);
        prop_assert!(violations.is_empty(), "audit failed: {:?}", violations);
    }
}
