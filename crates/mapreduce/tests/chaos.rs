//! Chaos property test: drive the JobTracker with random interleavings of
//! heartbeats, completions, failures and tracker deaths, and assert the
//! global invariants that the mediator relies on:
//!
//! * slot accounting never goes negative or exceeds capacity;
//! * every job eventually reaches a terminal state once chaos stops;
//! * `maps_done`/`reduces_done` never exceed task counts;
//! * no attempt is running on a dead tracker;
//! * a dead tracker can re-register (the partition-heal path) and the
//!   revived node picks up work again without corrupting accounting;
//! * the runtime invariant auditor ([`hog_sim_core::Auditable`]) stays
//!   clean across every interleaving.

use hog_hdfs::BlockId;
use hog_mapreduce::job::JobStatus;
use hog_mapreduce::jobtracker::FailReason;
use hog_mapreduce::{Assignment, AttemptRef, JobSubmission, JobTracker, MrParams, ReduceStep, TaskKind};
use hog_net::{NodeId, Topology};
use hog_sim_core::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Chaos {
    /// Succeed a random running map.
    FinishMap(usize),
    /// Fail a random running attempt.
    FailAttempt(usize),
    /// Progress a random running reduce (fetches or sort completion).
    DriveReduce(usize),
    /// Silence a random tracker, then declare deaths later.
    KillTracker(usize),
    /// Re-register a dead tracker (the cluster does this when a network
    /// partition heals and the node reports back in).
    ReviveTracker(usize),
    /// Heartbeat everyone (assign work).
    HeartbeatAll,
}

fn chaos_strategy() -> impl Strategy<Value = Chaos> {
    prop_oneof![
        (0usize..32).prop_map(Chaos::FinishMap),
        (0usize..32).prop_map(Chaos::FailAttempt),
        (0usize..32).prop_map(Chaos::DriveReduce),
        (0usize..32).prop_map(Chaos::KillTracker),
        (0usize..32).prop_map(Chaos::ReviveTracker),
        Just(Chaos::HeartbeatAll),
    ]
}

struct World {
    jt: JobTracker,
    topo: Topology,
    nodes: Vec<NodeId>,
    dead: Vec<NodeId>,
    running: Vec<AttemptRef>,
    now: SimTime,
}

impl World {
    fn new(seed: u64) -> Self {
        let mut topo = Topology::new();
        let mut nodes = Vec::new();
        for s in 0..3 {
            let site = topo.add_site(format!("S{s}"), format!("s{s}.edu"));
            for _ in 0..4 {
                nodes.push(topo.add_node(site));
            }
        }
        let mut cfg = MrParams::hog();
        cfg.retry_backoff = SimDuration::from_secs(1);
        cfg.max_attempts = 200; // chaos shouldn't kill jobs; hangs are the bug
        cfg.blacklist_threshold = 200;
        let mut jt = JobTracker::new(cfg, SimRng::seed_from_u64(seed));
        for &n in &nodes {
            jt.register_tracker(SimTime::ZERO, n, topo.site_of(n), 1, 1);
        }
        World {
            jt,
            topo,
            nodes,
            dead: Vec::new(),
            running: Vec::new(),
            now: SimTime::ZERO,
        }
    }

    fn submit(&mut self, maps: u32, reduces: u32) {
        let locs: Vec<Vec<NodeId>> = (0..maps)
            .map(|i| vec![self.nodes[i as usize % self.nodes.len()]])
            .collect();
        let spec = JobSubmission {
            input_blocks: (0..maps).map(|i| (BlockId(i as u64), 64)).collect(),
            split_locations: locs,
            reduces,
            map_cpu_secs: 1.0,
            map_output_bytes: 10,
            reduce_cpu_secs: 1.0,
            reduce_output_bytes: 10,
            output_replication: 1,
        };
        self.jt.submit_job(self.now, spec, &self.topo);
    }

    fn tick(&mut self) {
        self.now += SimDuration::from_secs(3);
    }

    fn heartbeat_all(&mut self) {
        for &n in &self.nodes.clone() {
            if self.dead.contains(&n) {
                continue;
            }
            for a in self.jt.heartbeat(self.now, n, &self.topo) {
                self.running.push(a.attempt());
                if let Assignment::Map { attempt, .. } = a {
                    // Scratch is effectively unbounded here.
                    let node = self.attempt_node(attempt);
                    let _ = self.jt.reserve_map_scratch(attempt, node);
                }
            }
        }
        self.running.retain(|&a| self.jt.attempt_active(a));
    }

    fn attempt_node(&self, a: AttemptRef) -> NodeId {
        self.jt.job(a.task.job).task(a.task).attempts[a.attempt as usize].node
    }

    fn check_invariants(&self) {
        for &n in &self.nodes {
            let t = self.jt.tracker(n).expect("registered");
            assert!(t.running_of(TaskKind::Map) <= t.map_slots as usize);
            assert!(t.running_of(TaskKind::Reduce) <= t.reduce_slots as usize);
        }
        for jid in 0..self.jt.job_count() {
            let j = self.jt.job(hog_mapreduce::JobId(jid as u32));
            assert!(j.maps_done <= j.spec.maps());
            assert!(j.reduces_done <= j.spec.reduces);
        }
        // The same auditor the chaos subsystem runs on every master tick:
        // slot bounds, scratch bounds, dead-tracker emptiness, and
        // attempt/bookkeeping agreement.
        let violations = hog_sim_core::Auditable::audit(&self.jt);
        assert!(violations.is_empty(), "auditor: {violations:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn jobtracker_survives_chaos(
        seed in 0u64..1000,
        ops in proptest::collection::vec(chaos_strategy(), 10..120),
    ) {
        let mut w = World::new(seed);
        w.submit(6, 2);
        w.submit(4, 1);
        w.tick();
        w.heartbeat_all();
        for op in ops {
            w.tick();
            match op {
                Chaos::HeartbeatAll => w.heartbeat_all(),
                Chaos::FinishMap(i) => {
                    let maps: Vec<AttemptRef> = w
                        .running
                        .iter()
                        .copied()
                        .filter(|a| a.task.kind == TaskKind::Map && w.jt.attempt_active(*a))
                        .collect();
                    if !maps.is_empty() {
                        let a = maps[i % maps.len()];
                        let out = w.jt.map_done(w.now, a, &w.topo);
                        for r in out.wake_reduces {
                            drive(&mut w.jt, r, w.now);
                        }
                        w.jt.try_complete_maponly(w.now, a.task.job);
                    }
                }
                Chaos::FailAttempt(i) => {
                    let act: Vec<AttemptRef> = w
                        .running
                        .iter()
                        .copied()
                        .filter(|a| w.jt.attempt_active(*a))
                        .collect();
                    if !act.is_empty() {
                        let a = act[i % act.len()];
                        w.jt.attempt_failed(w.now, a, FailReason::DiskFull);
                    }
                }
                Chaos::DriveReduce(i) => {
                    let reds: Vec<AttemptRef> = w
                        .running
                        .iter()
                        .copied()
                        .filter(|a| a.task.kind == TaskKind::Reduce && w.jt.attempt_active(*a))
                        .collect();
                    if !reds.is_empty() {
                        let a = reds[i % reds.len()];
                        drive(&mut w.jt, a, w.now);
                    }
                }
                Chaos::KillTracker(i) => {
                    let live: Vec<NodeId> = w
                        .nodes
                        .iter()
                        .copied()
                        .filter(|n| !w.dead.contains(n))
                        .collect();
                    if live.len() > 4 {
                        let victim = live[i % live.len()];
                        w.jt.tracker_silent(w.now, victim);
                        w.dead.push(victim);
                    }
                }
                Chaos::ReviveTracker(i) => {
                    if !w.dead.is_empty() {
                        let back = w.dead.remove(i % w.dead.len());
                        // A fresh registration wipes the dead record and
                        // restores the node's slots, exactly like a
                        // healed partition member reporting back in.
                        w.jt.register_tracker(w.now, back, w.topo.site_of(back), 1, 1);
                        assert!(w.jt.tracker_live(back), "revived tracker must be live");
                        assert!(
                            w.jt.tracker(back).unwrap().running.is_empty(),
                            "revived tracker must come back empty"
                        );
                    }
                }
            }
            w.now += SimDuration::from_secs(40); // past dead timeout
            w.jt.check_dead(w.now);
            w.check_invariants();
        }
        // Chaos over: drain the system — with surviving trackers and no
        // further injected failures, every job must finish.
        for _ in 0..600 {
            if w.jt.incomplete_jobs() == 0 {
                break;
            }
            w.tick();
            w.now += SimDuration::from_secs(5);
            w.heartbeat_all();
            let maps: Vec<AttemptRef> = w
                .running
                .iter()
                .copied()
                .filter(|a| a.task.kind == TaskKind::Map && w.jt.attempt_active(*a))
                .collect();
            for a in maps {
                let out = w.jt.map_done(w.now, a, &w.topo);
                for r in out.wake_reduces {
                    drive(&mut w.jt, r, w.now);
                }
                w.jt.try_complete_maponly(w.now, a.task.job);
            }
            let reds: Vec<AttemptRef> = w
                .running
                .iter()
                .copied()
                .filter(|a| a.task.kind == TaskKind::Reduce && w.jt.attempt_active(*a))
                .collect();
            for a in reds {
                drive(&mut w.jt, a, w.now);
            }
            w.check_invariants();
        }
        prop_assert_eq!(w.jt.incomplete_jobs(), 0, "jobs hung after chaos");
        for jid in 0..w.jt.job_count() {
            let j = w.jt.job(hog_mapreduce::JobId(jid as u32));
            prop_assert_eq!(j.status, JobStatus::Succeeded);
        }
    }
}

/// Pump a reduce attempt: complete any fetches instantly; finish the sort.
fn drive(jt: &mut JobTracker, att: AttemptRef, now: SimTime) {
    loop {
        match jt.reduce_next(att) {
            ReduceStep::Fetch(orders) => {
                for (id, _) in orders {
                    jt.fetch_done(att, id);
                }
            }
            ReduceStep::StartSort { .. } => {
                jt.reduce_done(now, att);
                return;
            }
            ReduceStep::Wait => return,
        }
    }
}
