//! Scenario tests driving the JobTracker the way the mediator does, but
//! with instantaneous task phases (no network/disk timing).

use hog_hdfs::BlockId;
use hog_mapreduce::job::JobStatus;
use hog_mapreduce::jobtracker::{FailReason, Locality};
use hog_mapreduce::{Assignment, AttemptRef, JobId, JobSubmission, JobTracker, JtNote, MrParams, ReduceStep, TaskKind};
use hog_net::{NodeId, Topology};
use hog_sim_core::{SimDuration, SimRng, SimTime};

struct Mini {
    jt: JobTracker,
    topo: Topology,
    nodes: Vec<NodeId>,
}

impl Mini {
    fn new(sites: u16, per_site: u32, cfg: MrParams) -> Self {
        let mut topo = Topology::new();
        let mut nodes = Vec::new();
        for s in 0..sites {
            let site = topo.add_site(format!("S{s}"), format!("s{s}.edu"));
            for _ in 0..per_site {
                nodes.push(topo.add_node(site));
            }
        }
        let mut jt = JobTracker::new(cfg, SimRng::seed_from_u64(42));
        for &n in &nodes {
            jt.register_tracker(SimTime::ZERO, n, topo.site_of(n), 1, 1);
        }
        Mini { jt, topo, nodes }
    }

    fn submit(&mut self, now: SimTime, maps: u32, reduces: u32) -> JobId {
        // Block i "lives" on node i % n — static split locations.
        let locs: Vec<Vec<NodeId>> = (0..maps)
            .map(|i| vec![self.nodes[i as usize % self.nodes.len()]])
            .collect();
        let spec = JobSubmission {
            input_blocks: (0..maps).map(|i| (BlockId(i as u64), 64)).collect(),
            split_locations: locs,
            reduces,
            map_cpu_secs: 10.0,
            map_output_bytes: 1000,
            reduce_cpu_secs: 5.0,
            reduce_output_bytes: 500,
            output_replication: 3,
        };
        self.jt.submit_job(now, spec, &self.topo)
    }

    /// Heartbeat every node once at `now`, collecting assignments.
    fn heartbeat_all(&mut self, now: SimTime) -> Vec<Assignment> {
        let mut out = Vec::new();
        for &n in &self.nodes.clone() {
            out.extend(self.jt.heartbeat(now, n, &self.topo));
        }
        out
    }

    /// Complete all map assignments instantly, then drive every reduce to
    /// completion. Returns completion notes.
    fn run_to_completion(&mut self, mut now: SimTime) -> Vec<JtNote> {
        let mut notes = Vec::new();
        let mut reduce_attempts: Vec<AttemptRef> = Vec::new();
        for _round in 0..200 {
            now += SimDuration::from_secs(3);
            let assignments = self.heartbeat_all(now);
            let mut done_any = !assignments.is_empty();
            for a in assignments {
                match a {
                    Assignment::Map { attempt, .. } => {
                        let node = self
                            .jt
                            .job(attempt.task.job)
                            .task(attempt.task)
                            .attempts[attempt.attempt as usize]
                            .node;
                        assert!(self.jt.reserve_map_scratch(attempt, node));
                        let out = self.jt.map_done(now, attempt, &self.topo);
                        notes.extend(out.notes);
                        for r in out.wake_reduces {
                            if !reduce_attempts.contains(&r) {
                                reduce_attempts.push(r);
                            }
                        }
                        notes.extend(self.jt.try_complete_maponly(now, attempt.task.job));
                    }
                    Assignment::Reduce { attempt } => {
                        reduce_attempts.push(attempt);
                    }
                }
            }
            // Drive reduces.
            let mut progressed = true;
            while progressed {
                progressed = false;
                for &att in &reduce_attempts.clone() {
                    match self.jt.reduce_next(att) {
                        ReduceStep::Fetch(orders) => {
                            for (id, _) in orders {
                                self.jt.fetch_done(att, id);
                            }
                            progressed = true;
                            done_any = true;
                        }
                        ReduceStep::StartSort { .. } => {
                            notes.extend(self.jt.reduce_done(now, att));
                            progressed = true;
                            done_any = true;
                        }
                        ReduceStep::Wait => {}
                    }
                }
            }
            if self.jt.incomplete_jobs() == 0 {
                break;
            }
            let _ = done_any;
        }
        notes
    }
}

#[test]
fn node_local_assignment_preferred() {
    let mut m = Mini::new(2, 3, MrParams::hog());
    m.submit(SimTime::ZERO, 6, 0);
    // Each node heartbeats: with blocks spread round-robin, every node
    // should get its local map.
    let assignments = m.heartbeat_all(SimTime::from_secs(3));
    assert_eq!(assignments.len(), 6);
    for a in &assignments {
        match a {
            Assignment::Map { locality, .. } => assert_eq!(*locality, Locality::NodeLocal),
            _ => panic!("expected map"),
        }
    }
    let c = m.jt.counters();
    assert_eq!(c.node_local, 6);
    assert_eq!(c.remote, 0);
}

#[test]
fn locality_degrades_to_site_then_remote() {
    let mut m = Mini::new(2, 2, MrParams::hog());
    // 1 map whose split lives on node 0 (site 0).
    let job = {
        let spec = JobSubmission {
            input_blocks: vec![(BlockId(0), 64)],
            split_locations: vec![vec![m.nodes[0]]],
            reduces: 0,
            map_cpu_secs: 1.0,
            map_output_bytes: 10,
            reduce_cpu_secs: 1.0,
            reduce_output_bytes: 10,
            output_replication: 1,
        };
        m.jt.submit_job(SimTime::ZERO, spec, &m.topo)
    };
    // Node 1 (same site as 0) heartbeats first: site-local.
    let a = m.jt.heartbeat(SimTime::from_secs(3), m.nodes[1], &m.topo);
    assert_eq!(a.len(), 1);
    match &a[0] {
        Assignment::Map { locality, .. } => assert_eq!(*locality, Locality::SiteLocal),
        _ => panic!(),
    }
    let _ = job;
    // Submit another 1-map job local to node 0; node 3 (other site) gets
    // it remotely.
    let spec = JobSubmission {
        input_blocks: vec![(BlockId(1), 64)],
        split_locations: vec![vec![m.nodes[0]]],
        reduces: 0,
        map_cpu_secs: 1.0,
        map_output_bytes: 10,
        reduce_cpu_secs: 1.0,
        reduce_output_bytes: 10,
        output_replication: 1,
    };
    m.jt.submit_job(SimTime::ZERO, spec, &m.topo);
    let a = m.jt.heartbeat(SimTime::from_secs(3), m.nodes[3], &m.topo);
    match &a[0] {
        Assignment::Map { locality, .. } => assert_eq!(*locality, Locality::Remote),
        _ => panic!(),
    }
}

#[test]
fn fifo_order_across_jobs() {
    let mut m = Mini::new(1, 1, MrParams::hog());
    let j1 = m.submit(SimTime::ZERO, 2, 0);
    let j2 = m.submit(SimTime::from_secs(1), 2, 0);
    // The single slot serves j1 first.
    let a = m.jt.heartbeat(SimTime::from_secs(3), m.nodes[0], &m.topo);
    assert_eq!(a.len(), 1);
    assert_eq!(a[0].attempt().task.job, j1);
    let _ = j2;
}

#[test]
fn slowstart_gates_reduces() {
    let mut cfg = MrParams::hog();
    cfg.reduce_slowstart = 0.5;
    let mut m = Mini::new(1, 4, cfg);
    m.submit(SimTime::ZERO, 4, 2);
    let assignments = m.heartbeat_all(SimTime::from_secs(3));
    // All four map slots busy; no reduce yet (0% maps done).
    assert!(assignments.iter().all(|a| matches!(a, Assignment::Map { .. })));
    // Finish 2 maps (50%): reduces may start.
    for a in assignments.iter().take(2) {
        let att = a.attempt();
        m.jt.map_done(SimTime::from_secs(10), att, &m.topo);
    }
    let more = m.heartbeat_all(SimTime::from_secs(12));
    assert!(
        more.iter().any(|a| matches!(a, Assignment::Reduce { .. })),
        "slowstart reached, reduces should schedule"
    );
}

#[test]
fn full_job_lifecycle_completes() {
    let mut m = Mini::new(2, 3, MrParams::hog());
    let j = m.submit(SimTime::ZERO, 6, 3);
    let notes = m.run_to_completion(SimTime::ZERO);
    assert!(notes.contains(&JtNote::JobCompleted { job: j }));
    assert_eq!(m.jt.job(j).status, JobStatus::Succeeded);
    assert!(m.jt.response_time(j).is_some());
    assert_eq!(m.jt.incomplete_jobs(), 0);
    // Scratch space freed everywhere after completion.
    for &n in &m.nodes {
        assert_eq!(m.jt.tracker_scratch(n).unwrap().0, 0);
    }
}

#[test]
fn map_only_job_completes() {
    let mut m = Mini::new(1, 2, MrParams::hog());
    let j = m.submit(SimTime::ZERO, 4, 0);
    let notes = m.run_to_completion(SimTime::ZERO);
    assert!(notes.contains(&JtNote::JobCompleted { job: j }));
}

#[test]
fn workload_of_many_jobs_all_complete() {
    let mut m = Mini::new(2, 5, MrParams::hog());
    let jobs: Vec<JobId> = (0..8)
        .map(|i| m.submit(SimTime::from_secs(i), 5, 2))
        .collect();
    let notes = m.run_to_completion(SimTime::ZERO);
    for j in jobs {
        assert!(
            notes.contains(&JtNote::JobCompleted { job: j }),
            "job {j:?} did not complete"
        );
    }
}

#[test]
fn failed_attempt_is_retried() {
    let mut cfg = MrParams::hog();
    cfg.retry_backoff = SimDuration::ZERO;
    let mut m = Mini::new(1, 2, cfg);
    let j = m.submit(SimTime::ZERO, 1, 0);
    let a = m.heartbeat_all(SimTime::from_secs(3));
    let att = a[0].attempt();
    m.jt.attempt_failed(SimTime::from_secs(5), att, FailReason::DiskFull);
    assert_eq!(m.jt.counters().failures, 1);
    // Task is pending again; another heartbeat reassigns (attempt 1).
    let a = m.heartbeat_all(SimTime::from_secs(6));
    assert_eq!(a.len(), 1);
    assert_eq!(a[0].attempt().attempt, 1);
    let _ = j;
}

#[test]
fn max_attempts_fails_the_job() {
    let mut cfg = MrParams::hog();
    cfg.max_attempts = 2;
    cfg.retry_backoff = SimDuration::ZERO;
    cfg.blacklist_threshold = 10; // keep both nodes usable
    let mut m = Mini::new(1, 2, cfg);
    let j = m.submit(SimTime::ZERO, 1, 1);
    for round in 0..2 {
        let a = m.heartbeat_all(SimTime::from_secs(3 * (round + 1)));
        let map_att = a
            .iter()
            .map(|x| x.attempt())
            .find(|x| x.task.kind == TaskKind::Map)
            .unwrap();
        let notes =
            m.jt.attempt_failed(SimTime::from_secs(3 * (round + 1) + 1), map_att, FailReason::LostBlock);
        if round == 1 {
            assert!(notes.contains(&JtNote::JobFailed { job: j }));
        }
    }
    assert_eq!(m.jt.job(j).status, JobStatus::Failed);
    assert_eq!(m.jt.counters().jobs_failed, 1);
    assert_eq!(m.jt.incomplete_jobs(), 0);
}

#[test]
fn blacklisted_tracker_gets_no_tasks_of_that_job() {
    let mut cfg = MrParams::hog();
    cfg.blacklist_threshold = 1;
    cfg.retry_backoff = SimDuration::ZERO;
    let mut m = Mini::new(1, 2, cfg);
    m.submit(SimTime::ZERO, 3, 0);
    let a = m.jt.heartbeat(SimTime::from_secs(3), m.nodes[0], &m.topo);
    let att = a[0].attempt();
    m.jt.attempt_failed(SimTime::from_secs(4), att, FailReason::ZombieNode);
    // Node 0 is now blacklisted for this job.
    let a = m.jt.heartbeat(SimTime::from_secs(6), m.nodes[0], &m.topo);
    assert!(a.is_empty(), "blacklisted node must not get job tasks");
    // Node 1 still gets work.
    let a = m.jt.heartbeat(SimTime::from_secs(6), m.nodes[1], &m.topo);
    assert!(!a.is_empty());
}

#[test]
fn tracker_death_requeues_running_and_reruns_lost_maps() {
    let mut m = Mini::new(1, 3, MrParams::hog());
    m.submit(SimTime::ZERO, 3, 1);
    let assignments = m.heartbeat_all(SimTime::from_secs(3));
    // Complete the map on node 0; leave others running.
    let att0 = assignments
        .iter()
        .map(|a| a.attempt())
        .find(|a| {
            a.task.kind == TaskKind::Map
                && m.jt.job(a.task.job).task(a.task).attempts[a.attempt as usize].node
                    == m.nodes[0]
        })
        .unwrap();
    m.jt.map_done(SimTime::from_secs(10), att0, &m.topo);
    let done_before = m.jt.job(att0.task.job).maps_done;
    assert_eq!(done_before, 1);
    // Node 0 dies: its completed map output is lost; job has reduces, so
    // the map must re-run.
    m.jt.tracker_silent(SimTime::from_secs(12), m.nodes[0]);
    let (dead, _) = m.jt.check_dead(SimTime::from_secs(50));
    assert_eq!(dead, vec![m.nodes[0]]);
    assert_eq!(m.jt.job(att0.task.job).maps_done, 0, "lost output re-runs");
    assert!(m
        .jt
        .job(att0.task.job)
        .pending_maps
        .contains(&att0.task.index));
    assert_eq!(m.jt.reported_live(), 2);
}

#[test]
fn speculation_launches_second_copy_and_winner_kills_loser() {
    let mut cfg = MrParams::hog();
    cfg.speculative_min_completed = 1;
    let mut m = Mini::new(1, 3, cfg);
    m.submit(SimTime::ZERO, 3, 0);
    // Assign one map per node.
    let assignments = m.heartbeat_all(SimTime::from_secs(3));
    assert_eq!(assignments.len(), 3);
    // Two maps finish fast (mean ~7 s); the third straggles.
    let atts: Vec<AttemptRef> = assignments.iter().map(|a| a.attempt()).collect();
    m.jt.map_done(SimTime::from_secs(10), atts[0], &m.topo);
    m.jt.map_done(SimTime::from_secs(10), atts[1], &m.topo);
    // Much later, an idle node heartbeats: straggler (elapsed 97 s > 1.33
    // × 7 s) gets a speculative copy.
    let a = m.jt.heartbeat(SimTime::from_secs(100), m.nodes[0], &m.topo);
    assert_eq!(a.len(), 1, "speculative attempt expected");
    let spec_att = a[0].attempt();
    assert_eq!(spec_att.task, atts[2].task);
    assert_eq!(spec_att.attempt, 1);
    assert_eq!(m.jt.counters().speculative, 1);
    // The speculative copy wins; the original is killed.
    let out = m.jt.map_done(SimTime::from_secs(110), spec_att, &m.topo);
    assert!(out.notes.iter().any(|n| matches!(
        n,
        JtNote::KillAttempt { attempt, .. } if *attempt == atts[2]
    )));
    assert!(!m.jt.attempt_active(atts[2]));
}

#[test]
fn speculation_disabled_means_no_second_copies() {
    let mut m = Mini::new(1, 3, MrParams::hog().with_speculation(false));
    m.submit(SimTime::ZERO, 3, 0);
    let assignments = m.heartbeat_all(SimTime::from_secs(3));
    let atts: Vec<AttemptRef> = assignments.iter().map(|a| a.attempt()).collect();
    m.jt.map_done(SimTime::from_secs(10), atts[0], &m.topo);
    m.jt.map_done(SimTime::from_secs(10), atts[1], &m.topo);
    let a = m.jt.heartbeat(SimTime::from_secs(1000), m.nodes[0], &m.topo);
    assert!(a.is_empty());
    assert_eq!(m.jt.counters().speculative, 0);
}

#[test]
fn scratch_exhaustion_detected() {
    let cfg = MrParams::hog().with_scratch(1500); // fits one 1000-byte output
    let mut m = Mini::new(1, 1, cfg);
    m.submit(SimTime::ZERO, 2, 1);
    let a1 = m.jt.heartbeat(SimTime::from_secs(3), m.nodes[0], &m.topo);
    let att1 = a1
        .iter()
        .map(|a| a.attempt())
        .find(|a| a.task.kind == TaskKind::Map)
        .unwrap();
    assert!(m.jt.reserve_map_scratch(att1, m.nodes[0]));
    m.jt.map_done(SimTime::from_secs(5), att1, &m.topo);
    let a2 = m.jt.heartbeat(SimTime::from_secs(6), m.nodes[0], &m.topo);
    let att2 = a2
        .iter()
        .map(|a| a.attempt())
        .find(|a| a.task.kind == TaskKind::Map)
        .unwrap();
    assert!(
        !m.jt.reserve_map_scratch(att2, m.nodes[0]),
        "second map output must not fit"
    );
}

#[test]
fn reduce_shuffle_protocol_reaches_sort_exactly_once() {
    let mut m = Mini::new(2, 2, MrParams::hog());
    m.submit(SimTime::ZERO, 2, 1);
    let assignments = m.heartbeat_all(SimTime::from_secs(3));
    let maps: Vec<AttemptRef> = assignments
        .iter()
        .map(|a| a.attempt())
        .filter(|a| a.task.kind == TaskKind::Map)
        .collect();
    let reduce = assignments
        .iter()
        .map(|a| a.attempt())
        .find(|a| a.task.kind == TaskKind::Reduce);
    // Slowstart 0.05 but 0 maps done: reduce may or may not be assigned
    // yet. Complete the maps first.
    for &att in &maps {
        m.jt.map_done(SimTime::from_secs(10), att, &m.topo);
    }
    let reduce = reduce.unwrap_or_else(|| {
        m.heartbeat_all(SimTime::from_secs(12))
            .iter()
            .map(|a| a.attempt())
            .find(|a| a.task.kind == TaskKind::Reduce)
            .expect("reduce assigned after maps done")
    });
    // Fetch until sort.
    let mut sorted = 0;
    for _ in 0..10 {
        match m.jt.reduce_next(reduce) {
            ReduceStep::Fetch(orders) => {
                for (id, order) in orders {
                    assert!(!order.maps.is_empty());
                    assert!(order.bytes > 0);
                    m.jt.fetch_done(reduce, id);
                }
            }
            ReduceStep::StartSort {
                cpu_secs,
                output_bytes,
                replication,
            } => {
                assert_eq!(cpu_secs, 5.0);
                assert_eq!(output_bytes, 500);
                assert_eq!(replication, 3);
                sorted += 1;
            }
            ReduceStep::Wait => break,
        }
    }
    assert_eq!(sorted, 1, "StartSort must be issued exactly once");
}

#[test]
fn deterministic_replay() {
    let run = || {
        let mut m = Mini::new(2, 4, MrParams::hog());
        for i in 0..5 {
            m.submit(SimTime::from_secs(i), 4, 2);
        }
        let notes = m.run_to_completion(SimTime::ZERO);
        format!("{notes:?}")
    };
    assert_eq!(run(), run());
}

#[test]
fn too_many_fetch_failures_reexecute_the_map() {
    let mut m = Mini::new(2, 2, MrParams::hog());
    m.submit(SimTime::ZERO, 2, 1);
    // Complete the maps.
    let assignments = m.heartbeat_all(SimTime::from_secs(3));
    let maps: Vec<AttemptRef> = assignments
        .iter()
        .map(|a| a.attempt())
        .filter(|a| a.task.kind == TaskKind::Map)
        .collect();
    for &att in &maps {
        m.jt.map_done(SimTime::from_secs(10), att, &m.topo);
    }
    let reduce = assignments
        .iter()
        .map(|a| a.attempt())
        .find(|a| a.task.kind == TaskKind::Reduce)
        .unwrap_or_else(|| {
            m.heartbeat_all(SimTime::from_secs(12))
                .iter()
                .map(|a| a.attempt())
                .find(|a| a.task.kind == TaskKind::Reduce)
                .expect("reduce after maps")
        });
    let job = reduce.task.job;
    assert_eq!(m.jt.job(job).maps_done, 2);
    // Fail the same fetch three times (threshold): covered maps re-run.
    for round in 0..3 {
        let step = m.jt.reduce_next(reduce);
        let ReduceStep::Fetch(orders) = step else {
            panic!("expected fetch in round {round}, got {step:?}")
        };
        for (id, _) in orders {
            m.jt.fetch_failed(reduce, id, &m.topo);
        }
    }
    assert!(
        m.jt.job(job).maps_done < 2,
        "strikes should have re-pended at least one map"
    );
    assert!(!m.jt.job(job).pending_maps.is_empty());
}

#[test]
fn eager_copies_run_k_way() {
    let cfg = MrParams::hog().with_task_copies(3, true);
    let mut m = Mini::new(1, 4, cfg);
    m.submit(SimTime::ZERO, 1, 0); // one map, four idle slots
    let a = m.heartbeat_all(SimTime::from_secs(3));
    // The single map should be running on 3 distinct nodes (primary + 2
    // eager copies), not 4 (cap at K=3).
    assert_eq!(a.len(), 3, "got {a:?}");
    let nodes: std::collections::BTreeSet<_> = a
        .iter()
        .map(|x| {
            let att = x.attempt();
            m.jt.job(att.task.job).task(att.task).attempts[att.attempt as usize].node
        })
        .collect();
    assert_eq!(nodes.len(), 3, "copies must land on distinct nodes");
    // First finisher wins; the other two are killed.
    let winner = a[1].attempt();
    let out = m.jt.map_done(SimTime::from_secs(5), winner, &m.topo);
    let kills = out
        .notes
        .iter()
        .filter(|n| matches!(n, JtNote::KillAttempt { .. }))
        .count();
    assert_eq!(kills, 2);
}

#[test]
fn single_copy_config_disables_speculation() {
    let cfg = MrParams::hog().with_task_copies(1, false);
    let mut m = Mini::new(1, 3, cfg);
    m.submit(SimTime::ZERO, 1, 0);
    let a = m.heartbeat_all(SimTime::from_secs(3));
    assert_eq!(a.len(), 1, "K=1 means exactly one attempt");
    let more = m.heartbeat_all(SimTime::from_secs(1000));
    assert!(more.is_empty());
}
