//! Oracle property test for the scheduler extraction: the FIFO policy
//! behind the [`hog_sched::Scheduler`] trait must make exactly the
//! decisions the pre-refactor inline JobTracker logic made.
//!
//! The oracle below is an independent reimplementation of the old
//! assignment rules — submission-order job walk, node → site → remote
//! locality ladder over the static split hints, blacklist / slowstart /
//! retry-backoff eligibility — evaluated against the *live* JobTracker
//! state immediately before each heartbeat. The property drives random
//! interleavings of heartbeats, map completions, tracker deaths and
//! late-joining trackers, and asserts every map/reduce assignment (job,
//! task index and achieved locality) matches the oracle's prediction.
//!
//! Speculation is disabled here so the oracle stays a pure function of
//! queue state; the speculation path is covered bit-for-bit by the scale
//! benchmark's outcome fingerprints and by `tests/chaos.rs`.

use hog_hdfs::BlockId;
use hog_mapreduce::job::JobStatus;
use hog_mapreduce::jobtracker::Locality;
use hog_mapreduce::tracker::TrackerLiveness;
use hog_mapreduce::{Assignment, AttemptRef, JobId, JobSubmission, JobTracker, MrParams, TaskKind};
use hog_net::{NodeId, SiteId, Topology};
use hog_sim_core::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

/// One step of the random schedule.
#[derive(Clone, Debug)]
enum Op {
    /// Heartbeat one tracker (oracle-checked assignment).
    Heartbeat(usize),
    /// Complete a random running map attempt.
    FinishMap(usize),
    /// Silence one tracker; it dies once the 30 s timeout elapses.
    Silence(usize),
    /// A late glidein joins the pool.
    AddTracker,
    /// Advance time 10 s and sweep for dead trackers.
    Advance,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0usize..64).prop_map(Op::Heartbeat),
        (0usize..64).prop_map(Op::Heartbeat),
        (0usize..64).prop_map(Op::FinishMap),
        (0usize..64).prop_map(Op::Silence),
        Just(Op::AddTracker),
        Just(Op::Advance),
    ]
}

/// What the pre-refactor FIFO logic would assign to a free map slot.
fn oracle_map(
    jt: &JobTracker,
    topo: &Topology,
    node: NodeId,
    now: SimTime,
) -> Option<(JobId, u32, Locality)> {
    let site = topo.site_of(node);
    let threshold = jt.config().blacklist_threshold;
    for &jid in jt.job_queue() {
        let job = jt.job(jid);
        if job.status != JobStatus::Running
            || job.blacklisted(node, threshold)
            || job.pending_maps.is_empty()
        {
            continue;
        }
        let elig = |m: u32| {
            job.pending_maps.contains(&m) && job.retry_eligible(TaskKind::Map, m, now)
        };
        let replica_at = |m: u32, pred: &dyn Fn(NodeId) -> bool| {
            job.spec.split_locations[m as usize].iter().any(|&n| pred(n))
        };
        let mut pick = None;
        for m in 0..job.spec.maps() {
            if elig(m) && replica_at(m, &|n| n == node) {
                pick = Some((m, Locality::NodeLocal));
                break;
            }
        }
        if pick.is_none() {
            for m in 0..job.spec.maps() {
                if elig(m) && replica_at(m, &|n| topo.site_of(n) == site) {
                    pick = Some((m, Locality::SiteLocal));
                    break;
                }
            }
        }
        if pick.is_none() {
            pick = job
                .pending_maps
                .iter()
                .find(|&&m| job.retry_eligible(TaskKind::Map, m, now))
                .map(|&m| (m, Locality::Remote));
        }
        if let Some((m, locality)) = pick {
            return Some((jid, m, locality));
        }
    }
    None
}

/// What the pre-refactor FIFO logic would assign to a free reduce slot.
fn oracle_reduce(jt: &JobTracker, node: NodeId, now: SimTime) -> Option<(JobId, u32)> {
    let cfg = jt.config();
    for &jid in jt.job_queue() {
        let job = jt.job(jid);
        if job.status != JobStatus::Running
            || job.blacklisted(node, cfg.blacklist_threshold)
            || !job.slowstart_reached(cfg.reduce_slowstart)
            || job.pending_reduces.is_empty()
        {
            continue;
        }
        if let Some(&r) = job
            .pending_reduces
            .iter()
            .find(|&&r| job.retry_eligible(TaskKind::Reduce, r, now))
        {
            return Some((jid, r));
        }
    }
    None
}

struct World {
    jt: JobTracker,
    topo: Topology,
    nodes: Vec<NodeId>,
    sites: Vec<SiteId>,
    running_maps: Vec<AttemptRef>,
    now: SimTime,
}

impl World {
    fn new(seed: u64) -> Self {
        let mut topo = Topology::new();
        let mut sites = Vec::new();
        let mut nodes = Vec::new();
        for s in 0..3u16 {
            let site = topo.add_site(format!("S{s}"), format!("s{s}.edu"));
            sites.push(site);
            for _ in 0..3 {
                nodes.push(topo.add_node(site));
            }
        }
        // Speculation off: the oracle is a pure function of queue state.
        let cfg = MrParams::hog().with_speculation(false);
        let mut jt = JobTracker::new(cfg, SimRng::seed_from_u64(seed));
        for &n in &nodes {
            jt.register_tracker(SimTime::ZERO, n, topo.site_of(n), 1, 1);
        }
        let mut w = World {
            jt,
            topo,
            nodes,
            sites,
            running_maps: Vec::new(),
            now: SimTime::from_secs(1),
        };
        // Three overlapping jobs with pseudo-random split locations.
        let mut rng = SimRng::seed_from_u64(seed ^ 0x5eed);
        for j in 0..3 {
            let maps = 3 + (rng.next_u64() % 6) as u32;
            let reduces = (rng.next_u64() % 3) as u32;
            let locs: Vec<Vec<NodeId>> = (0..maps)
                .map(|_| {
                    (0..1 + rng.next_u64() % 2)
                        .map(|_| w.nodes[(rng.next_u64() as usize) % w.nodes.len()])
                        .collect()
                })
                .collect();
            let spec = JobSubmission {
                input_blocks: (0..maps).map(|i| (BlockId(j * 100 + i as u64), 64)).collect(),
                split_locations: locs,
                reduces,
                map_cpu_secs: 10.0,
                map_output_bytes: 600,
                reduce_cpu_secs: 5.0,
                reduce_output_bytes: 300,
                output_replication: 2,
            };
            w.jt.submit_job(w.now, spec, &w.topo);
        }
        w
    }

    /// Drop bookkeeping for attempts on trackers the JT no longer trusts.
    fn prune_dead(&mut self) {
        let jt = &self.jt;
        self.running_maps.retain(|att| {
            jt.attempt_active(*att)
                && jt
                    .job(att.task.job)
                    .task(att.task)
                    .attempts
                    .get(att.attempt as usize)
                    .is_some_and(|a| jt.tracker_live(a.node))
        });
    }

    fn apply(&mut self, op: &Op) -> Result<(), TestCaseError> {
        match op {
            Op::Heartbeat(i) => {
                let node = self.nodes[i % self.nodes.len()];
                let (liveness, free_m, free_r) = {
                    let t = self.jt.tracker(node).expect("registered tracker");
                    (t.liveness, t.free_map_slots(), t.free_reduce_slots())
                };
                // A tracker already declared Dead gets nothing (it must
                // re-register); Silent ones revive on heartbeat and are
                // assignable like live ones.
                if liveness == TrackerLiveness::Dead {
                    let out = self.jt.heartbeat(self.now, node, &self.topo);
                    prop_assert!(out.is_empty(), "dead tracker got work: {:?}", out);
                    return Ok(());
                }
                // Predict before the call: the map pick cannot change the
                // reduce pick (different pending sets; FIFO order is
                // submission order either way).
                let want_map = (free_m > 0)
                    .then(|| oracle_map(&self.jt, &self.topo, node, self.now))
                    .flatten();
                let want_reduce =
                    (free_r > 0).then(|| oracle_reduce(&self.jt, node, self.now)).flatten();
                let out = self.jt.heartbeat(self.now, node, &self.topo);
                let mut got_map = None;
                let mut got_reduce = None;
                for a in &out {
                    match a {
                        Assignment::Map { attempt, locality, .. } => {
                            got_map = Some((attempt.task.job, attempt.task.index, *locality));
                            self.running_maps.push(*attempt);
                        }
                        Assignment::Reduce { attempt } => {
                            got_reduce = Some((attempt.task.job, attempt.task.index));
                        }
                    }
                }
                prop_assert_eq!(
                    got_map,
                    want_map,
                    "map assignment diverged from oracle on node {:?} at {:?}",
                    node,
                    self.now
                );
                prop_assert_eq!(
                    got_reduce,
                    want_reduce,
                    "reduce assignment diverged from oracle on node {:?} at {:?}",
                    node,
                    self.now
                );
            }
            Op::FinishMap(i) => {
                self.prune_dead();
                if self.running_maps.is_empty() {
                    return Ok(());
                }
                let att = self.running_maps.swap_remove(i % self.running_maps.len());
                let node = self.jt.job(att.task.job).task(att.task).attempts
                    [att.attempt as usize]
                    .node;
                prop_assert!(self.jt.reserve_map_scratch(att, node));
                let _ = self.jt.map_done(self.now, att, &self.topo);
            }
            Op::Silence(i) => {
                let node = self.nodes[i % self.nodes.len()];
                self.jt.tracker_silent(self.now, node);
            }
            Op::AddTracker => {
                let site = self.sites[self.nodes.len() % self.sites.len()];
                let n = self.topo.add_node(site);
                self.nodes.push(n);
                self.jt.register_tracker(self.now, n, site, 1, 1);
            }
            Op::Advance => {
                self.now += SimDuration::from_secs(10);
                let _ = self.jt.check_dead(self.now);
                self.prune_dead();
            }
        }
        Ok(())
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// 128 random interleavings: FIFO through the Scheduler trait is
    /// decision-identical to the pre-refactor inline logic.
    #[test]
    fn fifo_matches_pre_refactor_oracle(
        seed in 0u64..1_000_000,
        ops in proptest::collection::vec(op_strategy(), 1..60),
    ) {
        let mut w = World::new(seed);
        for op in &ops {
            w.apply(op)?;
        }
        // The JobTracker's own invariants must hold at the end too.
        let violations = hog_sim_core::Auditable::audit(&w.jt);
        prop_assert!(violations.is_empty(), "audit failed: {:?}", violations);
    }
}
