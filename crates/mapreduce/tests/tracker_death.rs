//! Tracker-death handling under every scheduler policy.
//!
//! Regression for the `declare_tracker_dead` borrow bug: the path used
//! to re-fetch the tracker with successive `get_mut(..).unwrap()` calls
//! around the `sched.on_tracker_dead` policy hook, so any hook (or
//! future refactor) that removed the entry mid-path would panic instead
//! of taking an error path. The restructured code takes one scoped
//! borrow; these tests drive a death through each policy and check the
//! requeue semantics that borrow must preserve.

use hog_hdfs::BlockId;
use hog_mapreduce::{Assignment, JobSubmission, JobTracker, MrParams, SchedPolicy};
use hog_net::{NodeId, Topology};
use hog_sim_core::{SimDuration, SimRng, SimTime};

fn cluster(policy: SchedPolicy, nodes_n: usize) -> (JobTracker, Topology, Vec<NodeId>) {
    let mut topo = Topology::new();
    let site = topo.add_site("S0".to_string(), "s0.edu".to_string());
    let nodes: Vec<NodeId> = (0..nodes_n).map(|_| topo.add_node(site)).collect();
    let cfg = MrParams {
        sched: policy,
        ..MrParams::hog()
    };
    let mut jt = JobTracker::new(cfg, SimRng::seed_from_u64(7));
    for &n in &nodes {
        jt.register_tracker(SimTime::ZERO, n, site, 1, 1);
    }
    (jt, topo, nodes)
}

fn submit(jt: &mut JobTracker, topo: &Topology, nodes: &[NodeId], maps: u32, reduces: u32) {
    let locs: Vec<Vec<NodeId>> = (0..maps)
        .map(|i| vec![nodes[i as usize % nodes.len()]])
        .collect();
    let spec = JobSubmission {
        input_blocks: (0..maps).map(|i| (BlockId(i as u64), 64)).collect(),
        split_locations: locs,
        reduces,
        map_cpu_secs: 10.0,
        map_output_bytes: 1000,
        reduce_cpu_secs: 5.0,
        reduce_output_bytes: 500,
        output_replication: 3,
    };
    jt.submit_job(SimTime::from_secs(1), spec, topo);
}

fn drive_death(policy: SchedPolicy) {
    let (mut jt, topo, nodes) = cluster(policy, 4);
    submit(&mut jt, &topo, &nodes, 8, 2);

    // Assign work everywhere.
    let t1 = SimTime::from_secs(2);
    let mut assigned = 0usize;
    for &n in &nodes {
        for a in jt.heartbeat(t1, n, &topo) {
            if let Assignment::Map { attempt, .. } = a {
                assert!(jt.reserve_map_scratch(attempt, n));
            }
            assigned += 1;
        }
    }
    assert!(assigned > 0, "{policy:?}: no work assigned");
    let before = jt.backlog();
    assert!(before.running_maps > 0);

    // Node 0 goes silent; past the 30 s timeout it must be declared
    // dead without panicking, whatever state the policy hook keeps.
    let victim = nodes[0];
    jt.tracker_silent(SimTime::from_secs(5), victim);
    let t_dead = SimTime::from_secs(5) + jt.config().tracker_dead_timeout;
    let (died, _notes) = jt.check_dead(t_dead);
    assert_eq!(died, vec![victim], "{policy:?}: victim not declared dead");
    assert!(!jt.tracker_live(victim));
    assert_eq!(jt.reported_live(), nodes.len() - 1);

    // Its running attempts went back to pending, none lost.
    let after = jt.backlog();
    assert_eq!(
        after.pending_maps + after.running_maps,
        before.pending_maps + before.running_maps,
        "{policy:?}: map tasks lost across tracker death"
    );
    assert!(
        after.running_maps < before.running_maps,
        "{policy:?}: victim's attempts still counted running"
    );

    // A second declaration for the same (now dead) tracker and one for
    // a node the JobTracker never saw must both be no-ops.
    jt.tracker_silent(t_dead, victim);
    let (died, notes) = jt.check_dead(t_dead + SimDuration::from_secs(60));
    assert!(died.is_empty());
    assert!(notes.is_empty());
    let ghost = NodeId(9_999);
    jt.tracker_silent(t_dead, ghost);
    let (died, _) = jt.check_dead(t_dead + SimDuration::from_secs(120));
    assert!(died.is_empty(), "{policy:?}: ghost node declared dead");

    // Failure-aware policies now hold a penalty against the site; the
    // read path the elastic controller uses must see it (and see zero
    // for history-free policies).
    let site = topo.site_of(victim);
    let p = jt.site_penalty(site, t_dead);
    match policy {
        SchedPolicy::FailureAware => assert!(p > 0.0, "site penalty not recorded"),
        _ => assert_eq!(p, 0.0, "{policy:?} should keep no site history"),
    }
}

#[test]
fn tracker_death_under_fifo() {
    drive_death(SchedPolicy::Fifo);
}

#[test]
fn tracker_death_under_fair() {
    drive_death(SchedPolicy::Fair);
}

#[test]
fn tracker_death_under_failure_aware() {
    drive_death(SchedPolicy::FailureAware);
}

#[test]
fn jain_fairness_degenerate_and_skewed() {
    let (mut jt, topo, nodes) = cluster(SchedPolicy::Fifo, 4);
    // No jobs: vacuous fairness.
    assert_eq!(jt.jain_fairness(), 1.0);
    submit(&mut jt, &topo, &nodes, 4, 1);
    // One job: still 1.0 by definition.
    assert_eq!(jt.jain_fairness(), 1.0);
    submit(&mut jt, &topo, &nodes, 4, 1);
    // Two contenders, no slots assigned yet: equally starved.
    assert_eq!(jt.jain_fairness(), 1.0);
    let t = SimTime::from_secs(2);
    for &n in &nodes {
        for a in jt.heartbeat(t, n, &topo) {
            if let Assignment::Map { attempt, .. } = a {
                assert!(jt.reserve_map_scratch(attempt, n));
            }
        }
    }
    // FIFO gives all four map slots to job 0: maximal skew, J = 1/2.
    let j = jt.jain_fairness();
    assert!((j - 0.5).abs() < 1e-9, "expected J=0.5, got {j}");
    let shares: Vec<u32> = jt.job_shares().map(|(_, s)| s).collect();
    assert_eq!(shares, vec![4, 0]);
}
