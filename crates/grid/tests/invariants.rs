//! Property tests on the grid model: slot accounting, pool-size bounds
//! and self-healing under arbitrary churn/outage interleavings.

use hog_grid::{GridEvent, GridModel, GridNote, GridParams, SiteConfig};
use hog_net::{SiteId, Topology};
use hog_sim_core::dist::{Exponential, UniformDuration};
use hog_sim_core::{EventQueue, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

fn sites(n_sites: usize, slots: usize, lifetime_secs: u64, outages: bool) -> Vec<SiteConfig> {
    (0..n_sites)
        .map(|i| {
            let mut s = SiteConfig::stable(format!("S{i}").as_str(), &format!("s{i}.edu"), slots)
                .with_mean_lifetime(SimDuration::from_secs(lifetime_secs));
            s.acquisition_delay =
                UniformDuration::new(SimDuration::from_secs(1), SimDuration::from_secs(20));
            if outages {
                s.outage_mtbf = Some(Exponential::from_mean(SimDuration::from_secs(3600)));
                s.outage_duration =
                    UniformDuration::new(SimDuration::from_mins(2), SimDuration::from_mins(10));
            }
            s
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Over an hour of arbitrary churn, the pool never exceeds the request
    /// count or total site capacity, per-site used slots stay within
    /// bounds, and node-started/lost events balance with the live count.
    #[test]
    fn prop_grid_accounting(
        seed in 0u64..5000,
        target in 5usize..60,
        lifetime in 120u64..7200,
        n_sites in 1usize..5,
        outages in proptest::bool::ANY,
    ) {
        let mut topo = Topology::new();
        let rng = SimRng::seed_from_u64(seed);
        let capacity_per_site = 20usize;
        let (mut model, init) = GridModel::new(
            GridParams::default(),
            sites(n_sites, capacity_per_site, lifetime, outages),
            &mut topo,
            rng,
        );
        let mut q: EventQueue<GridEvent> = EventQueue::new();
        for (d, e) in init {
            q.push(SimTime::ZERO + d, e);
        }
        let out = model.submit_workers(SimTime::ZERO, target);
        for (d, e) in out.defer {
            q.push(SimTime::ZERO + d, e);
        }
        let capacity = n_sites * capacity_per_site;
        let mut started = 0u64;
        let mut lost = 0u64;
        let horizon = SimTime::from_secs(3600);
        while let Some((t, e)) = q.pop() {
            if t > horizon {
                break;
            }
            let out = model.handle(t, e, &mut topo);
            for n in &out.notes {
                match n {
                    GridNote::NodeStarted { .. } => started += 1,
                    GridNote::NodeLost { .. } => lost += 1,
                }
            }
            for (d, e) in out.defer {
                q.push(t + d, e);
            }
            // Invariants, checked after every event.
            prop_assert!(model.running_count() <= target.min(capacity));
            prop_assert_eq!(model.running_count() as u64, started - lost);
            prop_assert_eq!(model.running_count(), topo.alive_count());
            for s in topo.sites() {
                let used = model.used_slots(SiteId(s.id.0));
                prop_assert!(used <= capacity_per_site, "site over-subscribed");
                // Alive nodes at the site can never exceed used slots.
                prop_assert!(topo.alive_in_site(s.id).count() <= used);
            }
        }
        prop_assert_eq!(started, model.node_start_count());
    }
}
