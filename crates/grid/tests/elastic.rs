//! Property tests on the elastic pool controller: bounded resize rate
//! (no oscillation) and convergence to a steady pool under seeded churn.
//!
//! The controller is exercised against a miniature plant that mirrors
//! the grid's supply dynamics: grown workers sit in a spin-up pipeline
//! before going live, shrink releases pipeline capacity before live
//! capacity, and churn kills live workers at a seeded per-tick rate.

use hog_grid::config::paper_sites;
use hog_grid::{ElasticConfig, ElasticController, ElasticDecision, GridParams, PoolSnapshot};
use hog_sim_core::{SimDuration, SimRng, SimTime};
use proptest::prelude::*;

const TICK_SECS: u64 = 3;

struct Plant {
    live: usize,
    /// (goes-live-at, count) pipeline entries, in submission order.
    pipeline: Vec<(SimTime, usize)>,
}

impl Plant {
    fn outstanding(&self) -> usize {
        self.pipeline.iter().map(|&(_, n)| n).sum()
    }

    fn advance(&mut self, now: SimTime) {
        let mut arrived = 0;
        self.pipeline.retain(|&(at, n)| {
            if at <= now {
                arrived += n;
                false
            } else {
                true
            }
        });
        self.live += arrived;
    }

    fn apply(&mut self, now: SimTime, decision: ElasticDecision, spinup: SimDuration) {
        match decision {
            ElasticDecision::Hold => {}
            ElasticDecision::Grow(n) => self.pipeline.push((now + spinup, n)),
            ElasticDecision::Shrink(mut n) => {
                // Mirror GridModel: cancel pipeline capacity first
                // (newest first), then kill live workers.
                while n > 0 {
                    let Some(last) = self.pipeline.last_mut() else {
                        break;
                    };
                    let take = last.1.min(n);
                    last.1 -= take;
                    n -= take;
                    if last.1 == 0 {
                        self.pipeline.pop();
                    }
                }
                self.live = self.live.saturating_sub(n);
            }
        }
    }
}

/// Drive the controller for `ticks` ticks and return (actions taken,
/// final plant, controller).
fn run_plant(
    seed: u64,
    min: usize,
    max: usize,
    demand: usize,
    churn_permille: u32,
    ticks: u64,
) -> (Vec<(SimTime, ElasticDecision)>, Plant, ElasticController) {
    let mut c = ElasticController::new(
        ElasticConfig::new(min, max),
        &GridParams::default(),
        &paper_sites(),
    );
    let spinup = c.spinup_estimate();
    let mut rng = SimRng::seed_from_u64(seed);
    let mut plant = Plant {
        live: min,
        pipeline: Vec::new(),
    };
    let mut actions = Vec::new();
    for i in 0..ticks {
        let now = SimTime::from_secs(i * TICK_SECS);
        plant.advance(now);
        // Seeded churn: each tick, lose up to churn_permille/1000 of the
        // live pool (rounded down, at least the coin says).
        if churn_permille > 0 && plant.live > 0 {
            let losses = (plant.live * churn_permille as usize) / 1000;
            let jitter = rng.index(2); // deterministic wobble
            plant.live -= losses.saturating_sub(jitter).min(plant.live);
        }
        let snap = PoolSnapshot {
            reported_live: plant.live,
            outstanding: plant.outstanding(),
            pending_maps: demand.saturating_sub(plant.live.min(demand)),
            running_maps: plant.live.min(demand),
            active_jobs: usize::from(demand > 0),
            ..PoolSnapshot::default()
        };
        let d = c.decide(now, &snap);
        if d != ElasticDecision::Hold {
            actions.push((now, d));
        }
        plant.apply(now, d, spinup);
    }
    (actions, plant, c)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// No oscillation: every shrink is at least a cooldown after the
    /// previous action of either kind, so the controller can never
    /// alternate grow/shrink faster than the cooldown. (Deficit-driven
    /// grows are monotone — supply jumps to target and stays — so they
    /// are deliberately not rate-limited against each other.)
    #[test]
    fn prop_bounded_resize_rate(
        seed in 0u64..10_000,
        min in 5usize..40,
        extra in 10usize..300,
        demand in 0usize..400,
        churn in 0u32..80,
    ) {
        let max = min + extra;
        let (actions, _, c) = run_plant(seed, min, max, demand, churn, 1200);
        let cooldown = c.config().cooldown.as_secs_f64();
        for w in actions.windows(2) {
            if !matches!(w[1].1, ElasticDecision::Shrink(_)) {
                continue;
            }
            let gap = w[1].0.saturating_since(w[0].0).as_secs_f64();
            prop_assert!(
                gap >= cooldown,
                "shrink at {:?} only {gap}s after action at {:?} (cooldown {cooldown}s)",
                w[1].0, w[0].0
            );
        }
    }

    /// Convergence: under constant demand and no churn the controller
    /// settles — no resizes in the final two-thirds of a one-hour run,
    /// and the pool ends inside [target, target + band].
    #[test]
    fn prop_converges_to_steady_pool(
        seed in 0u64..10_000,
        min in 5usize..40,
        extra in 10usize..300,
        demand in 0usize..400,
    ) {
        let max = min + extra;
        let ticks = 1200u64; // one hour of 3 s ticks
        let (actions, plant, mut c) = run_plant(seed, min, max, demand, 0, ticks);
        let settle = SimTime::from_secs(ticks * TICK_SECS / 3);
        prop_assert!(
            actions.iter().all(|&(t, _)| t < settle),
            "controller still resizing after {settle:?}: {actions:?}"
        );
        let snap = PoolSnapshot {
            reported_live: plant.live,
            outstanding: plant.outstanding(),
            pending_maps: demand.saturating_sub(plant.live.min(demand)),
            running_maps: plant.live.min(demand),
            active_jobs: usize::from(demand > 0),
            ..PoolSnapshot::default()
        };
        let target = c.target(SimTime::from_secs(ticks * TICK_SECS), &snap);
        let supply = plant.live + plant.outstanding();
        prop_assert!(
            supply >= target.min(max) || supply >= max,
            "steady pool {supply} below target {target}"
        );
        let band = ((target as f64 * c.config().hysteresis).ceil() as usize).max(2);
        prop_assert!(
            supply <= target + band,
            "steady pool {supply} above band edge {}",
            target + band
        );
        prop_assert_eq!(c.decide(SimTime::from_secs(ticks * TICK_SECS + 600), &snap), ElasticDecision::Hold);
    }

    /// Under sustained seeded churn the pool still converges to the
    /// band: the controller keeps re-growing what churn takes away but
    /// never runs past max_nodes or below min_nodes.
    #[test]
    fn prop_steady_under_churn(
        seed in 0u64..10_000,
        demand in 50usize..300,
        churn in 1u32..40,
    ) {
        let (_, plant, c) = run_plant(seed, 10, 350, demand, churn, 2400);
        let supply = plant.live + plant.outstanding();
        prop_assert!(supply <= c.config().max_nodes + c.config().max_shrink_step);
        prop_assert!(plant.live <= 350 + 50, "pool overshot: {}", plant.live);
    }
}
