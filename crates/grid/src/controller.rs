//! Elastic glidein pool controller.
//!
//! The paper sizes its pool by hand (`queue 1000`) and Figure 4 sweeps
//! static pool sizes; this module closes the loop the paper leaves open:
//! a deterministic feedback controller that runs on the master tick,
//! compares task backlog against committed supply (running workers plus
//! requests already in the glidein pipeline), and resizes the pool via
//! [`GridModel::submit_workers`] / [`GridModel::remove_workers_preferring`].
//!
//! Three mechanisms keep it from thrashing against the 30 s death
//! detector and the slow glidein pipeline:
//!
//! * **Spin-up cost model** — a new worker costs mean batch-queue wait +
//!   package download + configuration (from [`GridParams`] /
//!   [`SiteConfig`]). Growth therefore acts on the *full* deficit at
//!   once (a second request later would pay the whole pipeline again),
//!   and capacity is never released unless the surplus has outlived the
//!   cost of re-acquiring it.
//! * **Hysteresis band** — grow when supply drops below target, shrink
//!   only when supply exceeds target by a configurable band, so the
//!   controller holds still between the two edges.
//! * **Cooldown** — at most one resize per cooldown window (default
//!   90 s, comfortably above the 30 s tracker/datanode death timeout),
//!   so a resize's consequences are observed before the next one.
//!
//! The controller is pure: it owns no RNG and touches nothing but its
//! own counters, so a controller that never fires leaves the simulation
//! bit-identical to a run without one, and two identical elastic runs
//! are fingerprint-identical.
//!
//! [`GridModel::submit_workers`]: crate::GridModel::submit_workers
//! [`GridModel::remove_workers_preferring`]: crate::GridModel::remove_workers_preferring

use crate::churn::DiurnalForecast;
use crate::config::{GridParams, SiteConfig};
use hog_sim_core::units::transfer_secs;
use hog_sim_core::{SimDuration, SimTime};

/// Tuning for the elastic pool controller.
#[derive(Clone, Debug)]
pub struct ElasticConfig {
    /// Pool floor: never shrink below this many workers.
    pub min_nodes: usize,
    /// Pool ceiling: never request more than this many workers.
    pub max_nodes: usize,
    /// Map slots per worker (1 on HOG glideins).
    pub map_slots_per_node: u32,
    /// Reduce slots per worker (1 everywhere in the paper).
    pub reduce_slots_per_node: u32,
    /// Target capacity as a multiple of raw task demand, so churn,
    /// stragglers and the next arrival wave do not immediately starve
    /// the pool (default 1.5).
    pub headroom: f64,
    /// Shrink only when supply exceeds target by this fraction
    /// (default 0.25); growth triggers on any deficit.
    pub hysteresis: f64,
    /// Minimum time from any resize action to the next *shrink*
    /// (default 90 s — above the 30 s death detector, so a shrink's
    /// tracker deaths are fully observed before the next release).
    /// Deficit-driven grows are monotone and bypass it.
    pub cooldown: SimDuration,
    /// Minimum sustained surplus before a shrink (default 3 min — long
    /// enough to see through inter-wave lulls in the arrival process). The
    /// effective patience is the max of this and the spin-up estimate:
    /// capacity is never released unless the surplus outlived the cost
    /// of re-acquiring it.
    pub shrink_patience: SimDuration,
    /// Upper bound on workers released in one shrink (default 150; the
    /// mediator only hands over *idle* workers, so large steps are
    /// throttled by what is actually reclaimable).
    pub max_shrink_step: usize,
    /// Diurnal preemption forecast: when set, the demand target is
    /// scaled by the predicted preemption-rate multiplier at
    /// `now + spinup` (floored at 1), so the controller buys replacement
    /// capacity *before* the daily reclaim wave kills what it has.
    /// `None` (the default) keeps the pure demand law — bit-identical to
    /// pre-forecast builds.
    pub forecast: Option<DiurnalForecast>,
}

impl ElasticConfig {
    /// Controller bounds with default tuning.
    pub fn new(min_nodes: usize, max_nodes: usize) -> Self {
        ElasticConfig {
            min_nodes,
            max_nodes: max_nodes.max(min_nodes),
            map_slots_per_node: 1,
            reduce_slots_per_node: 1,
            headroom: 1.5,
            hysteresis: 0.25,
            cooldown: SimDuration::from_secs(90),
            shrink_patience: SimDuration::from_secs(180),
            max_shrink_step: 150,
            forecast: None,
        }
    }

    /// Enable diurnal pre-growth with the given forecast.
    pub fn with_forecast(mut self, forecast: DiurnalForecast) -> Self {
        self.forecast = Some(forecast);
        self
    }
}

/// What the controller sees on one master tick: JobTracker backlog plus
/// committed grid supply. Mirrors the hog-obs gauges of the same names.
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolSnapshot {
    /// Trackers the JobTracker currently believes alive.
    pub reported_live: usize,
    /// Glidein requests in the pipeline (queued / batch-waiting /
    /// downloading / resubmitting) — committed but not yet running.
    pub outstanding: usize,
    /// Map tasks not yet scheduled, over all incomplete jobs.
    pub pending_maps: usize,
    /// Map tasks currently running.
    pub running_maps: usize,
    /// Reduce tasks not yet scheduled.
    pub pending_reduces: usize,
    /// Reduce tasks currently running.
    pub running_reduces: usize,
    /// Incomplete jobs.
    pub active_jobs: usize,
}

/// One controller decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ElasticDecision {
    /// Inside the band (or cooling down): do nothing.
    Hold,
    /// Submit this many additional glidein requests.
    Grow(usize),
    /// Release this many workers.
    Shrink(usize),
}

/// The feedback controller. See the module docs for the control law.
#[derive(Clone, Debug)]
pub struct ElasticController {
    cfg: ElasticConfig,
    spinup: SimDuration,
    last_action: Option<SimTime>,
    surplus_since: Option<SimTime>,
    grows: u64,
    shrinks: u64,
}

fn ceil_div(a: usize, b: usize) -> usize {
    a.div_ceil(b.max(1))
}

impl ElasticController {
    /// Build a controller, deriving the spin-up estimate from the grid
    /// configuration: mean batch-queue acquisition over the usable
    /// sites, plus package download at each site's rate, plus the fixed
    /// configure time.
    pub fn new(cfg: ElasticConfig, params: &GridParams, sites: &[SiteConfig]) -> Self {
        let usable: Vec<&SiteConfig> = sites.iter().filter(|s| s.public_ip).collect();
        let mut total = 0.0;
        for s in &usable {
            total += s.acquisition_delay.mean().as_secs_f64()
                + transfer_secs(params.package_bytes, s.package_download_rate)
                + params.configure_time.as_secs_f64();
        }
        let spinup = if usable.is_empty() {
            params.configure_time
        } else {
            SimDuration::from_secs_f64(total / usable.len() as f64)
        };
        ElasticController {
            cfg,
            spinup,
            last_action: None,
            surplus_since: None,
            grows: 0,
            shrinks: 0,
        }
    }

    /// Expected seconds from submitting a glidein request to a running
    /// worker (the price of shrinking too eagerly).
    pub fn spinup_estimate(&self) -> SimDuration {
        self.spinup
    }

    /// The demand-driven pool target for a snapshot at `now`: enough
    /// workers to run every pending+running task at once (per slot
    /// kind), times the headroom factor and — when a [`DiurnalForecast`]
    /// is configured — the predicted preemption-rate multiplier at
    /// `now + spinup` (floored at 1, so quiet hours are unaffected),
    /// clamped to the configured bounds. An idle pool targets the floor.
    pub fn target(&self, now: SimTime, snap: &PoolSnapshot) -> usize {
        if snap.active_jobs == 0 {
            return self.cfg.min_nodes;
        }
        let map_nodes = ceil_div(
            snap.pending_maps + snap.running_maps,
            self.cfg.map_slots_per_node as usize,
        );
        let reduce_nodes = ceil_div(
            snap.pending_reduces + snap.running_reduces,
            self.cfg.reduce_slots_per_node as usize,
        );
        let demand = map_nodes.max(reduce_nodes);
        let forecast = self
            .cfg
            .forecast
            .map_or(1.0, |f| f.growth_factor(now, self.spinup));
        let padded = (demand as f64 * self.cfg.headroom * forecast).ceil() as usize;
        padded.clamp(self.cfg.min_nodes, self.cfg.max_nodes)
    }

    /// Resizes performed so far, as (grows, shrinks).
    pub fn resize_counts(&self) -> (u64, u64) {
        (self.grows, self.shrinks)
    }

    /// The configured bounds and tuning.
    pub fn config(&self) -> &ElasticConfig {
        &self.cfg
    }

    /// One control step. `now` must be non-decreasing across calls.
    pub fn decide(&mut self, now: SimTime, snap: &PoolSnapshot) -> ElasticDecision {
        let target = self.target(now, snap);
        let supply = snap.reported_live + snap.outstanding;
        // Shrink edge: target plus the hysteresis band (≥ 2 absolute so
        // a one-worker ripple can never trigger anything).
        let band = ((target as f64 * self.cfg.hysteresis).ceil() as usize).max(2);
        let hi = target + band;

        // Track how long the pool has been above the shrink edge even
        // while cooling down, so patience measures real surplus age.
        if supply > hi {
            if self.surplus_since.is_none() {
                self.surplus_since = Some(now);
            }
        } else {
            self.surplus_since = None;
        }

        if supply < target {
            // Grow the whole deficit at once, without waiting out the
            // cooldown: a deficit-driven grow is monotone (supply jumps
            // to target and stays there until demand moves), so it can
            // never oscillate, and throttling it just stretches the ramp
            // by a cooldown per request wave. The cooldown exists to
            // space *reversals*; growing still restarts it so a shrink
            // cannot fire on the heels of a grow.
            self.last_action = Some(now);
            self.grows += 1;
            return ElasticDecision::Grow(target - supply);
        }

        if let Some(last) = self.last_action {
            if now.saturating_since(last) < self.cfg.cooldown {
                return ElasticDecision::Hold;
            }
        }

        if supply > hi {
            let patience = self.cfg.shrink_patience.max(self.spinup);
            let since = self.surplus_since.expect("tracked above");
            if now.saturating_since(since) >= patience {
                let step = (supply - target).min(self.cfg.max_shrink_step);
                // Never below the floor.
                let step = step.min(supply.saturating_sub(self.cfg.min_nodes));
                if step > 0 {
                    self.last_action = Some(now);
                    self.shrinks += 1;
                    return ElasticDecision::Shrink(step);
                }
            }
        }
        ElasticDecision::Hold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::paper_sites;

    fn controller(min: usize, max: usize) -> ElasticController {
        ElasticController::new(
            ElasticConfig::new(min, max),
            &GridParams::default(),
            &paper_sites(),
        )
    }

    fn busy(pending: usize, live: usize, outstanding: usize) -> PoolSnapshot {
        PoolSnapshot {
            reported_live: live,
            outstanding,
            pending_maps: pending,
            active_jobs: 1,
            ..PoolSnapshot::default()
        }
    }

    #[test]
    fn spinup_model_reflects_site_costs() {
        let c = controller(10, 100);
        let s = c.spinup_estimate().as_secs_f64();
        // Paper sites: 20-120 s batch wait (mean 70), 75 MiB at 20 MiB/s
        // (3.75 s), 15 s configure -> ~88.75 s.
        assert!((80.0..100.0).contains(&s), "spin-up estimate {s}");
    }

    #[test]
    fn grows_full_deficit_when_backlogged() {
        let mut c = controller(10, 300);
        let d = c.decide(SimTime::from_secs(10), &busy(200, 40, 0));
        // target = ceil(200 * 1.5) = 300; deficit = 260.
        assert_eq!(d, ElasticDecision::Grow(260));
    }

    #[test]
    fn grows_track_rising_demand_without_cooldown() {
        let mut c = controller(10, 300);
        assert!(matches!(
            c.decide(SimTime::from_secs(10), &busy(100, 40, 0)),
            ElasticDecision::Grow(_)
        ));
        // More demand one tick later: the new deficit is granted
        // immediately — deficit grows are monotone, so no cooldown.
        // target = min(ceil(200 * 1.5), 300) = 300; supply = 150.
        assert_eq!(
            c.decide(SimTime::from_secs(13), &busy(200, 40, 110)),
            ElasticDecision::Grow(150)
        );
        // Supply matches target exactly: hold.
        let mut c = controller(10, 300);
        assert_eq!(
            c.decide(SimTime::from_secs(10), &busy(200, 300, 0)),
            ElasticDecision::Hold
        );
    }

    #[test]
    fn cooldown_spaces_consecutive_shrinks() {
        let mut c = controller(10, 300);
        let idle = |live: usize| PoolSnapshot {
            reported_live: live,
            active_jobs: 0,
            ..PoolSnapshot::default()
        };
        assert_eq!(c.decide(SimTime::ZERO, &idle(200)), ElasticDecision::Hold);
        assert_eq!(
            c.decide(SimTime::from_secs(200), &idle(200)),
            ElasticDecision::Shrink(150)
        );
        // Surplus persists while the kills land, but the next shrink
        // must wait out the cooldown from the previous action.
        assert_eq!(
            c.decide(SimTime::from_secs(230), &idle(50)),
            ElasticDecision::Hold
        );
        assert_eq!(
            c.decide(SimTime::from_secs(290), &idle(50)),
            ElasticDecision::Shrink(40)
        );
    }

    #[test]
    fn shrinks_only_after_sustained_surplus() {
        let mut c = controller(10, 300);
        let idle = PoolSnapshot {
            reported_live: 100,
            active_jobs: 0,
            ..PoolSnapshot::default()
        };
        // Surplus noticed at t=0; patience (max(180 s, spin-up)) not yet
        // served at t=60.
        assert_eq!(c.decide(SimTime::ZERO, &idle), ElasticDecision::Hold);
        assert_eq!(
            c.decide(SimTime::from_secs(60), &idle),
            ElasticDecision::Hold
        );
        // After patience: shrink toward the floor, bounded by the step.
        let d = c.decide(SimTime::from_secs(200), &idle);
        assert_eq!(d, ElasticDecision::Shrink(90));
    }

    #[test]
    fn surplus_age_resets_when_demand_returns() {
        let mut c = controller(10, 300);
        let idle = PoolSnapshot {
            reported_live: 100,
            active_jobs: 0,
            ..PoolSnapshot::default()
        };
        assert_eq!(c.decide(SimTime::ZERO, &idle), ElasticDecision::Hold);
        // Demand absorbs the surplus (supply inside the band); the
        // patience clock must restart.
        assert_eq!(
            c.decide(SimTime::from_secs(100), &busy(100, 160, 0)),
            ElasticDecision::Hold
        );
        assert_eq!(
            c.decide(SimTime::from_secs(200), &idle),
            ElasticDecision::Hold,
            "patience restarted at 200 s"
        );
    }

    #[test]
    fn forecast_pre_grows_ahead_of_the_wave() {
        let cfg = ElasticConfig::new(10, 600).with_forecast(DiurnalForecast {
            amplitude: 0.6,
            peak_hour: 14.0,
        });
        let mut c = ElasticController::new(cfg, &GridParams::default(), &paper_sites());
        let snap = busy(100, 170, 0);
        // Demand target without a forecast: ceil(100 * 1.5) = 150; supply
        // 170 sits inside the hold band. Just before the daily peak the
        // forecast scales the target past the supply and the controller
        // buys ahead.
        let night = SimTime::from_secs(2 * 3600);
        assert_eq!(c.decide(night, &snap), ElasticDecision::Hold);
        let before_peak = SimTime::from_secs(13 * 3600 + 1800);
        match c.decide(before_peak, &snap) {
            ElasticDecision::Grow(n) => assert!(n > 0, "pre-growth must request workers"),
            d => panic!("expected pre-growth near the peak, got {d:?}"),
        }
        // No forecast: same snapshot holds at any hour.
        let mut plain = controller(10, 600);
        assert_eq!(plain.decide(night, &snap), ElasticDecision::Hold);
        assert_eq!(plain.decide(before_peak, &snap), ElasticDecision::Hold);
    }

    #[test]
    fn never_shrinks_below_floor() {
        let mut c = controller(40, 300);
        let idle = PoolSnapshot {
            reported_live: 55,
            active_jobs: 0,
            ..PoolSnapshot::default()
        };
        assert_eq!(c.decide(SimTime::ZERO, &idle), ElasticDecision::Hold);
        // Idle target is the 40-node floor: shrink stops exactly there.
        let d = c.decide(SimTime::from_secs(500), &idle);
        assert_eq!(d, ElasticDecision::Shrink(15));
    }
}
