//! Trace-calibrated preemption (churn) models.
//!
//! The paper's evaluation — and every PR before this one — drives
//! glidein preemption from a single exponential lifetime per site. The
//! follow-up study from the same group, *Discovering Job Preemptions in
//! the Open Science Grid* (PAPERS.md), measured the real process and
//! found three things the exponential misses:
//!
//! 1. **Heavy tails** — most preempted glideins die young (a log-normal
//!    body around tens of minutes), but a power-law minority survive for
//!    many hours. A mixture of [`LogNormal`] body and [`Pareto`] tail
//!    reproduces both ends.
//! 2. **Diurnal rates** — preemption pressure follows the owning
//!    campus's working day: local users reclaim their machines in
//!    daytime waves and the pool calms overnight. A cosine rate curve
//!    ([`CalibratedChurn::diurnal_multiplier`]) modulates sampled
//!    lifetimes: at peak hours lifetimes compress, off-peak they
//!    stretch.
//! 3. **Site specificity** — shapes differ per site by an order of
//!    magnitude. [`osg_profile`] carries a per-site parameter table for
//!    the paper's five pinned OSG sites (and the synthetic `OSG_SYN_*`
//!    sites `scaled_sites` appends past the paper's scale).
//!
//! [`ChurnModel`] selects the generator per site. The default
//! ([`ChurnModel::Exponential`]) routes through the *exact* legacy
//! sampling path — one draw from [`SiteConfig::node_lifetime`] — so
//! every historical fingerprint is bit-identical; the calibrated model
//! consumes its own draw pattern from the same grid RNG stream and is
//! deterministic under a fixed seed.
//!
//! The diurnal curve is also exported standalone as [`DiurnalForecast`]
//! so the elastic pool controller can *pre-grow* ahead of a predicted
//! preemption wave (DESIGN §16.3).
//!
//! [`SiteConfig::node_lifetime`]: crate::config::SiteConfig::node_lifetime
//! [`LogNormal`]: hog_sim_core::dist::LogNormal
//! [`Pareto`]: hog_sim_core::dist::Pareto

use hog_sim_core::dist::{LogNormal, Pareto};
use hog_sim_core::{SimDuration, SimRng, SimTime};

/// Which lifetime generator a site's preemption process uses.
#[derive(Clone, Copy, Debug, PartialEq, Default)]
pub enum ChurnModel {
    /// The legacy synthetic model: one exponential draw from the site's
    /// `node_lifetime`. The default, bit-identical to every pre-churn
    /// build.
    #[default]
    Exponential,
    /// OSG-calibrated heavy-tailed + diurnal lifetimes.
    Calibrated(CalibratedChurn),
}

impl ChurnModel {
    /// Short name for reports (`"exponential"` / `"calibrated"`).
    pub fn as_str(&self) -> &'static str {
        match self {
            ChurnModel::Exponential => "exponential",
            ChurnModel::Calibrated(_) => "calibrated",
        }
    }

    /// Typical glidein lifetime in seconds, for classifying site
    /// stability (the availability policy's lifetime bands). The
    /// exponential model's mean is the site's configured
    /// `node_lifetime`, passed in; the calibrated model answers with its
    /// log-normal body median — the tail survivors don't describe a
    /// *typical* slot.
    pub fn typical_lifetime_secs(&self, exponential_mean: SimDuration) -> f64 {
        match self {
            ChurnModel::Exponential => exponential_mean.as_secs_f64(),
            ChurnModel::Calibrated(c) => c.body_median_secs,
        }
    }

    /// Instantaneous preemption-pressure multiplier at `now` (≥ 1 means
    /// more reclaim pressure than the daily mean). The exponential model
    /// is memoryless and flat (always 1); the calibrated model exposes
    /// its diurnal rate curve.
    pub fn pressure(&self, now: SimTime) -> f64 {
        match self {
            ChurnModel::Exponential => 1.0,
            ChurnModel::Calibrated(c) => c.diurnal_multiplier(now),
        }
    }
}

/// Parameters of the calibrated per-site preemption process: a
/// log-normal body / Pareto tail lifetime mixture, compressed or
/// stretched by a diurnal rate curve.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CalibratedChurn {
    /// Median of the log-normal lifetime body, seconds.
    pub body_median_secs: f64,
    /// Shape (sigma) of the log-normal body.
    pub body_sigma: f64,
    /// Minimum (scale) of the Pareto survival tail, seconds.
    pub tail_scale_secs: f64,
    /// Tail index of the Pareto component (smaller = heavier).
    pub tail_shape: f64,
    /// Probability a lifetime is drawn from the Pareto tail instead of
    /// the log-normal body.
    pub tail_weight: f64,
    /// Amplitude of the diurnal preemption-rate curve in `[0, 1)`:
    /// `0.0` is a flat rate, `0.6` means peak-hour preemption pressure
    /// is 1.6× the daily mean and the quietest hour 0.4×.
    pub diurnal_amplitude: f64,
    /// Hour of the simulated day (0–24) at which preemption pressure
    /// peaks — the owning campus's working-day reclaim wave.
    pub diurnal_peak_hour: f64,
}

impl CalibratedChurn {
    /// A generic OSG-shaped profile: 25-minute median body with a fat
    /// Pareto survivor tail, moderate daytime wave peaking at 14:00.
    pub fn osg_default() -> Self {
        CalibratedChurn {
            body_median_secs: 25.0 * 60.0,
            body_sigma: 0.9,
            tail_scale_secs: 2.0 * 3600.0,
            tail_shape: 1.3,
            tail_weight: 0.25,
            diurnal_amplitude: 0.5,
            diurnal_peak_hour: 14.0,
        }
    }

    /// Re-phase the diurnal curve for a simulation whose `t = 0` is
    /// `start_hour` of the campus day rather than midnight: the peak
    /// moves to `peak_hour − start_hour` (mod 24). Short benchmarks use
    /// this to replay a sub-hour workload window at any point of the
    /// reclaim wave instead of always starting in the overnight trough.
    pub fn with_clock(mut self, start_hour: f64) -> Self {
        self.diurnal_peak_hour = (self.diurnal_peak_hour - start_hour).rem_euclid(24.0);
        self
    }

    /// Preemption-rate multiplier at `now`: `1 + A·cos(2π(h − peak)/24)`
    /// where `h` is the hour of the simulated day. Values above 1 mean
    /// more preemption pressure than the daily mean (and therefore
    /// shorter lifetimes); the curve integrates to ~1 over a day.
    pub fn diurnal_multiplier(&self, now: SimTime) -> f64 {
        diurnal_multiplier(self.diurnal_amplitude, self.diurnal_peak_hour, now)
    }

    /// Draw a lifetime starting at `now`: pick body or tail, then divide
    /// by the diurnal rate multiplier so peak-hour preemption compresses
    /// survival. Consumes 2–3 RNG draws; deterministic per seed.
    pub fn sample_lifetime(&self, now: SimTime, rng: &mut SimRng) -> SimDuration {
        let raw = if rng.chance(self.tail_weight) {
            Pareto::new(
                SimDuration::from_secs_f64(self.tail_scale_secs),
                self.tail_shape,
            )
            .sample(rng)
        } else {
            LogNormal::from_median(
                SimDuration::from_secs_f64(self.body_median_secs),
                self.body_sigma,
            )
            .sample(rng)
        };
        let m = self.diurnal_multiplier(now).max(0.05);
        SimDuration::from_secs_f64(raw.as_secs_f64() / m)
    }

    /// Mean lifetime of the mixture, ignoring the diurnal curve (rough:
    /// the Pareto mean diverges for shapes ≤ 1, where the body mean is
    /// used as a floor). Reports and tuning only — nothing samples this.
    pub fn mean_secs(&self) -> f64 {
        let body = self.body_median_secs * (self.body_sigma * self.body_sigma / 2.0).exp();
        let tail = if self.tail_shape > 1.0 {
            self.tail_scale_secs * self.tail_shape / (self.tail_shape - 1.0)
        } else {
            body
        };
        (1.0 - self.tail_weight) * body + self.tail_weight * tail
    }
}

/// `1 + amplitude·cos(2π(hour − peak)/24)`, the shared diurnal rate
/// curve (churn sampling and elastic forecasting use the same shape).
fn diurnal_multiplier(amplitude: f64, peak_hour: f64, now: SimTime) -> f64 {
    let hour = (now.as_secs_f64() / 3600.0) % 24.0;
    let phase = (hour - peak_hour) / 24.0 * std::f64::consts::TAU;
    1.0 + amplitude.clamp(0.0, 0.99) * phase.cos()
}

/// The calibrated churn profile for an OSG site, keyed by resource name.
///
/// Parameters are fit to the qualitative shapes of the OSG preemption
/// study: Fermilab's grid sites preempt rarely outside reclaim waves
/// (long body, thin tail), the university T2s churn harder with strong
/// working-day diurnality, and the synthetic `OSG_SYN_*` fleet gets the
/// generic profile. Unknown names also get the generic profile, so
/// ad-hoc test sites behave sensibly.
pub fn osg_profile(site_name: &str) -> CalibratedChurn {
    let base = CalibratedChurn::osg_default();
    match site_name {
        // FNAL grid: large, production-managed, calm body but pronounced
        // afternoon reclaim wave when the local experiments ramp.
        "FNAL_FERMIGRID" => CalibratedChurn {
            body_median_secs: 50.0 * 60.0,
            body_sigma: 0.8,
            tail_weight: 0.35,
            diurnal_amplitude: 0.45,
            diurnal_peak_hour: 14.0,
            ..base
        },
        "USCMS-FNAL-WC1" => CalibratedChurn {
            body_median_secs: 40.0 * 60.0,
            body_sigma: 0.85,
            tail_weight: 0.3,
            diurnal_amplitude: 0.5,
            diurnal_peak_hour: 15.0,
            ..base
        },
        // University T2s: opportunistic slots evaporate fast when campus
        // users return; short bodies, heavy diurnality.
        "UCSDT2" => CalibratedChurn {
            body_median_secs: 18.0 * 60.0,
            body_sigma: 1.0,
            tail_weight: 0.2,
            diurnal_amplitude: 0.65,
            diurnal_peak_hour: 13.0,
            ..base
        },
        "AGLT2" => CalibratedChurn {
            body_median_secs: 22.0 * 60.0,
            body_sigma: 0.95,
            tail_weight: 0.22,
            diurnal_amplitude: 0.6,
            diurnal_peak_hour: 14.0,
            ..base
        },
        "MIT_CMS" => CalibratedChurn {
            body_median_secs: 15.0 * 60.0,
            body_sigma: 1.05,
            tail_weight: 0.18,
            diurnal_amplitude: 0.7,
            diurnal_peak_hour: 13.5,
            ..base
        },
        _ => base,
    }
}

/// The diurnal half of the churn calibration, exported standalone so the
/// elastic pool controller can anticipate the preemption wave: when the
/// rate multiplier at `now + spinup` exceeds 1, the controller scales its
/// demand target up by that factor and buys replacement glideins *before*
/// the wave kills the ones it has (DESIGN §16.3).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiurnalForecast {
    /// Amplitude of the rate curve (matches the churn profile driving
    /// the pool).
    pub amplitude: f64,
    /// Peak hour of the rate curve.
    pub peak_hour: f64,
}

impl DiurnalForecast {
    /// A forecast matching [`CalibratedChurn`]'s diurnal parameters.
    pub fn from_churn(c: &CalibratedChurn) -> Self {
        DiurnalForecast {
            amplitude: c.diurnal_amplitude,
            peak_hour: c.diurnal_peak_hour,
        }
    }

    /// The preemption-rate multiplier expected at `at`.
    pub fn multiplier(&self, at: SimTime) -> f64 {
        diurnal_multiplier(self.amplitude, self.peak_hour, at)
    }

    /// The pre-growth factor for a controller deciding at `now` about
    /// capacity that arrives after `spinup`: the forecast rate there,
    /// floored at 1 (the forecast only ever *adds* headroom — quiet
    /// hours fall back to the ordinary demand target).
    pub fn growth_factor(&self, now: SimTime, spinup: SimDuration) -> f64 {
        self.multiplier(now + spinup).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_is_the_default() {
        assert_eq!(ChurnModel::default(), ChurnModel::Exponential);
        assert_eq!(ChurnModel::Exponential.as_str(), "exponential");
        assert_eq!(
            ChurnModel::Calibrated(CalibratedChurn::osg_default()).as_str(),
            "calibrated"
        );
    }

    #[test]
    fn diurnal_curve_peaks_at_peak_hour() {
        let c = CalibratedChurn::osg_default();
        let peak = SimTime::from_secs((c.diurnal_peak_hour * 3600.0) as u64);
        let trough = peak + SimDuration::from_secs(12 * 3600);
        assert!(c.diurnal_multiplier(peak) > 1.4);
        assert!(c.diurnal_multiplier(trough) < 0.6);
        // Same hour next day: periodic.
        let next_day = peak + SimDuration::from_secs(24 * 3600);
        let a = c.diurnal_multiplier(peak);
        let b = c.diurnal_multiplier(next_day);
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn same_seed_replays_identical_lifetimes() {
        let c = osg_profile("UCSDT2");
        let draw = |seed: u64| -> Vec<SimDuration> {
            let mut rng = SimRng::seed_from_u64(seed);
            (0..200)
                .map(|i| c.sample_lifetime(SimTime::from_secs(i * 300), &mut rng))
                .collect()
        };
        assert_eq!(draw(42), draw(42), "same seed must replay identically");
        assert_ne!(draw(42), draw(43), "different seeds must diverge");
    }

    #[test]
    fn peak_hour_lifetimes_are_compressed() {
        let c = CalibratedChurn::osg_default();
        let peak = SimTime::from_secs((c.diurnal_peak_hour * 3600.0) as u64);
        let trough = peak + SimDuration::from_secs(12 * 3600);
        let mean_at = |at: SimTime, seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            let n = 4000;
            (0..n)
                .map(|_| c.sample_lifetime(at, &mut rng).as_secs_f64())
                .sum::<f64>()
                / n as f64
        };
        assert!(
            mean_at(peak, 7) < mean_at(trough, 7) / 2.0,
            "peak-hour lifetimes must be much shorter than trough-hour"
        );
    }

    #[test]
    fn tail_mixture_is_heavy() {
        // With the tail on, the far quantiles must dwarf the body median;
        // with it off they stay log-normal-sized.
        let heavy = CalibratedChurn {
            diurnal_amplitude: 0.0,
            ..CalibratedChurn::osg_default()
        };
        let light = CalibratedChurn {
            tail_weight: 0.0,
            ..heavy
        };
        let p999 = |c: &CalibratedChurn, seed: u64| {
            let mut rng = SimRng::seed_from_u64(seed);
            let mut s: Vec<f64> = (0..10_000)
                .map(|_| c.sample_lifetime(SimTime::ZERO, &mut rng).as_secs_f64())
                .collect();
            s.sort_by(|a, b| a.partial_cmp(b).unwrap());
            s[s.len() - s.len() / 1000]
        };
        assert!(p999(&heavy, 3) > 3.0 * p999(&light, 3));
    }

    #[test]
    fn per_site_profiles_differ_and_unknowns_default() {
        let fnal = osg_profile("FNAL_FERMIGRID");
        let mit = osg_profile("MIT_CMS");
        assert!(fnal.body_median_secs > 2.0 * mit.body_median_secs);
        assert_eq!(osg_profile("OSG_SYN_00"), CalibratedChurn::osg_default());
        assert_eq!(osg_profile("whatever"), CalibratedChurn::osg_default());
    }

    #[test]
    fn typical_lifetime_and_pressure_by_model() {
        let exp = ChurnModel::Exponential;
        let mean = SimDuration::from_secs(2100);
        assert!((exp.typical_lifetime_secs(mean) - 2100.0).abs() < 1e-9);
        assert!((exp.pressure(SimTime::from_secs(14 * 3600)) - 1.0).abs() < 1e-9);
        let cal = ChurnModel::Calibrated(osg_profile("UCSDT2"));
        assert!((cal.typical_lifetime_secs(mean) - 18.0 * 60.0).abs() < 1e-9);
        let peak = SimTime::from_secs(13 * 3600);
        let trough = peak + SimDuration::from_secs(12 * 3600);
        assert!(cal.pressure(peak) > 1.4);
        assert!(cal.pressure(trough) < 0.6);
    }

    #[test]
    fn forecast_only_adds_headroom() {
        let f = DiurnalForecast {
            amplitude: 0.6,
            peak_hour: 14.0,
        };
        let spin = SimDuration::from_secs(90);
        // Just before the peak: factor > 1.
        let before_peak = SimTime::from_secs(13 * 3600);
        assert!(f.growth_factor(before_peak, spin) > 1.3);
        // The middle of the night: never below 1.
        let night = SimTime::from_secs(2 * 3600);
        assert!((f.growth_factor(night, spin) - 1.0).abs() < 1e-9);
    }
}
