//! The glidein lifecycle state machine.
//!
//! Request states mirror what a Condor glidein job goes through on the OSG:
//!
//! ```text
//! Queued --match--> WaitingBatch --granted--> Downloading --done--> Running
//!    ^                  |  (site outage)          |                   |
//!    |                  v                         v                   v
//!    +---- Resubmit <-- requeue <-----------------+------- Preempt ---+
//! ```
//!
//! `OnExitRemove = FALSE` in the paper's submit file means a preempted
//! glidein job goes back into the queue and is re-matched — the pool heals
//! itself at the cost of acquisition + download + configuration latency,
//! which is exactly the overhead the paper blames for the non-monotonic
//! response times in Figure 4.

use crate::config::{GridParams, SiteConfig};
use crate::{Deferred, GridEvent, GridNote, RequestId};
use hog_net::{NodeId, SiteId, Topology};
use hog_obs::{Layer, TraceEvent, Tracer};
use hog_sim_core::metrics::{Counter, StepSeries};
use hog_sim_core::units::transfer_secs;
use hog_sim_core::{SimDuration, SimRng, SimTime};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Why a running worker disappeared.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LossReason {
    /// The site's batch system preempted the glidein.
    Preempted,
    /// The whole site went down.
    SiteOutage,
    /// The user shrank the pool.
    Removed,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum RequestState {
    /// In the Condor queue, waiting for the negotiator.
    Queued,
    /// Matched to a site, waiting out the batch queue.
    WaitingBatch(SiteId),
    /// Slot granted; fetching + unpacking the worker package.
    Downloading(SiteId),
    /// Worker daemons running on this node.
    Running(NodeId),
    /// Waiting out the resubmission delay after a preemption.
    Resubmitting,
}

struct SiteState {
    config: SiteConfig,
    id: SiteId,
    up: bool,
    used_slots: usize,
}

/// Aggregated output of one grid interaction: events to schedule and
/// notifications for the upper layers.
#[derive(Debug, Default)]
pub struct GridOutput {
    /// Events the mediator must schedule (relative delays).
    pub defer: Vec<Deferred>,
    /// Notifications for HDFS / MapReduce wiring.
    pub notes: Vec<GridNote>,
}

impl GridOutput {
    fn merge(&mut self, other: GridOutput) {
        self.defer.extend(other.defer);
        self.notes.extend(other.notes);
    }
}

/// The grid resource layer. See the module docs for the lifecycle.
///
/// Request bookkeeping is a map of **live** requests only: cancelled
/// (terminal) entries are freed immediately, and the in-flight index
/// tracks requests that hold a site slot but are not yet running
/// (`WaitingBatch` / `Downloading`). Shrink and outage handling walk
/// those indexes instead of the full request history, so cost and
/// memory stay proportional to the live pool, not to the total number
/// of requests ever submitted.
pub struct GridModel {
    params: GridParams,
    sites: Vec<SiteState>,
    /// Live requests keyed by raw id. Terminal entries are removed.
    requests: BTreeMap<u64, RequestState>,
    /// Next request id to hand out (monotonic across the run).
    next_request: u64,
    /// Requests currently holding a site slot but not yet running.
    in_flight: BTreeSet<u64>,
    queued: VecDeque<RequestId>,
    nodes: BTreeMap<NodeId, RequestId>,
    rng: SimRng,
    running_series: StepSeries,
    preemptions: Counter,
    outages: Counter,
    node_starts: Counter,
    tracer: Tracer,
}

impl LossReason {
    fn as_str(self) -> &'static str {
        match self {
            LossReason::Preempted => "preempted",
            LossReason::SiteOutage => "site_outage",
            LossReason::Removed => "removed",
        }
    }
}

impl GridModel {
    /// Build the grid, registering every **public-IP** site in `topo`.
    /// NATed sites are dropped here, mirroring the paper's requirements
    /// expression. Returns the model plus the initial site-outage events to
    /// schedule.
    pub fn new(
        params: GridParams,
        site_configs: Vec<SiteConfig>,
        topo: &mut Topology,
        mut rng: SimRng,
    ) -> (Self, Vec<Deferred>) {
        let mut sites = Vec::new();
        let mut defer = Vec::new();
        for cfg in site_configs {
            if !cfg.public_ip {
                continue; // Hadoop peers must be publicly reachable.
            }
            let id = topo.add_site(cfg.name.clone(), cfg.domain.clone());
            if let Some(mtbf) = &cfg.outage_mtbf {
                let first = mtbf.sample(&mut rng);
                defer.push((first, GridEvent::SiteOutage { site: id }));
            }
            sites.push(SiteState {
                config: cfg,
                id,
                up: true,
                used_slots: 0,
            });
        }
        (
            GridModel {
                params,
                sites,
                requests: BTreeMap::new(),
                next_request: 0,
                in_flight: BTreeSet::new(),
                queued: VecDeque::new(),
                nodes: BTreeMap::new(),
                rng,
                running_series: StepSeries::new(),
                preemptions: Counter::new(),
                outages: Counter::new(),
                node_starts: Counter::new(),
                tracer: Tracer::disabled(),
            },
            defer,
        )
    }

    /// Attach the shared trace handle (disabled by default).
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    fn site_name(&self, site: SiteId) -> &str {
        &self.sites[self.site_idx(site)].config.name
    }

    /// Local index of a (grid-registered) site. Topology may hold other
    /// sites too (the central server's), so `SiteId` is not a direct
    /// index into `self.sites`.
    fn site_idx(&self, site: SiteId) -> usize {
        self.sites
            .iter()
            .position(|s| s.id == site)
            .expect("unknown grid site")
    }

    /// Queue `n` glidein requests (the paper's `queue 1000` line).
    pub fn submit_workers(&mut self, now: SimTime, n: usize) -> GridOutput {
        self.tracer
            .emit(|| TraceEvent::new(Layer::Grid, "glidein_submit").with("count", n));
        for _ in 0..n {
            let id = RequestId(self.next_request);
            self.next_request += 1;
            self.requests.insert(id.0, RequestState::Queued);
            self.queued.push_back(id);
        }
        self.try_match(now)
    }

    /// Shrink the pool by `n` workers: cancels queued/pending requests
    /// first, then kills the newest running nodes.
    pub fn remove_workers(&mut self, now: SimTime, n: usize, topo: &mut Topology) -> GridOutput {
        self.shrink(now, n, topo, None)
    }

    /// Shrink the pool by `n` workers, but only ever kill running nodes
    /// from `preferred` (in the given order). Queued and in-flight
    /// requests are still cancelled first — they are the cheapest to
    /// release. If `preferred` runs out before `n` workers are gone the
    /// pool shrinks by less than requested; the elastic controller uses
    /// this to guarantee it never kills a node holding the only live
    /// replica of a block.
    pub fn remove_workers_preferring(
        &mut self,
        now: SimTime,
        n: usize,
        topo: &mut Topology,
        preferred: &[NodeId],
    ) -> GridOutput {
        self.shrink(now, n, topo, Some(preferred))
    }

    fn shrink(
        &mut self,
        now: SimTime,
        n: usize,
        topo: &mut Topology,
        preferred: Option<&[NodeId]>,
    ) -> GridOutput {
        let mut out = GridOutput::default();
        let mut remaining = n;
        // Cancel queued requests (cheapest: nothing is running yet).
        while remaining > 0 {
            let Some(id) = self.queued.pop_back() else {
                break;
            };
            self.requests.remove(&id.0);
            remaining -= 1;
        }
        // Cancel in-flight (batch-waiting / downloading) requests,
        // newest first, via the in-flight index.
        while remaining > 0 {
            let Some(&rid) = self.in_flight.iter().next_back() else {
                break;
            };
            self.in_flight.remove(&rid);
            match self.requests.remove(&rid) {
                Some(RequestState::WaitingBatch(site)) | Some(RequestState::Downloading(site)) => {
                    let i = self.site_idx(site);
                    self.sites[i].used_slots -= 1;
                    remaining -= 1;
                }
                other => unreachable!("in-flight index out of sync: {other:?}"),
            }
        }
        // Kill running nodes: the caller's preference order if given,
        // otherwise newest first.
        let victims: Vec<NodeId> = match preferred {
            Some(order) => order
                .iter()
                .filter(|n| self.nodes.contains_key(n))
                .take(remaining)
                .copied()
                .collect(),
            None => self.nodes.keys().rev().take(remaining).copied().collect(),
        };
        for node in victims {
            out.merge(self.kill_node(now, node, LossReason::Removed, topo, false));
        }
        out
    }

    /// Feed one grid event back into the model.
    pub fn handle(&mut self, now: SimTime, ev: GridEvent, topo: &mut Topology) -> GridOutput {
        match ev {
            GridEvent::Provisioned { request } => self.on_provisioned(now, request),
            GridEvent::DownloadDone { request } => self.on_download_done(now, request, topo),
            GridEvent::Preempt { node } => {
                if self.nodes.contains_key(&node) {
                    self.preemptions.incr();
                    self.kill_node(now, node, LossReason::Preempted, topo, true)
                } else {
                    GridOutput::default() // stale: node already gone
                }
            }
            GridEvent::SiteOutage { site } => self.on_site_outage(now, site, topo),
            GridEvent::SiteRecover { site } => self.on_site_recover(now, site),
            GridEvent::Resubmit { request } => self.on_resubmit(now, request),
        }
    }

    /// Fault injection (hog-chaos): a correlated preemption burst. Kills
    /// up to `count` running glideins at `site` as if the batch system
    /// evicted them simultaneously, counting each as a preemption and
    /// resubmitting its Condor job. Victims are picked in node-id order so
    /// the burst is deterministic. Returns the deferred resubmissions and
    /// loss notes exactly like organic [`GridEvent::Preempt`] handling.
    pub fn inject_preemptions(
        &mut self,
        now: SimTime,
        site: SiteId,
        count: usize,
        topo: &mut Topology,
    ) -> GridOutput {
        let victims: Vec<NodeId> = self
            .nodes
            .keys()
            .copied()
            .filter(|&n| topo.site_of(n) == site)
            .take(count)
            .collect();
        let mut out = GridOutput::default();
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Grid, "preempt_burst")
                .with("site", self.site_name(site))
                .with("victims", victims.len())
        });
        for node in victims {
            self.preemptions.incr();
            out.merge(self.kill_node(now, node, LossReason::Preempted, topo, true));
        }
        out
    }

    /// Negotiation cycle: match queued requests to up sites with free
    /// slots, weighting the choice by free-slot count.
    fn try_match(&mut self, _now: SimTime) -> GridOutput {
        let mut out = GridOutput::default();
        loop {
            let free: Vec<(usize, usize)> = self
                .sites
                .iter()
                .enumerate()
                .filter(|(_, s)| s.up && s.used_slots < s.config.max_slots)
                .map(|(i, s)| (i, s.config.max_slots - s.used_slots))
                .collect();
            if free.is_empty() || self.queued.is_empty() {
                return out;
            }
            let req = self.queued.pop_front().unwrap();
            if self.requests.get(&req.0) != Some(&RequestState::Queued) {
                continue; // cancelled while queued
            }
            // Weighted pick by free slots, deterministic under the run rng.
            let total: usize = free.iter().map(|&(_, f)| f).sum();
            let mut pick = self.rng.index(total);
            let mut site_idx = free[0].0;
            for &(i, f) in &free {
                if pick < f {
                    site_idx = i;
                    break;
                }
                pick -= f;
            }
            let site = &mut self.sites[site_idx];
            site.used_slots += 1;
            let sid = site.id;
            self.requests.insert(req.0, RequestState::WaitingBatch(sid));
            self.in_flight.insert(req.0);
            let delay = site.config.acquisition_delay.sample(&mut self.rng);
            out.defer
                .push((delay, GridEvent::Provisioned { request: req }));
        }
    }

    fn on_provisioned(&mut self, now: SimTime, request: RequestId) -> GridOutput {
        let Some(&RequestState::WaitingBatch(site)) = self.requests.get(&request.0) else {
            return GridOutput::default(); // cancelled or requeued by outage
        };
        let s = &self.sites[self.site_idx(site)];
        debug_assert!(s.up, "outage should have requeued this request");
        self.requests
            .insert(request.0, RequestState::Downloading(site));
        let dl_secs = transfer_secs(self.params.package_bytes, s.config.package_download_rate);
        let delay = SimDuration::from_secs_f64(dl_secs) + self.params.configure_time;
        let mut out = GridOutput::default();
        out.defer.push((delay, GridEvent::DownloadDone { request }));
        let _ = now;
        out
    }

    fn on_download_done(
        &mut self,
        now: SimTime,
        request: RequestId,
        topo: &mut Topology,
    ) -> GridOutput {
        let Some(&RequestState::Downloading(site)) = self.requests.get(&request.0) else {
            return GridOutput::default();
        };
        let node = topo.add_node(site);
        self.requests.insert(request.0, RequestState::Running(node));
        self.in_flight.remove(&request.0);
        self.nodes.insert(node, request);
        self.node_starts.incr();
        self.running_series.record(now, self.nodes.len() as f64);
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Grid, "node_start")
                .with("node", node.0)
                .with("site", self.site_name(site))
                .with("pool", self.nodes.len())
        });
        let mut out = GridOutput::default();
        out.notes.push(GridNote::NodeStarted { node });
        // The Exponential arm is the exact legacy path (one draw from
        // `node_lifetime`), so default-churn runs stay bit-identical; the
        // calibrated generator has its own draw pattern (DESIGN §16.1).
        let cfg = &self.sites[self.site_idx(site)].config;
        let lifetime = match cfg.churn {
            crate::churn::ChurnModel::Exponential => cfg.node_lifetime.sample(&mut self.rng),
            crate::churn::ChurnModel::Calibrated(c) => c.sample_lifetime(now, &mut self.rng),
        };
        out.defer.push((lifetime, GridEvent::Preempt { node }));
        out
    }

    /// Kill a running node. `requeue` controls whether its Condor job goes
    /// back into the queue (true for involuntary loss, false for shrink).
    fn kill_node(
        &mut self,
        now: SimTime,
        node: NodeId,
        reason: LossReason,
        topo: &mut Topology,
        requeue: bool,
    ) -> GridOutput {
        let mut out = GridOutput::default();
        let Some(request) = self.nodes.remove(&node) else {
            return out;
        };
        let site = topo.site_of(node);
        topo.mark_dead(node);
        let i = self.site_idx(site);
        self.sites[i].used_slots -= 1;
        self.running_series.record(now, self.nodes.len() as f64);
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Grid, "node_lost")
                .with("node", node.0)
                .with("site", self.site_name(site))
                .with("reason", reason.as_str())
                .with("pool", self.nodes.len())
        });
        out.notes.push(GridNote::NodeLost { node, reason });
        if requeue {
            self.requests.insert(request.0, RequestState::Resubmitting);
            let delay = self.params.resubmit_delay.sample(&mut self.rng);
            out.defer.push((delay, GridEvent::Resubmit { request }));
        } else {
            self.requests.remove(&request.0); // terminal: free the entry
        }
        out
    }

    fn on_site_outage(&mut self, now: SimTime, site: SiteId, topo: &mut Topology) -> GridOutput {
        let mut out = GridOutput::default();
        let idx = self.site_idx(site);
        if !self.sites[idx].up {
            return out;
        }
        self.outages.incr();
        self.sites[idx].up = false;
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Grid, "site_outage").with("site", self.site_name(site))
        });
        // Kill every running node at the site.
        let victims: Vec<NodeId> = self
            .nodes
            .keys()
            .copied()
            .filter(|&n| topo.site_of(n) == site)
            .collect();
        for node in victims {
            out.merge(self.kill_node(now, node, LossReason::SiteOutage, topo, true));
        }
        // Requeue requests stuck in the site's batch queue or download
        // (ascending id order, matching submission order).
        let stuck: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|rid| {
                matches!(
                    self.requests.get(rid),
                    Some(RequestState::WaitingBatch(s)) | Some(RequestState::Downloading(s))
                        if *s == site
                )
            })
            .copied()
            .collect();
        for rid in stuck {
            self.in_flight.remove(&rid);
            self.requests.insert(rid, RequestState::Queued);
            self.queued.push_back(RequestId(rid));
            self.sites[idx].used_slots -= 1;
        }
        let dur = self.sites[idx].config.outage_duration.sample(&mut self.rng);
        out.defer.push((dur, GridEvent::SiteRecover { site }));
        // Queued requests can still match other sites right away.
        out.merge(self.try_match(now));
        out
    }

    fn on_site_recover(&mut self, now: SimTime, site: SiteId) -> GridOutput {
        let idx = self.site_idx(site);
        self.sites[idx].up = true;
        self.tracer.emit(|| {
            TraceEvent::new(Layer::Grid, "site_recover").with("site", self.site_name(site))
        });
        let mut out = self.try_match(now);
        if let Some(mtbf) = &self.sites[idx].config.outage_mtbf {
            let next = mtbf.sample(&mut self.rng);
            out.defer.push((next, GridEvent::SiteOutage { site }));
        }
        out
    }

    fn on_resubmit(&mut self, now: SimTime, request: RequestId) -> GridOutput {
        if self.requests.get(&request.0) != Some(&RequestState::Resubmitting) {
            return GridOutput::default();
        }
        self.requests.insert(request.0, RequestState::Queued);
        self.queued.push_back(request);
        self.try_match(now)
    }

    /// Number of workers currently running.
    pub fn running_count(&self) -> usize {
        self.nodes.len()
    }

    /// Requests on their way to becoming running workers: queued,
    /// waiting out a batch queue, downloading, or waiting out a
    /// resubmission delay. The elastic controller counts these as
    /// committed supply so it does not double-request capacity.
    pub fn outstanding_count(&self) -> usize {
        self.requests.len() - self.nodes.len()
    }

    /// Total live request-table entries (regression hook: must stay
    /// proportional to the live pool, not to requests ever submitted).
    pub fn request_table_len(&self) -> usize {
        self.requests.len()
    }

    /// The actual available-node step series (Figure 5's ground truth).
    pub fn running_series(&self) -> &StepSeries {
        &self.running_series
    }

    /// Total preemptions so far.
    pub fn preemption_count(&self) -> u64 {
        self.preemptions.get()
    }

    /// Total site outages so far.
    pub fn outage_count(&self) -> u64 {
        self.outages.get()
    }

    /// Total successful node starts.
    pub fn node_start_count(&self) -> u64 {
        self.node_starts.get()
    }

    /// Used slots at a site (testing hook).
    pub fn used_slots(&self, site: SiteId) -> usize {
        self.sites[self.site_idx(site)].used_slots
    }

    /// Whether the site is currently up.
    pub fn site_up(&self, site: SiteId) -> bool {
        self.sites[self.site_idx(site)].up
    }

    /// Number of registered (public-IP) sites.
    pub fn site_count(&self) -> usize {
        self.sites.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::paper_sites;
    use hog_sim_core::dist::{Exponential, UniformDuration};
    use hog_sim_core::{EventQueue, SimDuration};

    /// Drive a GridModel through its own event loop until `until`, applying
    /// an optional callback on each note.
    fn drive(
        model: &mut GridModel,
        topo: &mut Topology,
        init: Vec<Deferred>,
        until: SimTime,
    ) -> Vec<(SimTime, GridNote)> {
        let mut q: EventQueue<GridEvent> = EventQueue::new();
        for (d, e) in init {
            q.push(SimTime::ZERO + d, e);
        }
        let mut notes = Vec::new();
        while let Some((t, e)) = q.pop() {
            if t > until {
                break;
            }
            let out = model.handle(t, e, topo);
            for (d, e) in out.defer {
                q.push(t + d, e);
            }
            for n in out.notes {
                notes.push((t, n));
            }
        }
        notes
    }

    /// A fast-acquiring site with effectively infinite node lifetimes, so
    /// tests about provisioning aren't perturbed by rare preemptions.
    fn quick_site(name: &str, domain: &str, slots: usize) -> SiteConfig {
        SiteConfig {
            acquisition_delay: UniformDuration::new(
                SimDuration::from_secs(1),
                SimDuration::from_secs(5),
            ),
            ..SiteConfig::stable(name, domain, slots)
                .with_mean_lifetime(SimDuration::from_secs(100_000_000))
        }
    }

    #[test]
    fn nated_sites_are_excluded() {
        let mut topo = Topology::new();
        let rng = SimRng::seed_from_u64(1);
        let sites = vec![
            quick_site("A", "a.edu", 10),
            SiteConfig::nated("N", "n.edu", 10),
        ];
        let (model, _) = GridModel::new(GridParams::default(), sites, &mut topo, rng);
        assert_eq!(model.site_count(), 1);
        assert_eq!(topo.sites().len(), 1);
    }

    #[test]
    fn submitted_workers_come_up() {
        let mut topo = Topology::new();
        let rng = SimRng::seed_from_u64(2);
        let (mut model, init) = GridModel::new(
            GridParams::default(),
            vec![quick_site("A", "a.edu", 50)],
            &mut topo,
            rng,
        );
        let out = model.submit_workers(SimTime::ZERO, 20);
        let mut all = init;
        all.extend(out.defer);
        let notes = drive(&mut model, &mut topo, all, SimTime::from_secs(600));
        let starts = notes
            .iter()
            .filter(|(_, n)| matches!(n, GridNote::NodeStarted { .. }))
            .count();
        assert_eq!(starts, 20);
        assert_eq!(model.running_count(), 20);
        assert_eq!(topo.alive_count(), 20);
    }

    #[test]
    fn capacity_is_respected() {
        let mut topo = Topology::new();
        let rng = SimRng::seed_from_u64(3);
        let (mut model, init) = GridModel::new(
            GridParams::default(),
            vec![quick_site("A", "a.edu", 5)],
            &mut topo,
            rng,
        );
        let out = model.submit_workers(SimTime::ZERO, 20);
        let mut all = init;
        all.extend(out.defer);
        drive(&mut model, &mut topo, all, SimTime::from_secs(600));
        assert_eq!(model.running_count(), 5, "only 5 slots exist");
    }

    #[test]
    fn preempted_jobs_requeue_and_pool_heals() {
        let mut topo = Topology::new();
        let rng = SimRng::seed_from_u64(4);
        // Very short lifetimes force constant churn; the single site has
        // spare capacity so the pool keeps healing.
        let site = quick_site("A", "a.edu", 50).with_mean_lifetime(SimDuration::from_secs(300));
        let (mut model, init) = GridModel::new(GridParams::default(), vec![site], &mut topo, rng);
        let out = model.submit_workers(SimTime::ZERO, 30);
        let mut all = init;
        all.extend(out.defer);
        let notes = drive(&mut model, &mut topo, all, SimTime::from_secs(4 * 3600));
        assert!(model.preemption_count() > 50, "churn expected");
        let lost = notes
            .iter()
            .filter(|(_, n)| matches!(n, GridNote::NodeLost { .. }))
            .count();
        let started = notes
            .iter()
            .filter(|(_, n)| matches!(n, GridNote::NodeStarted { .. }))
            .count();
        assert!(started > lost, "pool must keep recovering");
        // Steady-state availability: lifetime / (lifetime + recovery) with
        // a ~80 s recovery pipeline and 300 s mean lifetime is ~0.79, so
        // the time-weighted mean pool size should sit around 23-24 of 30.
        let mean = model
            .running_series()
            .mean_over(SimTime::from_secs(3600), SimTime::from_secs(4 * 3600));
        assert!(
            (18.0..=29.0).contains(&mean),
            "steady-state pool {mean} outside expected band"
        );
    }

    #[test]
    fn site_outage_kills_all_nodes_then_recovers() {
        let mut topo = Topology::new();
        let rng = SimRng::seed_from_u64(5);
        let mut site = quick_site("A", "a.edu", 40);
        site.outage_mtbf = Some(Exponential::from_mean(SimDuration::from_secs(1800)));
        site.outage_duration = UniformDuration::point(SimDuration::from_mins(5));
        let (mut model, init) = GridModel::new(GridParams::default(), vec![site], &mut topo, rng);
        let out = model.submit_workers(SimTime::ZERO, 30);
        let mut all = init;
        all.extend(out.defer);
        let notes = drive(&mut model, &mut topo, all, SimTime::from_secs(4 * 3600));
        assert!(model.outage_count() >= 1, "outage should have fired");
        let outage_losses = notes
            .iter()
            .filter(|(_, n)| {
                matches!(
                    n,
                    GridNote::NodeLost {
                        reason: LossReason::SiteOutage,
                        ..
                    }
                )
            })
            .count();
        assert!(outage_losses >= 20, "an outage takes the whole site down");
    }

    #[test]
    fn remove_workers_prefers_queued_requests() {
        let mut topo = Topology::new();
        let rng = SimRng::seed_from_u64(6);
        let (mut model, _init) = GridModel::new(
            GridParams::default(),
            vec![quick_site("A", "a.edu", 5)],
            &mut topo,
            rng,
        );
        // 5 match immediately, 15 remain queued.
        let _ = model.submit_workers(SimTime::ZERO, 20);
        let out = model.remove_workers(SimTime::from_secs(1), 10, &mut topo);
        // Nothing was running yet, so no NodeLost notes.
        assert!(out.notes.is_empty());
    }

    #[test]
    fn remove_workers_kills_running_when_needed() {
        let mut topo = Topology::new();
        let rng = SimRng::seed_from_u64(7);
        let (mut model, init) = GridModel::new(
            GridParams::default(),
            vec![quick_site("A", "a.edu", 50)],
            &mut topo,
            rng,
        );
        let out = model.submit_workers(SimTime::ZERO, 10);
        let mut all = init;
        all.extend(out.defer);
        drive(&mut model, &mut topo, all, SimTime::from_secs(600));
        assert_eq!(model.running_count(), 10);
        let out = model.remove_workers(SimTime::from_secs(700), 4, &mut topo);
        let removed = out
            .notes
            .iter()
            .filter(|n| {
                matches!(
                    n,
                    GridNote::NodeLost {
                        reason: LossReason::Removed,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(removed, 4);
        assert_eq!(model.running_count(), 6);
    }

    #[test]
    fn paper_scale_1101_nodes() {
        let mut topo = Topology::new();
        let rng = SimRng::seed_from_u64(8);
        let sites = paper_sites()
            .into_iter()
            .map(|mut s| {
                s.acquisition_delay =
                    UniformDuration::new(SimDuration::from_secs(5), SimDuration::from_secs(60));
                s.with_mean_lifetime(SimDuration::from_secs(100_000_000))
            })
            .collect();
        let (mut model, init) = GridModel::new(GridParams::default(), sites, &mut topo, rng);
        let out = model.submit_workers(SimTime::ZERO, 1101);
        let mut all = init;
        all.extend(out.defer);
        drive(&mut model, &mut topo, all, SimTime::from_secs(1200));
        assert_eq!(model.running_count(), 1101, "HOG scaled to 1101 nodes");
        // All five failure domains should host some of them.
        for s in topo.sites() {
            assert!(
                topo.alive_in_site(s.id).count() > 0,
                "site {} unused",
                s.name
            );
        }
    }

    #[test]
    fn grow_shrink_cycles_keep_request_table_flat() {
        // Regression for the request-table leak: `requests` used to be an
        // append-only Vec, so every submit grew it forever and every
        // shrink walked the full history. 10k grow/shrink cycles must
        // leave the table no bigger than the live pool.
        let mut topo = Topology::new();
        let rng = SimRng::seed_from_u64(10);
        let (mut model, _init) = GridModel::new(
            GridParams::default(),
            vec![quick_site("A", "a.edu", 5)],
            &mut topo,
            rng,
        );
        // Fill the site: 5 in-flight requests pin all slots.
        let _ = model.submit_workers(SimTime::ZERO, 5);
        assert_eq!(model.outstanding_count(), 5);
        // Phase 1: churn requests that never match (site is full), so
        // each cycle cancels the queued request it just created.
        for i in 0..5_000u64 {
            let t = SimTime::from_secs(10 + i);
            let _ = model.submit_workers(t, 1);
            let _ = model.remove_workers(t, 1, &mut topo);
        }
        // Phase 2: free a slot so each new request matches (WaitingBatch)
        // and each removal cancels it through the in-flight index.
        let _ = model.remove_workers(SimTime::from_secs(20_000), 1, &mut topo);
        for i in 0..5_000u64 {
            let t = SimTime::from_secs(30_000 + i);
            let _ = model.submit_workers(t, 1);
            let _ = model.remove_workers(t, 1, &mut topo);
        }
        assert!(
            model.request_table_len() <= 8,
            "request table leaked: {} entries after 10k grow/shrink cycles",
            model.request_table_len()
        );
        assert_eq!(model.outstanding_count(), 4);
        assert_eq!(model.running_count(), 0);
    }

    #[test]
    fn preferred_shrink_only_kills_listed_nodes() {
        let mut topo = Topology::new();
        let rng = SimRng::seed_from_u64(11);
        let (mut model, init) = GridModel::new(
            GridParams::default(),
            vec![quick_site("A", "a.edu", 50)],
            &mut topo,
            rng,
        );
        let out = model.submit_workers(SimTime::ZERO, 10);
        let mut all = init;
        all.extend(out.defer);
        drive(&mut model, &mut topo, all, SimTime::from_secs(600));
        assert_eq!(model.running_count(), 10);
        let allowed: Vec<NodeId> = topo.alive_nodes().take(2).map(|r| r.id).collect();
        // Ask for 5 but only 2 victims are eligible: shrink under-delivers
        // rather than touching protected nodes.
        let out = model.remove_workers_preferring(SimTime::from_secs(700), 5, &mut topo, &allowed);
        let killed: Vec<NodeId> = out
            .notes
            .iter()
            .filter_map(|n| match n {
                GridNote::NodeLost { node, .. } => Some(*node),
                _ => None,
            })
            .collect();
        assert_eq!(killed, allowed);
        assert_eq!(model.running_count(), 8);
    }

    #[test]
    fn deterministic_replay() {
        let run = |seed: u64| {
            let mut topo = Topology::new();
            let rng = SimRng::seed_from_u64(seed);
            let site = quick_site("A", "a.edu", 30).with_mean_lifetime(SimDuration::from_secs(600));
            let (mut model, init) =
                GridModel::new(GridParams::default(), vec![site], &mut topo, rng);
            let out = model.submit_workers(SimTime::ZERO, 25);
            let mut all = init;
            all.extend(out.defer);
            let notes = drive(&mut model, &mut topo, all, SimTime::from_secs(3600));
            notes
                .iter()
                .map(|(t, n)| (t.as_millis(), format!("{n:?}")))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "different seeds should differ");
    }

    #[test]
    fn running_series_tracks_counts() {
        let mut topo = Topology::new();
        let rng = SimRng::seed_from_u64(9);
        let (mut model, init) = GridModel::new(
            GridParams::default(),
            vec![quick_site("A", "a.edu", 10)],
            &mut topo,
            rng,
        );
        let out = model.submit_workers(SimTime::ZERO, 10);
        let mut all = init;
        all.extend(out.defer);
        drive(&mut model, &mut topo, all, SimTime::from_secs(600));
        assert_eq!(model.running_series().last_value(), 10.0);
        // Area under a 10-node plateau over the tail must be positive.
        assert!(
            model
                .running_series()
                .area(SimTime::ZERO, SimTime::from_secs(600))
                > 0.0
        );
    }
}
