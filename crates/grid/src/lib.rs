//! Open Science Grid substrate model.
//!
//! HOG acquires Hadoop worker nodes by submitting Condor glidein jobs
//! (`queue 1000`) that GlideinWMS matches to OSG sites. This crate models
//! that resource layer:
//!
//! * [`config`] — per-site configuration ([`SiteConfig`]): slot capacity,
//!   batch-queue acquisition delays, preemption (node-lifetime)
//!   distribution, optional whole-site outage process, public-IP flag (the
//!   paper restricts execution to five sites with publicly reachable
//!   worker nodes; NATed sites are unusable because Hadoop peers must talk
//!   directly).
//! * [`model`] — the [`GridModel`] state machine: requests queue → get
//!   matched to a site → wait out the batch queue → download the 75 MB
//!   Hadoop worker package → configure (late binding) → run → get
//!   preempted. Preempted glidein jobs requeue automatically
//!   (`OnExitRemove = FALSE` in the paper's submit file), which is what
//!   makes the pool self-healing.
//! * [`churn`] — the preemption generators behind [`ChurnModel`]: the
//!   legacy exponential default (bit-identical to pre-churn builds) and
//!   the OSG-calibrated heavy-tailed diurnal model, plus the
//!   [`DiurnalForecast`] the elastic controller uses to pre-grow ahead
//!   of predicted preemption waves.
//! * [`controller`] — the deterministic [`ElasticController`] feedback
//!   loop that resizes the glidein pool from backlog/supply snapshots.
//!
//! The model is event-driven but free of global state: the mediator
//! (in `hog-core`) feeds it [`GridEvent`]s and forwards the returned
//! [`GridNote`]s to HDFS and MapReduce (e.g. a preemption kills that node's
//! datanode and tasktracker).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod churn;
pub mod config;
pub mod controller;
pub mod model;

pub use churn::{CalibratedChurn, ChurnModel, DiurnalForecast};
pub use config::{GridParams, SiteConfig};
pub use controller::{ElasticConfig, ElasticController, ElasticDecision, PoolSnapshot};
pub use model::{GridModel, GridOutput, LossReason};

use hog_net::NodeId;
use hog_net::SiteId;
use hog_sim_core::SimDuration;

/// Identifier of a glidein request (one queued Condor job).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(pub u64);

/// Grid-internal event alphabet. The mediator wraps these in its unified
/// event enum and feeds them back to [`GridModel::handle`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridEvent {
    /// The site's batch scheduler granted the request a slot.
    Provisioned {
        /// Which request got the slot.
        request: RequestId,
    },
    /// The worker package finished downloading and unpacking; daemons can
    /// start.
    DownloadDone {
        /// Which request the download belongs to.
        request: RequestId,
    },
    /// The site preempts this worker (job over time, owner reclaims, …).
    Preempt {
        /// The preempted worker node.
        node: NodeId,
    },
    /// A whole-site failure begins (core network/power event).
    SiteOutage {
        /// The failing site.
        site: SiteId,
    },
    /// The site comes back and accepts glideins again.
    SiteRecover {
        /// The recovering site.
        site: SiteId,
    },
    /// A previously preempted Condor job re-enters the negotiation cycle.
    Resubmit {
        /// The requeued request.
        request: RequestId,
    },
}

/// What the grid wants the mediator to know.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GridNote {
    /// A worker finished starting up: its datanode/tasktracker are now
    /// running and will begin heartbeating.
    NodeStarted {
        /// The new worker.
        node: NodeId,
    },
    /// A running worker was lost.
    NodeLost {
        /// The dead worker.
        node: NodeId,
        /// Why it died.
        reason: LossReason,
    },
}

/// A `(delay, event)` pair the mediator must schedule.
pub type Deferred = (SimDuration, GridEvent);
