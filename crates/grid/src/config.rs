//! Grid and site configuration.

use crate::churn::{osg_profile, ChurnModel};
use hog_sim_core::dist::{Exponential, UniformDuration};
use hog_sim_core::units::MIB;
use hog_sim_core::SimDuration;

/// Per-site resource and failure characteristics.
#[derive(Clone, Debug)]
pub struct SiteConfig {
    /// OSG resource name (`GLIDEIN_ResourceName`), e.g. `FNAL_FERMIGRID`.
    pub name: String,
    /// DNS domain for worker hostnames, e.g. `fnal.gov`.
    pub domain: String,
    /// Maximum concurrently running glideins the site will host.
    pub max_slots: usize,
    /// Whether worker nodes have public IPs. Hadoop peers must reach each
    /// other directly, so HOG can only use public-IP sites; the glidein
    /// matcher skips sites where this is false.
    pub public_ip: bool,
    /// Batch-queue wait before a matched glidein starts executing.
    pub acquisition_delay: UniformDuration,
    /// Distribution of a worker's lifetime until the site preempts it
    /// (used by the default [`ChurnModel::Exponential`]).
    pub node_lifetime: Exponential,
    /// Which preemption process drives the site. The default
    /// ([`ChurnModel::Exponential`]) draws from `node_lifetime` exactly
    /// as every pre-churn build did — bit-identical fingerprints;
    /// [`ChurnModel::Calibrated`] switches to the OSG-fit heavy-tailed
    /// diurnal generator (see [`crate::churn`]).
    pub churn: ChurnModel,
    /// Mean time between whole-site outages. `None` disables outages.
    pub outage_mtbf: Option<Exponential>,
    /// How long an outage lasts.
    pub outage_duration: UniformDuration,
    /// Effective rate (bytes/s) at which this site's workers fetch the
    /// worker package from the central web repository.
    pub package_download_rate: f64,
}

impl SiteConfig {
    /// A stable, well-connected site: multi-hour mean lifetime, short
    /// batch queue, no outages.
    pub fn stable(name: &str, domain: &str, max_slots: usize) -> Self {
        SiteConfig {
            name: name.to_string(),
            domain: domain.to_string(),
            max_slots,
            public_ip: true,
            acquisition_delay: UniformDuration::new(
                SimDuration::from_secs(20),
                SimDuration::from_secs(120),
            ),
            node_lifetime: Exponential::from_mean(SimDuration::from_secs(12 * 3600)),
            churn: ChurnModel::Exponential,
            outage_mtbf: None,
            outage_duration: UniformDuration::point(SimDuration::from_mins(10)),
            package_download_rate: 20.0 * MIB as f64,
        }
    }

    /// An unstable site: short mean lifetime (frequent preemption by
    /// higher-priority users) and occasional site-wide outages.
    pub fn unstable(name: &str, domain: &str, max_slots: usize) -> Self {
        SiteConfig {
            node_lifetime: Exponential::from_mean(SimDuration::from_secs(35 * 60)),
            outage_mtbf: Some(Exponential::from_mean(SimDuration::from_secs(4 * 3600))),
            outage_duration: UniformDuration::new(
                SimDuration::from_mins(5),
                SimDuration::from_mins(20),
            ),
            ..Self::stable(name, domain, max_slots)
        }
    }

    /// A NATed site (not usable by HOG; exists so tests can verify the
    /// public-IP requirement is enforced).
    pub fn nated(name: &str, domain: &str, max_slots: usize) -> Self {
        SiteConfig {
            public_ip: false,
            ..Self::stable(name, domain, max_slots)
        }
    }

    /// Override the mean node lifetime (preemption pressure knob).
    pub fn with_mean_lifetime(mut self, mean: SimDuration) -> Self {
        self.node_lifetime = Exponential::from_mean(mean);
        self
    }

    /// Select the preemption process for this site.
    pub fn with_churn(mut self, churn: ChurnModel) -> Self {
        self.churn = churn;
        self
    }

    /// Switch this site to its OSG-calibrated churn profile (matched by
    /// resource name via [`osg_profile`]).
    pub fn calibrated(self) -> Self {
        let profile = osg_profile(&self.name);
        self.with_churn(ChurnModel::Calibrated(profile))
    }

    /// [`Self::calibrated`] with the simulation clock started at
    /// `start_hour` of the campus day (see
    /// [`crate::churn::CalibratedChurn::with_clock`]), so short runs can
    /// land their workload window inside the preemption wave.
    pub fn calibrated_at(self, start_hour: f64) -> Self {
        let profile = osg_profile(&self.name).with_clock(start_hour);
        self.with_churn(ChurnModel::Calibrated(profile))
    }
}

/// Global grid parameters.
#[derive(Clone, Debug)]
pub struct GridParams {
    /// Size of the compressed Hadoop worker package fetched from the
    /// central repository (75 MB in the evaluation).
    pub package_bytes: u64,
    /// Fixed time for late-binding configuration + daemon startup after
    /// unpacking (decompression is "trivial" per the paper; this covers
    /// configuration rewriting and JVM startup).
    pub configure_time: SimDuration,
    /// Delay before a preempted Condor job re-enters the negotiation cycle
    /// (`OnExitRemove = FALSE` requeue plus negotiator latency).
    pub resubmit_delay: UniformDuration,
}

impl Default for GridParams {
    fn default() -> Self {
        GridParams {
            package_bytes: 75 * MIB,
            configure_time: SimDuration::from_secs(15),
            resubmit_delay: UniformDuration::new(
                SimDuration::from_secs(30),
                SimDuration::from_secs(90),
            ),
        }
    }
}

/// The five public-IP OSG sites the paper's submit file pins
/// (`requirements = GLIDEIN_ResourceName =?= ...`), with slot counts large
/// enough to host the paper's biggest (1101-node) experiment.
pub fn paper_sites() -> Vec<SiteConfig> {
    vec![
        SiteConfig::stable("FNAL_FERMIGRID", "fnal.gov", 400),
        SiteConfig::stable("USCMS-FNAL-WC1", "wc1.fnal.gov", 350),
        SiteConfig::stable("UCSDT2", "ucsd.edu", 250),
        SiteConfig::stable("AGLT2", "aglt2.org", 250),
        SiteConfig::stable("MIT_CMS", "mit.edu", 200),
    ]
}

/// Site list able to host `target_nodes` glideins with ~20% headroom for
/// churn replacement (a dead glidein resubmits while its slot drains, so
/// the controller needs spare capacity beyond the steady-state target).
///
/// Up to the paper's scale this is exactly [`paper_sites`] — the five
/// pinned OSG sites (1450 slots) cover every experiment in the paper,
/// 1101 nodes included, so existing runs are bit-identical. Past that,
/// synthetic 400-slot public-IP sites (`OSG_SYN_00` at `syn0.osg.grid`,
/// `OSG_SYN_01` at `syn1.osg.grid`, ...) are appended until capacity
/// reaches the headroomed target — what pinning more `requirements =
/// GLIDEIN_ResourceName` clauses onto additional OSG sites would look
/// like. They use the [`SiteConfig::stable`] profile, matching the five
/// real sites.
pub fn scaled_sites(target_nodes: usize) -> Vec<SiteConfig> {
    let mut sites = paper_sites();
    let needed = target_nodes + target_nodes / 5;
    let mut capacity: usize = sites.iter().map(|s| s.max_slots).sum();
    let mut i = 0usize;
    while capacity < needed {
        sites.push(SiteConfig::stable(
            &format!("OSG_SYN_{i:02}"),
            &format!("syn{i}.osg.grid"),
            400,
        ));
        capacity += 400;
        i += 1;
    }
    sites
}

/// [`scaled_sites`] with every site switched to its OSG-calibrated churn
/// profile — the site list for trace-calibrated studies (BENCH_churn,
/// EXPERIMENTS X16). Slot capacities, acquisition delays and outage
/// processes are untouched; only the preemption generator changes.
pub fn calibrated_sites(target_nodes: usize) -> Vec<SiteConfig> {
    scaled_sites(target_nodes)
        .into_iter()
        .map(SiteConfig::calibrated)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sites_are_the_five_public_ones() {
        let sites = paper_sites();
        assert_eq!(sites.len(), 5);
        assert!(sites.iter().all(|s| s.public_ip));
        let names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
        assert!(names.contains(&"FNAL_FERMIGRID"));
        assert!(names.contains(&"USCMS-FNAL-WC1"));
        assert!(names.contains(&"UCSDT2"));
        assert!(names.contains(&"AGLT2"));
        assert!(names.contains(&"MIT_CMS"));
        let total: usize = sites.iter().map(|s| s.max_slots).sum();
        assert!(total >= 1101, "must be able to host the 1101-node run");
    }

    #[test]
    fn unstable_sites_have_shorter_lifetimes() {
        let s = SiteConfig::stable("a", "a.edu", 10);
        let u = SiteConfig::unstable("b", "b.edu", 10);
        assert!(u.node_lifetime.mean() < s.node_lifetime.mean());
        assert!(u.outage_mtbf.is_some());
        assert!(s.outage_mtbf.is_none());
    }

    #[test]
    fn default_params_match_paper() {
        let p = GridParams::default();
        assert_eq!(p.package_bytes, 75 * MIB);
    }

    #[test]
    fn scaled_sites_match_paper_through_1101() {
        // Everything up to the paper's largest run must keep the exact
        // five-site list, or the historical fingerprints change.
        for target in [30, 100, 300, 1101] {
            let sites = scaled_sites(target);
            assert_eq!(sites.len(), 5, "target {target} must stay on paper sites");
        }
    }

    #[test]
    fn scaled_sites_synthesize_capacity_with_headroom() {
        for target in [3000usize, 10000] {
            let sites = scaled_sites(target);
            let capacity: usize = sites.iter().map(|s| s.max_slots).sum();
            assert!(
                capacity >= target + target / 5,
                "target {target}: capacity {capacity} lacks 20% headroom"
            );
            assert!(sites.iter().all(|s| s.public_ip));
            // Synthetic names are distinct from each other and the real ones.
            let mut names: Vec<&str> = sites.iter().map(|s| s.name.as_str()).collect();
            names.sort_unstable();
            names.dedup();
            assert_eq!(names.len(), sites.len(), "site names must be unique");
        }
        let sites = scaled_sites(3000);
        assert_eq!(sites[5].name, "OSG_SYN_00");
        assert_eq!(sites[5].domain, "syn0.osg.grid");
    }

    #[test]
    fn sites_default_to_exponential_churn() {
        // The historical fingerprints depend on this: scaled/paper sites
        // must keep the legacy preemption path unless explicitly switched.
        assert!(paper_sites()
            .iter()
            .chain(scaled_sites(3000).iter())
            .all(|s| s.churn == ChurnModel::Exponential));
    }

    #[test]
    fn calibrated_sites_carry_per_site_profiles() {
        let sites = calibrated_sites(1101);
        assert_eq!(sites.len(), 5);
        for s in &sites {
            assert_eq!(
                s.churn,
                ChurnModel::Calibrated(osg_profile(&s.name)),
                "site {} must carry its own profile",
                s.name
            );
        }
        // Only the churn generator changes.
        let plain = scaled_sites(1101);
        for (c, p) in sites.iter().zip(plain.iter()) {
            assert_eq!(c.max_slots, p.max_slots);
            assert_eq!(c.node_lifetime, p.node_lifetime);
        }
    }
}
