//! The loadgen cost model.
//!
//! The paper drives both clusters with `loadgen`, the Hadoop source-tree
//! load generator also used by the delay-scheduling and matchmaking
//! papers. Loadgen jobs read their input, keep a configurable fraction of
//! it as map output, shuffle, and keep a configurable fraction of the
//! shuffle as final output. These ratios plus per-byte CPU costs are the
//! free parameters we calibrate so the dedicated cluster's response time
//! lands in the paper's range (final values in DESIGN.md §5).

use hog_sim_core::units::MIB;

/// Cost/shape parameters of a loadgen-style MapReduce job.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LoadgenParams {
    /// Bytes of input per map task (one HDFS block: 64 MB).
    pub bytes_per_map: u64,
    /// Map output bytes as a fraction of map input bytes
    /// (`-keepmap`-style ratio).
    pub map_output_ratio: f64,
    /// Reduce output bytes as a fraction of reduce (shuffle) input
    /// (`-keepred`-style ratio).
    pub reduce_output_ratio: f64,
    /// Seconds of pure CPU work a map spends per MiB of input.
    pub map_cpu_secs_per_mib: f64,
    /// Seconds of pure CPU work a reduce spends per MiB of shuffled input
    /// (covers merge-sort plus the reduce function).
    pub reduce_cpu_secs_per_mib: f64,
    /// Fixed per-task startup overhead (JVM spawn, split localisation),
    /// seconds. The paper notes startup inflates over the WAN; the WAN
    /// part is added by the network model, not here.
    pub task_startup_secs: f64,
    /// Replication factor for job **output** files. Inherits the cluster's
    /// `dfs.replication` (10 on HOG, 3 on the dedicated cluster).
    pub output_replication: u16,
}

impl LoadgenParams {
    /// Calibrated defaults (see DESIGN.md §5): a map over a 64 MB block
    /// costs ~2 min of CPU on a 2.2 GHz Opteron-era core, shuffle keeps
    /// half the input, output keeps half the shuffle — shapes typical of
    /// the Facebook mix loadgen emulates. Chosen so the dedicated
    /// 100-core cluster is *saturated* by the 14 s-inter-arrival schedule
    /// (its response time is ≈3× the 21-minute submission span, as in the
    /// paper's Figure 4 baseline).
    pub fn calibrated() -> Self {
        LoadgenParams {
            bytes_per_map: 64 * MIB,
            map_output_ratio: 0.5,
            reduce_output_ratio: 0.5,
            map_cpu_secs_per_mib: 2.00,
            reduce_cpu_secs_per_mib: 0.80,
            task_startup_secs: 1.5,
            output_replication: 3,
        }
    }

    /// Total input bytes of a job with `maps` map tasks.
    pub fn input_bytes(&self, maps: u32) -> u64 {
        self.bytes_per_map * maps as u64
    }

    /// Total intermediate (map-output/shuffle) bytes of a job.
    pub fn shuffle_bytes(&self, maps: u32) -> u64 {
        (self.input_bytes(maps) as f64 * self.map_output_ratio) as u64
    }

    /// Intermediate bytes produced by a single map task.
    pub fn map_output_bytes(&self) -> u64 {
        (self.bytes_per_map as f64 * self.map_output_ratio) as u64
    }

    /// Final output bytes of a job.
    pub fn output_bytes(&self, maps: u32) -> u64 {
        (self.shuffle_bytes(maps) as f64 * self.reduce_output_ratio) as u64
    }

    /// CPU seconds for one map task.
    pub fn map_cpu_secs(&self) -> f64 {
        self.map_cpu_secs_per_mib * (self.bytes_per_map as f64 / MIB as f64)
    }

    /// CPU seconds for one reduce task of a job with `maps` maps and
    /// `reduces` reduces (its shuffle share).
    pub fn reduce_cpu_secs(&self, maps: u32, reduces: u32) -> f64 {
        if reduces == 0 {
            return 0.0;
        }
        let share = self.shuffle_bytes(maps) as f64 / reduces as f64;
        self.reduce_cpu_secs_per_mib * (share / MIB as f64)
    }
}

impl Default for LoadgenParams {
    fn default() -> Self {
        Self::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_accounting_is_consistent() {
        let p = LoadgenParams::calibrated();
        assert_eq!(p.input_bytes(10), 640 * MIB);
        assert_eq!(p.shuffle_bytes(10), 320 * MIB);
        assert_eq!(p.output_bytes(10), 160 * MIB);
        assert_eq!(p.map_output_bytes() * 10, p.shuffle_bytes(10));
    }

    #[test]
    fn cpu_costs_scale() {
        let p = LoadgenParams::calibrated();
        assert!((p.map_cpu_secs() - 2.00 * 64.0).abs() < 1e-9);
        // A 10-map, 5-reduce job: each reduce handles 64 MiB of shuffle.
        let r = p.reduce_cpu_secs(10, 5);
        assert!((r - 0.80 * 64.0).abs() < 1e-9);
        assert_eq!(p.reduce_cpu_secs(10, 0), 0.0);
    }

    #[test]
    fn more_reduces_mean_less_work_each() {
        let p = LoadgenParams::calibrated();
        assert!(p.reduce_cpu_secs(100, 10) > p.reduce_cpu_secs(100, 20));
    }
}
