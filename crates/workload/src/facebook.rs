//! Table I ("Facebook production workload") and Table II ("truncated
//! workload for this paper") of the HOG paper, as data.

/// One job-size bin of the Facebook workload.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Bin {
    /// 1-based bin number as in Table I.
    pub number: u8,
    /// Map-task-count range observed at Facebook (inclusive), e.g. 3..=20.
    pub maps_at_facebook: (u32, u32),
    /// Fraction of Facebook jobs in this bin (Table I "%Jobs", 0..1).
    pub fraction_at_facebook: f64,
    /// Representative #maps used in the benchmark (Table I "#Maps in
    /// Benchmark").
    pub maps: u32,
    /// Number of jobs of this bin in the 100-job benchmark (Table I "# of
    /// jobs in Benchmark").
    pub jobs_in_benchmark: u32,
    /// Reduce tasks per job (Table II for bins 1–6; bins 7–9 are an
    /// extrapolation of the paper's "non-decreasing pattern" and are only
    /// used by the untruncated generator).
    pub reduces: u32,
}

/// All nine bins. Bins 1–6 cover ≈89 % of Facebook's jobs and form the
/// paper's truncated workload.
pub const FACEBOOK_BINS: [Bin; 9] = [
    Bin { number: 1, maps_at_facebook: (1, 1), fraction_at_facebook: 0.39, maps: 1, jobs_in_benchmark: 38, reduces: 1 },
    Bin { number: 2, maps_at_facebook: (2, 2), fraction_at_facebook: 0.16, maps: 2, jobs_in_benchmark: 16, reduces: 1 },
    Bin { number: 3, maps_at_facebook: (3, 20), fraction_at_facebook: 0.14, maps: 10, jobs_in_benchmark: 14, reduces: 5 },
    Bin { number: 4, maps_at_facebook: (21, 60), fraction_at_facebook: 0.09, maps: 50, jobs_in_benchmark: 8, reduces: 10 },
    Bin { number: 5, maps_at_facebook: (61, 150), fraction_at_facebook: 0.06, maps: 100, jobs_in_benchmark: 6, reduces: 20 },
    Bin { number: 6, maps_at_facebook: (151, 300), fraction_at_facebook: 0.06, maps: 200, jobs_in_benchmark: 6, reduces: 30 },
    Bin { number: 7, maps_at_facebook: (301, 500), fraction_at_facebook: 0.04, maps: 400, jobs_in_benchmark: 4, reduces: 40 },
    Bin { number: 8, maps_at_facebook: (501, 1500), fraction_at_facebook: 0.04, maps: 800, jobs_in_benchmark: 4, reduces: 60 },
    Bin { number: 9, maps_at_facebook: (1501, u32::MAX), fraction_at_facebook: 0.03, maps: 4800, jobs_in_benchmark: 4, reduces: 120 },
];

/// Number of bins in the paper's truncated workload (jobs with more than
/// 300 maps are excluded).
pub const TRUNCATED_BIN_COUNT: usize = 6;

/// The truncated bins (Table II).
pub fn truncated_bins() -> &'static [Bin] {
    &FACEBOOK_BINS[..TRUNCATED_BIN_COUNT]
}

/// Mean job inter-arrival time at Facebook, seconds (paper: "roughly
/// exponential with a mean of 14 seconds").
pub const MEAN_INTERARRIVAL_SECS: f64 = 14.0;

/// The Table I bin whose *observed* map-count range contains `maps`
/// (trace ingestion: SWIM traces carry bytes, not bins, so imported
/// jobs are classified back into the taxonomy). Counts of zero clamp
/// to bin 1; counts past bin 8's range fall into the open-ended bin 9.
pub fn bin_for_maps(maps: u32) -> &'static Bin {
    let maps = maps.max(1);
    FACEBOOK_BINS
        .iter()
        .find(|b| maps >= b.maps_at_facebook.0 && maps <= b.maps_at_facebook.1)
        .unwrap_or(&FACEBOOK_BINS[8])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_job_counts() {
        // 100 jobs total in the full benchmark.
        let total: u32 = FACEBOOK_BINS.iter().map(|b| b.jobs_in_benchmark).sum();
        assert_eq!(total, 100);
        // 88 jobs in the truncated 6-bin workload.
        let truncated: u32 = truncated_bins().iter().map(|b| b.jobs_in_benchmark).sum();
        assert_eq!(truncated, 88);
    }

    #[test]
    fn table1_fractions() {
        let sum: f64 = FACEBOOK_BINS.iter().map(|b| b.fraction_at_facebook).sum();
        assert!((sum - 1.01).abs() < 1e-9, "Table I sums to 101% as printed");
        // First six bins cover about 89% (paper: "about 89% of the jobs").
        let six: f64 = truncated_bins().iter().map(|b| b.fraction_at_facebook).sum();
        assert!((six - 0.90).abs() < 0.011);
    }

    #[test]
    fn table2_reduce_counts() {
        let reduces: Vec<u32> = truncated_bins().iter().map(|b| b.reduces).collect();
        assert_eq!(reduces, vec![1, 1, 5, 10, 20, 30]);
        // Non-decreasing with maps, across all bins.
        let all: Vec<u32> = FACEBOOK_BINS.iter().map(|b| b.reduces).collect();
        assert!(all.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn truncation_respects_300_map_cutoff() {
        assert!(truncated_bins().iter().all(|b| b.maps <= 300));
        assert!(FACEBOOK_BINS[TRUNCATED_BIN_COUNT..]
            .iter()
            .all(|b| b.maps > 300));
    }

    #[test]
    fn bin_classification_covers_every_count() {
        assert_eq!(bin_for_maps(0).number, 1);
        assert_eq!(bin_for_maps(1).number, 1);
        assert_eq!(bin_for_maps(2).number, 2);
        assert_eq!(bin_for_maps(10).number, 3);
        assert_eq!(bin_for_maps(300).number, 6);
        assert_eq!(bin_for_maps(301).number, 7);
        assert_eq!(bin_for_maps(1_000_000).number, 9);
        // The representative benchmark sizes classify into their own bin.
        for b in &FACEBOOK_BINS {
            assert_eq!(bin_for_maps(b.maps).number, b.number);
        }
    }

    #[test]
    fn total_map_tasks_in_truncated_workload() {
        let maps: u32 = truncated_bins()
            .iter()
            .map(|b| b.maps * b.jobs_in_benchmark)
            .sum();
        assert_eq!(maps, 38 + 32 + 140 + 400 + 600 + 1200);
    }
}
