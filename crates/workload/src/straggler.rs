//! Heavy-tailed straggler mix.
//!
//! Real MapReduce clusters show a minority of tasks running far slower
//! than their peers — contended disks, background daemons, failing
//! hardware (the original MapReduce paper's motivation for backup
//! tasks). The synthetic workload's task times are otherwise uniform
//! per bin, which makes speculation look better than it is: every copy
//! of a task runs at the same speed, so the only stragglers are tasks
//! on preempted nodes. [`StragglerMix`] restores the heavy tail: a
//! seeded fraction of tasks is slowed by a log-normally distributed
//! multiplier, drawn from a dedicated RNG stream so enabling the mix
//! perturbs nothing else in the simulation.

use hog_sim_core::dist::standard_normal;
use hog_sim_core::SimRng;

/// Parameters of the straggler slowdown mix. Applied multiplicatively
/// to task CPU durations by the cluster when configured
/// (`ClusterConfig::straggler` in `hog-core`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StragglerMix {
    /// Probability that a task attempt is a straggler (0..1).
    pub fraction: f64,
    /// Median slowdown multiplier of a straggler (≥ 1).
    pub slowdown_median: f64,
    /// Log-normal sigma of the slowdown multiplier: larger values
    /// thicken the tail (a few tasks 5–10× slow).
    pub slowdown_sigma: f64,
}

impl StragglerMix {
    /// Defaults matching published straggler studies: ~5 % of tasks
    /// straggle, typically 2× slow, log-normal tail reaching several×.
    pub fn osg_default() -> Self {
        StragglerMix {
            fraction: 0.05,
            slowdown_median: 2.0,
            slowdown_sigma: 0.5,
        }
    }

    /// CPU-time multiplier for one task attempt: 1.0 for the
    /// well-behaved majority, a heavy-tailed slowdown ≥ 1 for the
    /// straggler fraction. Consumes one RNG draw for the straggler
    /// coin plus two more (Box–Muller) only when it lands.
    pub fn factor(&self, rng: &mut SimRng) -> f64 {
        if self.fraction <= 0.0 || !rng.chance(self.fraction) {
            return 1.0;
        }
        let z = standard_normal(rng);
        (self.slowdown_median.max(1.0) * (self.slowdown_sigma.max(0.0) * z).exp()).max(1.0)
    }
}

impl Default for StragglerMix {
    fn default() -> Self {
        Self::osg_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_runs_at_full_speed() {
        let mix = StragglerMix::osg_default();
        let mut rng = SimRng::seed_from_u64(42);
        let n = 20_000;
        let slowed = (0..n).filter(|_| mix.factor(&mut rng) > 1.0).count();
        let frac = slowed as f64 / n as f64;
        assert!((frac - 0.05).abs() < 0.01, "straggler fraction {frac}");
    }

    #[test]
    fn stragglers_have_a_heavy_tail() {
        let mix = StragglerMix::osg_default();
        let mut rng = SimRng::seed_from_u64(7);
        let factors: Vec<f64> = (0..50_000)
            .map(|_| mix.factor(&mut rng))
            .filter(|&f| f > 1.0)
            .collect();
        assert!(!factors.is_empty());
        assert!(factors.iter().all(|&f| f >= 1.0));
        // The log-normal tail should produce some ≥ 4× laggards but keep
        // the typical straggler near the 2× median.
        assert!(factors.iter().any(|&f| f > 4.0), "no deep stragglers");
        let mut sorted = factors.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!((median - 2.0).abs() < 0.2, "straggler median {median}");
    }

    #[test]
    fn zero_fraction_is_inert_and_drawless() {
        let mix = StragglerMix {
            fraction: 0.0,
            ..StragglerMix::osg_default()
        };
        let mut a = SimRng::seed_from_u64(9);
        let mut b = SimRng::seed_from_u64(9);
        for _ in 0..100 {
            assert_eq!(mix.factor(&mut a), 1.0);
        }
        // fraction == 0 short-circuits before the coin: streams stay
        // aligned with an untouched RNG.
        assert_eq!(a.unit(), b.unit());
    }

    #[test]
    fn deterministic_per_seed() {
        let mix = StragglerMix::osg_default();
        let mut a = SimRng::seed_from_u64(3);
        let mut b = SimRng::seed_from_u64(3);
        let fa: Vec<f64> = (0..1000).map(|_| mix.factor(&mut a)).collect();
        let fb: Vec<f64> = (0..1000).map(|_| mix.factor(&mut b)).collect();
        assert_eq!(fa, fb);
    }
}
