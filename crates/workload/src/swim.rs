//! SWIM-format trace ingestion.
//!
//! The SWIM workload repository (Chen et al., "The Case for Evaluating
//! MapReduce Performance Using Workload Suites") publishes day-long
//! Facebook traces as tab-separated lines:
//!
//! ```text
//! job_id <TAB> submit_secs <TAB> gap_secs <TAB> input_bytes <TAB> shuffle_bytes <TAB> output_bytes
//! ```
//!
//! SWIM describes jobs by *bytes*, not task counts, so replay maps the
//! byte columns back onto the simulator's task model: map count is the
//! input size in 64 MB blocks (per [`LoadgenParams::bytes_per_map`]),
//! and the reduce count comes from the Table I bin whose observed
//! map-count range contains that job ([`bin_for_maps`]) — the same
//! non-decreasing Table II pattern the synthetic generator uses. A
//! schedule generated from the bins therefore round-trips exactly;
//! arbitrary reduce counts (e.g. hand-edited CSV imports) are
//! re-derived from the bin taxonomy.

use crate::facebook::bin_for_maps;
use crate::jobmodel::LoadgenParams;
use crate::schedule::{JobSpec, SubmissionSchedule};
use crate::trace::TraceError;
use hog_sim_core::{SimDuration, SimTime};

/// Render a schedule as a SWIM trace (no header; SWIM files have none).
/// Byte columns follow the cost model: `maps ·` [`LoadgenParams::bytes_per_map`]
/// input, the configured shuffle ratio, and the final-output ratio.
pub fn to_swim(schedule: &SubmissionSchedule, params: &LoadgenParams) -> String {
    let mut out = String::new();
    let mut prev = SimTime::ZERO;
    for j in schedule.jobs() {
        let gap = j.submit_at.saturating_since(prev);
        prev = j.submit_at;
        out.push_str(&format!(
            "job{}\t{:.3}\t{:.3}\t{}\t{}\t{}\n",
            j.id,
            j.submit_at.as_secs_f64(),
            gap.as_secs_f64(),
            params.input_bytes(j.maps),
            params.shuffle_bytes(j.maps),
            params.output_bytes(j.maps),
        ));
    }
    out
}

/// Parse a SWIM trace into a replayable schedule. Rows must be
/// time-ordered; blank lines and `#` comments are skipped. Job ids are
/// assigned in row order (the trace's own ids are free-form strings and
/// are not preserved).
pub fn from_swim(text: &str, params: &LoadgenParams) -> Result<SubmissionSchedule, TraceError> {
    let block = params.bytes_per_map.max(1);
    let mut jobs = Vec::new();
    let mut last = SimTime::ZERO;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |message: String| TraceError {
            line: i + 1,
            message,
        };
        let cols: Vec<&str> = line.split('\t').map(str::trim).collect();
        if cols.len() != 6 {
            return Err(err(format!(
                "expected 6 tab-separated columns, got {}",
                cols.len()
            )));
        }
        let submit_secs: f64 = cols[1]
            .parse()
            .map_err(|e| err(format!("bad submit_secs: {e}")))?;
        if !submit_secs.is_finite() || submit_secs < 0.0 {
            return Err(err("submit_secs must be finite and non-negative".into()));
        }
        let input_bytes: u64 = cols[3]
            .parse()
            .map_err(|e| err(format!("bad input_bytes: {e}")))?;
        // Columns 4–5 (shuffle/output bytes) are validated but not
        // needed: the cost model re-derives them from the map count.
        for (name, col) in [("shuffle_bytes", cols[4]), ("output_bytes", cols[5])] {
            col.parse::<u64>()
                .map_err(|e| err(format!("bad {name}: {e}")))?;
        }
        let maps = input_bytes.div_ceil(block).max(1) as u32;
        let bin = bin_for_maps(maps);
        let submit_at = SimTime::ZERO + SimDuration::from_secs_f64(submit_secs);
        if submit_at < last {
            return Err(err("rows must be time-ordered".into()));
        }
        last = submit_at;
        jobs.push(JobSpec {
            id: jobs.len() as u32,
            submit_at,
            bin: bin.number,
            maps,
            reduces: bin.reduces,
        });
    }
    Ok(SubmissionSchedule::from_jobs(jobs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_bin_generated_schedules() {
        let params = LoadgenParams::calibrated();
        for original in [
            SubmissionSchedule::facebook_truncated(9),
            SubmissionSchedule::facebook_day(3),
        ] {
            let swim = to_swim(&original, &params);
            let parsed = from_swim(&swim, &params).unwrap();
            assert_eq!(parsed.len(), original.len());
            for (a, b) in original.jobs().iter().zip(parsed.jobs()) {
                assert_eq!(a.bin, b.bin);
                assert_eq!(a.maps, b.maps);
                assert_eq!(a.reduces, b.reduces);
                assert_eq!(a.submit_at.as_millis(), b.submit_at.as_millis());
            }
        }
    }

    #[test]
    fn maps_come_from_input_bytes() {
        let params = LoadgenParams::calibrated();
        // 10 blocks exactly, and a ragged 10.5-block job that rounds up.
        let ten = 10 * params.bytes_per_map;
        let text = format!(
            "a\t0.0\t0.0\t{ten}\t0\t0\nb\t5.0\t5.0\t{}\t0\t0\n",
            ten + params.bytes_per_map / 2
        );
        let s = from_swim(&text, &params).unwrap();
        assert_eq!(s.jobs()[0].maps, 10);
        assert_eq!(s.jobs()[0].bin, 3); // 3..=20 observed range
        assert_eq!(s.jobs()[0].reduces, 5);
        assert_eq!(s.jobs()[1].maps, 11);
    }

    #[test]
    fn rejects_malformed_rows() {
        let p = LoadgenParams::calibrated();
        assert!(from_swim("a\t0.0\t0.0\t1\t1\n", &p).is_err(), "5 columns");
        assert!(from_swim("a\tx\t0.0\t1\t1\t1\n", &p).is_err(), "bad float");
        assert!(from_swim("a\t0.0\t0.0\tz\t1\t1\n", &p).is_err(), "bad bytes");
        let unordered = "a\t5.0\t0.0\t1\t1\t1\nb\t1.0\t0.0\t1\t1\t1\n";
        let e = from_swim(unordered, &p).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("time-ordered"));
    }

    #[test]
    fn comments_and_tiny_jobs_handled() {
        let p = LoadgenParams::calibrated();
        let s = from_swim("# header comment\n\na\t0.0\t0.0\t1\t0\t0\n", &p).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.jobs()[0].maps, 1, "sub-block inputs clamp to one map");
        assert_eq!(s.jobs()[0].bin, 1);
    }
}
