//! Schedule import/export.
//!
//! The paper's schedule is synthesised from the Facebook distribution, but
//! downstream users may want to replay their own traces. A schedule
//! round-trips through a four-column CSV:
//!
//! ```csv
//! submit_secs,bin,maps,reduces
//! 0.000,1,1,1
//! 13.271,3,10,5
//! ```

use crate::schedule::{JobSpec, SubmissionSchedule};
use hog_sim_core::{SimDuration, SimTime};

/// Render a schedule as CSV (header included).
pub fn to_csv(schedule: &SubmissionSchedule) -> String {
    let mut out = String::from("submit_secs,bin,maps,reduces\n");
    for j in schedule.jobs() {
        out.push_str(&format!(
            "{:.3},{},{},{}\n",
            j.submit_at.as_secs_f64(),
            j.bin,
            j.maps,
            j.reduces
        ));
    }
    out
}

/// Parse error for [`from_csv`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TraceError {
    /// 1-based line number of the offending row.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "trace line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for TraceError {}

/// Parse a schedule from CSV. Rows must be time-ordered; the header row is
/// optional. Job ids are assigned in row order.
pub fn from_csv(text: &str) -> Result<SubmissionSchedule, TraceError> {
    let mut jobs = Vec::new();
    let mut last = SimTime::ZERO;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with("submit_secs") || line.starts_with('#') {
            continue;
        }
        let err = |message: String| TraceError {
            line: i + 1,
            message,
        };
        let cols: Vec<&str> = line.split(',').map(str::trim).collect();
        if cols.len() != 4 {
            return Err(err(format!("expected 4 columns, got {}", cols.len())));
        }
        let submit_secs: f64 = cols[0]
            .parse()
            .map_err(|e| err(format!("bad submit_secs: {e}")))?;
        if !submit_secs.is_finite() || submit_secs < 0.0 {
            return Err(err("submit_secs must be finite and non-negative".into()));
        }
        let bin: u8 = cols[1].parse().map_err(|e| err(format!("bad bin: {e}")))?;
        let maps: u32 = cols[2].parse().map_err(|e| err(format!("bad maps: {e}")))?;
        let reduces: u32 = cols[3]
            .parse()
            .map_err(|e| err(format!("bad reduces: {e}")))?;
        if maps == 0 {
            return Err(err("a job needs at least one map".into()));
        }
        let submit_at = SimTime::ZERO + SimDuration::from_secs_f64(submit_secs);
        if submit_at < last {
            return Err(err("rows must be time-ordered".into()));
        }
        last = submit_at;
        jobs.push(JobSpec {
            id: jobs.len() as u32,
            submit_at,
            bin,
            maps,
            reduces,
        });
    }
    Ok(SubmissionSchedule::from_jobs(jobs))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_preserves_schedule() {
        let original = SubmissionSchedule::facebook_truncated(9);
        let csv = to_csv(&original);
        let parsed = from_csv(&csv).unwrap();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.jobs().iter().zip(parsed.jobs()) {
            assert_eq!(a.bin, b.bin);
            assert_eq!(a.maps, b.maps);
            assert_eq!(a.reduces, b.reduces);
            // CSV stores milliseconds precision (3 decimals).
            assert_eq!(a.submit_at.as_millis(), b.submit_at.as_millis());
        }
    }

    #[test]
    fn header_and_comments_skipped() {
        let csv = "submit_secs,bin,maps,reduces\n# comment\n0.0,1,2,1\n\n5.5,3,10,5\n";
        let s = from_csv(csv).unwrap();
        assert_eq!(s.len(), 2);
        assert_eq!(s.jobs()[1].maps, 10);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(from_csv("1.0,1,2").is_err(), "missing column");
        assert!(from_csv("x,1,2,1").is_err(), "bad float");
        assert!(from_csv("-1.0,1,2,1").is_err(), "negative time");
        assert!(from_csv("0.0,1,0,1").is_err(), "zero maps");
        let unordered = "5.0,1,1,1\n1.0,1,1,1\n";
        let e = from_csv(unordered).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("time-ordered"));
    }

    #[test]
    fn error_display() {
        let e = from_csv("oops").unwrap_err();
        let s = e.to_string();
        assert!(s.contains("line 1"));
    }
}
