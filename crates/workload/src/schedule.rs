//! Submission-schedule generation.
//!
//! "Our submission schedule has similar job sizes and job inter-arrival
//! times. In particular, our job size distribution follows the first six
//! bins of job sizes shown in Table I ... the distribution of inter-arrival
//! times is exponential with a mean of 14 seconds, making our total
//! submission schedule 21 minutes long."

use crate::facebook::{truncated_bins, Bin, FACEBOOK_BINS, MEAN_INTERARRIVAL_SECS};
use hog_sim_core::dist::Exponential;
use hog_sim_core::{SimDuration, SimRng, SimTime};

/// One job of the benchmark workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct JobSpec {
    /// Dense id in submission order.
    pub id: u32,
    /// Absolute submission instant.
    pub submit_at: SimTime,
    /// Table I bin number (1-based).
    pub bin: u8,
    /// Number of map tasks (= number of 64 MB input blocks).
    pub maps: u32,
    /// Number of reduce tasks (Table II).
    pub reduces: u32,
}

/// A generated workload: jobs sorted by submission time.
#[derive(Clone, Debug)]
pub struct SubmissionSchedule {
    jobs: Vec<JobSpec>,
}

impl SubmissionSchedule {
    /// The paper's workload: 88 jobs from the first six bins, exponential
    /// inter-arrivals with mean 14 s. Deterministic in `seed`.
    pub fn facebook_truncated(seed: u64) -> Self {
        Self::from_bins(truncated_bins(), seed)
    }

    /// The full nine-bin, 100-job variant of the Zaharia et al. schedule
    /// (needs a cluster able to hold bin-9's 4800-map jobs).
    pub fn facebook_full(seed: u64) -> Self {
        Self::from_bins(&FACEBOOK_BINS, seed)
    }

    /// Generic generator: `bins[i].jobs_in_benchmark` jobs per bin, order
    /// shuffled, exponential inter-arrivals.
    pub fn from_bins(bins: &[Bin], seed: u64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        // Materialise the per-bin job mix, then shuffle the order (the
        // trace interleaves sizes randomly).
        let mut sizes: Vec<&Bin> = Vec::new();
        for b in bins {
            for _ in 0..b.jobs_in_benchmark {
                sizes.push(b);
            }
        }
        rng.shuffle(&mut sizes);
        let inter = Exponential::from_mean_secs(MEAN_INTERARRIVAL_SECS);
        let mut t = SimTime::ZERO;
        let jobs = sizes
            .into_iter()
            .enumerate()
            .map(|(i, b)| {
                let spec = JobSpec {
                    id: i as u32,
                    submit_at: t,
                    bin: b.number,
                    maps: b.maps,
                    reduces: b.reduces,
                };
                t += inter.sample(&mut rng);
                spec
            })
            .collect();
        SubmissionSchedule { jobs }
    }

    /// A day-long trace in the shape of the SWIM Facebook samples:
    /// ≈1000 jobs over 24 hours whose arrival intensity follows a
    /// diurnal curve (peak mid-afternoon, trough at night), sizes drawn
    /// from the truncated Table I bin mix. This is the long-horizon
    /// replay workload — the 88-job truncation ends after 21 minutes
    /// and never sees a diurnal preemption wave.
    pub fn facebook_day(seed: u64) -> Self {
        Self::diurnal_day(seed, 1000, 14.0, 0.5)
    }

    /// Generic day-long generator: ≈`jobs_per_day` jobs over 24 h, with
    /// instantaneous arrival rate `1 + amplitude·cos(2π(hour − peak_hour)/24)`
    /// times the daily mean. Sizes are drawn from the truncated bins
    /// weighted by their Facebook job fractions. Deterministic in `seed`.
    pub fn diurnal_day(seed: u64, jobs_per_day: usize, peak_hour: f64, amplitude: f64) -> Self {
        let mut rng = SimRng::seed_from_u64(seed);
        let bins = truncated_bins();
        let total_frac: f64 = bins.iter().map(|b| b.fraction_at_facebook).sum();
        let base_gap = 86_400.0 / jobs_per_day.max(1) as f64;
        let amplitude = amplitude.clamp(0.0, 0.99);
        let day_end = SimTime::ZERO + SimDuration::from_secs(86_400);
        let mut t = SimTime::ZERO;
        let mut jobs = Vec::new();
        while t < day_end {
            let mut u = rng.unit() * total_frac;
            let mut bin = &bins[0];
            for b in bins {
                if u < b.fraction_at_facebook {
                    bin = b;
                    break;
                }
                u -= b.fraction_at_facebook;
            }
            jobs.push(JobSpec {
                id: jobs.len() as u32,
                submit_at: t,
                bin: bin.number,
                maps: bin.maps,
                reduces: bin.reduces,
            });
            // The cosine intensity integrates to jobs_per_day over the
            // day, so scaling the exponential mean by its reciprocal
            // compresses arrivals near the peak without changing the
            // daily total in expectation.
            let hour = (t.as_secs_f64() / 3600.0) % 24.0;
            let rate = 1.0
                + amplitude * (std::f64::consts::TAU * (hour - peak_hour) / 24.0).cos();
            let gap = Exponential::from_mean_secs(base_gap / rate.max(0.01));
            t += gap.sample(&mut rng);
        }
        SubmissionSchedule { jobs }
    }

    /// Build a schedule from explicit job specs (trace import). Jobs must
    /// already be time-ordered with dense ids.
    pub fn from_jobs(jobs: Vec<JobSpec>) -> Self {
        debug_assert!(jobs.windows(2).all(|w| w[0].submit_at <= w[1].submit_at));
        SubmissionSchedule { jobs }
    }

    /// Jobs in submission order.
    pub fn jobs(&self) -> &[JobSpec] {
        &self.jobs
    }

    /// Number of jobs.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the schedule is empty.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Submission instant of the last job (schedule makespan).
    pub fn last_submission(&self) -> SimTime {
        self.jobs.last().map_or(SimTime::ZERO, |j| j.submit_at)
    }

    /// Total map tasks across all jobs.
    pub fn total_maps(&self) -> u64 {
        self.jobs.iter().map(|j| j.maps as u64).sum()
    }

    /// Total reduce tasks across all jobs.
    pub fn total_reduces(&self) -> u64 {
        self.jobs.iter().map(|j| j.reduces as u64).sum()
    }

    /// Number of jobs in a given bin (report helper).
    pub fn jobs_in_bin(&self, bin: u8) -> usize {
        self.jobs.iter().filter(|j| j.bin == bin).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hog_sim_core::SimDuration;

    #[test]
    fn truncated_schedule_matches_table_one() {
        let s = SubmissionSchedule::facebook_truncated(1);
        assert_eq!(s.len(), 88);
        assert_eq!(s.jobs_in_bin(1), 38);
        assert_eq!(s.jobs_in_bin(2), 16);
        assert_eq!(s.jobs_in_bin(3), 14);
        assert_eq!(s.jobs_in_bin(4), 8);
        assert_eq!(s.jobs_in_bin(5), 6);
        assert_eq!(s.jobs_in_bin(6), 6);
        assert_eq!(s.jobs_in_bin(7), 0, "truncated: no >300-map jobs");
        assert_eq!(s.total_maps(), 2410);
        assert_eq!(s.total_reduces(), 38 + 16 + 70 + 80 + 120 + 180);
    }

    #[test]
    fn full_schedule_has_100_jobs() {
        let s = SubmissionSchedule::facebook_full(1);
        assert_eq!(s.len(), 100);
        assert_eq!(s.jobs_in_bin(9), 4);
    }

    #[test]
    fn schedule_spans_about_21_minutes() {
        // Mean of 87 exponential(14 s) gaps = 1218 s ≈ 20.3 min. Average
        // over seeds to smooth sampling noise.
        let mut total = 0.0;
        let n = 40;
        for seed in 0..n {
            total += SubmissionSchedule::facebook_truncated(seed)
                .last_submission()
                .as_secs_f64();
        }
        let mean_span = total / n as f64;
        assert!(
            (1000.0..1500.0).contains(&mean_span),
            "mean schedule span {mean_span}s should be ≈21 min"
        );
    }

    #[test]
    fn submissions_are_sorted_and_start_at_zero() {
        let s = SubmissionSchedule::facebook_truncated(7);
        assert_eq!(s.jobs()[0].submit_at, SimTime::ZERO);
        assert!(s
            .jobs()
            .windows(2)
            .all(|w| w[0].submit_at <= w[1].submit_at));
        assert!(s.jobs().iter().enumerate().all(|(i, j)| j.id == i as u32));
    }

    #[test]
    fn interarrival_mean_is_close_to_14s() {
        let mut gaps = Vec::new();
        for seed in 0..30 {
            let s = SubmissionSchedule::facebook_truncated(seed);
            for w in s.jobs().windows(2) {
                gaps.push((w[1].submit_at - w[0].submit_at).as_secs_f64());
            }
        }
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 14.0).abs() < 1.0, "mean gap {mean}");
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let a = SubmissionSchedule::facebook_truncated(5);
        let b = SubmissionSchedule::facebook_truncated(5);
        let c = SubmissionSchedule::facebook_truncated(6);
        assert_eq!(a.jobs(), b.jobs());
        assert_ne!(a.jobs(), c.jobs());
    }

    #[test]
    fn day_trace_is_day_long_and_thousand_jobs() {
        let s = SubmissionSchedule::facebook_day(7);
        assert!(
            (800..1200).contains(&s.len()),
            "day trace has {} jobs, wanted ≈1000",
            s.len()
        );
        let span = s.last_submission().as_secs_f64();
        assert!(
            (80_000.0..86_400.0).contains(&span),
            "day trace spans {span}s"
        );
        assert!(s.jobs().windows(2).all(|w| w[0].submit_at <= w[1].submit_at));
        assert!(s.jobs().iter().enumerate().all(|(i, j)| j.id == i as u32));
        // Only truncated bins appear.
        assert!(s.jobs().iter().all(|j| j.bin >= 1 && j.bin <= 6));
    }

    #[test]
    fn day_trace_compresses_arrivals_at_the_peak() {
        // Count jobs in the 6 h window around the 14:00 peak vs the 6 h
        // window around the 02:00 trough, averaged over seeds.
        let mut peak = 0usize;
        let mut trough = 0usize;
        for seed in 0..8 {
            for j in SubmissionSchedule::facebook_day(seed).jobs() {
                let hour = j.submit_at.as_secs_f64() / 3600.0;
                if (11.0..17.0).contains(&hour) {
                    peak += 1;
                } else if !(5.0..23.0).contains(&hour) {
                    trough += 1;
                }
            }
        }
        assert!(
            peak as f64 > 1.5 * trough as f64,
            "peak window {peak} vs trough {trough}: diurnal shape missing"
        );
    }

    #[test]
    fn day_trace_deterministic_and_seed_sensitive() {
        let a = SubmissionSchedule::facebook_day(5);
        let b = SubmissionSchedule::facebook_day(5);
        let c = SubmissionSchedule::facebook_day(6);
        assert_eq!(a.jobs(), b.jobs());
        assert_ne!(a.jobs(), c.jobs());
    }

    #[test]
    fn flat_diurnal_day_is_roughly_uniform() {
        let s = SubmissionSchedule::diurnal_day(11, 500, 14.0, 0.0);
        let first_half = s
            .jobs()
            .iter()
            .filter(|j| j.submit_at.as_secs_f64() < 43_200.0)
            .count();
        let ratio = first_half as f64 / s.len() as f64;
        assert!((0.4..0.6).contains(&ratio), "first-half ratio {ratio}");
    }

    #[test]
    fn shuffled_order_mixes_bins() {
        // The first 10 submissions should not all be bin 1 (property of
        // the shuffle; holds for these seeds deterministically).
        let s = SubmissionSchedule::facebook_truncated(3);
        let first_bins: Vec<u8> = s.jobs().iter().take(10).map(|j| j.bin).collect();
        assert!(first_bins.iter().any(|&b| b != first_bins[0]));
        let _ = SimDuration::ZERO;
    }
}
