//! The Facebook production workload used in the HOG evaluation.
//!
//! Zaharia et al. (delay scheduling, EuroSys 2010) sampled job
//! inter-arrival times and input sizes from a week of the Facebook
//! production cluster (October 2009) and quantised job sizes into nine
//! bins. The HOG paper reuses that schedule: exponential inter-arrivals
//! with mean 14 s, and — because its test clusters are small — only the
//! first six bins (jobs of ≤ 300 map tasks), 88 jobs, a ≈21-minute
//! submission schedule. The paper adds reduce-task counts per bin
//! (Table II), non-decreasing in job size.
//!
//! * [`facebook`] — the bin definitions of Tables I & II.
//! * [`schedule`] — deterministic submission-schedule generation,
//!   including the day-long diurnal trace
//!   ([`SubmissionSchedule::facebook_day`]).
//! * [`jobmodel`] — the loadgen cost model (map output ratio, CPU cost)
//!   applied to every generated job.
//! * [`trace`] / [`swim`] — schedule import/export: the four-column CSV
//!   round-trip and SWIM-format (tab-separated, byte-sized) ingestion.
//! * [`straggler`] — the heavy-tailed task-slowdown mix the cluster can
//!   layer on top of any schedule.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod facebook;
pub mod jobmodel;
pub mod schedule;
pub mod straggler;
pub mod swim;
pub mod trace;

pub use facebook::{bin_for_maps, Bin, FACEBOOK_BINS, TRUNCATED_BIN_COUNT};
pub use jobmodel::LoadgenParams;
pub use schedule::{JobSpec, SubmissionSchedule};
pub use straggler::StragglerMix;
pub use swim::{from_swim, to_swim};
pub use trace::{from_csv, to_csv};
