//! Regenerate Figure 4 — "HOG vs. Cluster Equivalent Performance".
//!
//! Sweeps the paper's twelve pool sizes (three seeded runs each) plus the
//! dedicated 100-core baseline, prints the response-time table, and
//! reports the equivalent-performance crossover (paper: 99–100 nodes).
//!
//! Usage: `fig4 [--quick] [--threads N] [--runs N]`
//! `--quick` samples a 5-point subset (fast smoke run).

use hog_core::experiments::{figure4, FIG4_POOL_SIZES};
use hog_core::report::TextTable;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let threads = hog_bench::arg_usize(&args, "--threads", num_threads());
    let runs = hog_bench::arg_usize(&args, "--runs", 3);
    let sizes: Vec<usize> = if quick {
        vec![40, 60, 100, 180, 500]
    } else {
        FIG4_POOL_SIZES.to_vec()
    };

    eprintln!(
        "fig4: {} pool sizes × {runs} runs + {runs} baseline runs, {threads} threads",
        sizes.len()
    );
    let wall = Instant::now();
    let fig = figure4(&sizes, runs, threads);
    eprintln!("fig4: swept in {:.0}s wall", wall.elapsed().as_secs_f64());

    let mut t = TextTable::new(&["Nodes in HOG", "Runs (s)", "Mean response (s)", "vs cluster"]);
    let base = fig.cluster_mean();
    for p in &fig.hog {
        let runs_s = p
            .responses
            .iter()
            .map(|r| format!("{r:.0}"))
            .collect::<Vec<_>>()
            .join(" ");
        t.row(&[
            p.nodes.to_string(),
            runs_s,
            format!("{:.0}", p.mean()),
            format!("{:+.1}%", (p.mean() / base - 1.0) * 100.0),
        ]);
    }
    t.row(&[
        "cluster (100 cores)".into(),
        fig.cluster
            .iter()
            .map(|r| format!("{r:.0}"))
            .collect::<Vec<_>>()
            .join(" "),
        format!("{base:.0}"),
        "baseline".into(),
    ]);
    let rendered = t.render();
    println!("FIGURE 4 — HOG vs. Cluster Equivalent Performance\n{rendered}");
    match fig.equivalence_at(0.05) {
        Some(n) => println!(
            "Equivalent performance (within 5%) reached at {n} HOG nodes (paper: [99, 100])."
        ),
        None => println!("No sampled pool size came within 5% of the cluster baseline."),
    }
    match fig.crossover_nodes() {
        Some(n) => println!("Strictly faster than the cluster from {n} HOG nodes."),
        None => println!("No sampled pool size strictly beat the cluster."),
    }

    // CSV export.
    let mut csv = TextTable::new(&["nodes", "run", "response_secs"]);
    for p in &fig.hog {
        for (i, r) in p.responses.iter().enumerate() {
            csv.row(&[p.nodes.to_string(), i.to_string(), format!("{r:.3}")]);
        }
    }
    for (i, r) in fig.cluster.iter().enumerate() {
        csv.row(&["cluster".into(), i.to_string(), format!("{r:.3}")]);
    }
    let dir = hog_bench::results_dir();
    std::fs::write(dir.join("fig4.csv"), csv.to_csv()).expect("write fig4.csv");
    std::fs::write(dir.join("fig4.txt"), &rendered).expect("write fig4.txt");
    eprintln!("(written to {}/fig4.{{csv,txt}})", dir.display());
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get().saturating_sub(1).max(1))
        .unwrap_or(4)
}
