//! Tracked scale benchmark: replay the truncated Facebook workload on HOG
//! pools of 100 / 300 / 1101 nodes (the paper's §V sweep) plus synthetic
//! 3000- and 10000-node extrapolation tiers, and record
//! the *simulator's* performance trajectory — wall-clock, events/sec,
//! fluid-net recompute count and work, and peak event-queue depth — plus a
//! determinism fingerprint of the simulated outcome so perf work can prove
//! it changed nothing observable.
//!
//! Usage:
//!   scale [--smoke] [--seed S] [--out PATH] [--check BASELINE]
//!         [--threads N] [--verify-threads]
//!
//! * `--smoke`          run only the 100-node tier (CI per-PR gate)
//! * `--seed S`         cluster seed (default 7; schedule seed is 1000+S)
//! * `--out PATH`       where to write the JSON report (default BENCH_scale.json)
//! * `--check BASELINE` compare against a previously written report and
//!   exit non-zero if any shared tier's wall-clock regressed by more than
//!   25% (and by more than an absolute noise floor) **or** its outcome
//!   fingerprint changed (the simulation no longer produces bit-identical
//!   results)
//!
//! * `--threads N`      run sweep cells N-wide (default: available cores;
//!   every cell is an independent deterministic simulation, so the report
//!   is the same at any width — only wall clocks move)
//! * `--verify-threads` rerun the sweep at `--threads 1` and assert the
//!   two reports are byte-identical modulo wall-clock fields
//!
//! The JSON is hand-rolled (no serde in the workspace); keep the schema in
//! sync with `.github/workflows/ci.yml` and DESIGN.md §10.

use hog_core::driver::{run_workload, RunResult};
use hog_core::ClusterConfig;
use hog_sim_core::SimDuration;
use hog_workload::SubmissionSchedule;
use std::fmt::Write as _;
use std::time::Instant;

/// Pool sizes replayed by the full benchmark. 100/300/1101 are the paper's
/// §V sweep (1101 its upper bound); 3000 and 10000 extrapolate past the
/// paper onto synthetic OSG sites (`scaled_sites`) to exercise the
/// batched master tick at scales the per-event dispatch could not reach.
const TIERS: [usize; 5] = [100, 300, 1101, 3000, 10000];
/// Wall-clock regression gate for `--check` (fraction of baseline).
const REGRESSION_FRAC: f64 = 0.25;
/// Absolute slack below which a regression is considered timer noise.
const NOISE_FLOOR_MS: u64 = 250;

struct TierReport {
    nodes: usize,
    wall_ms: u64,
    sim_events: u64,
    events_per_sec: u64,
    recomputes: u64,
    recompute_work: u64,
    peak_queue: usize,
    response_secs: f64,
    jobs_ok: usize,
    jobs: usize,
    fingerprint: String,
}

/// Outcome fingerprint, shared with the sched and elastic benches (the
/// canonical format lives in `hog_bench` so every baseline stays
/// comparable).
fn fingerprint(r: &RunResult) -> String {
    hog_bench::outcome_fingerprint(r)
}

fn run_tier(nodes: usize, seed: u64, schedule: &SubmissionSchedule) -> TierReport {
    let cfg = ClusterConfig::hog(nodes, seed);
    let wall = Instant::now();
    let r = run_workload(cfg, schedule, SimDuration::from_secs(100 * 3600));
    let wall_ms = wall.elapsed().as_millis() as u64;
    assert!(
        !r.stopped_early,
        "scale tier {nodes} did not finish — the benchmark config is broken"
    );
    TierReport {
        nodes,
        wall_ms,
        sim_events: r.events,
        events_per_sec: (r.events * 1000).checked_div(wall_ms).unwrap_or(0),
        recomputes: r.net_recomputes,
        recompute_work: r.net_recompute_work,
        peak_queue: r.peak_queue,
        response_secs: r.response_time.map(|d| d.as_secs_f64()).unwrap_or(0.0),
        jobs_ok: r.jobs_succeeded(),
        jobs: r.jobs.len(),
        fingerprint: fingerprint(&r),
    }
}

fn to_json(seed: u64, tiers: &[TierReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"scale\",");
    let _ = writeln!(s, "  \"workload\": \"facebook_truncated\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    s.push_str("  \"tiers\": [\n");
    for (i, t) in tiers.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"nodes\": {}, \"wall_ms\": {}, \"sim_events\": {}, \"events_per_sec\": {}, \"recomputes\": {}, \"recompute_work\": {}, \"peak_queue\": {}, \"response_secs\": {:.3}, \"jobs_ok\": {}, \"jobs\": {}, \"fingerprint\": \"{}\"}}",
            t.nodes,
            t.wall_ms,
            t.sim_events,
            t.events_per_sec,
            t.recomputes,
            t.recompute_work,
            t.peak_queue,
            t.response_secs,
            t.jobs_ok,
            t.jobs,
            t.fingerprint
        );
        s.push_str(if i + 1 < tiers.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Minimal extraction of `"nodes": N ... "wall_ms": M ... "fingerprint"`
/// triples from a report written by [`to_json`] (schema-coupled on
/// purpose; no JSON dep). The fingerprint is `None` for baselines written
/// before it was recorded.
fn parse_baseline(text: &str) -> Vec<(usize, u64, Option<String>)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"nodes\":") {
            continue;
        }
        let field = |key: &str| -> Option<u64> {
            let pat = format!("\"{key}\": ");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let fp = line.find("\"fingerprint\": \"").and_then(|i| {
            let rest = &line[i + "\"fingerprint\": \"".len()..];
            rest.find('"').map(|end| rest[..end].to_string())
        });
        if let (Some(n), Some(w)) = (field("nodes"), field("wall_ms")) {
            out.push((n as usize, w, fp));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = hog_bench::arg_usize(&args, "--seed", 7) as u64;
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_scale.json".to_string());
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let schedule = SubmissionSchedule::facebook_truncated(1000 + seed);
    println!(
        "scale: {} jobs / {} maps / {} reduces, seed {seed}",
        schedule.len(),
        schedule.total_maps(),
        schedule.total_reduces()
    );

    let threads = hog_bench::arg_threads(&args);
    let verify_threads = args.iter().any(|a| a == "--verify-threads");
    let sweep = |threads: usize| {
        let schedule = &schedule;
        let jobs: Vec<Box<dyn FnOnce() -> TierReport + Send>> = TIERS
            .iter()
            .filter(|&&n| !smoke || n == TIERS[0])
            .map(|&n| {
                Box::new(move || run_tier(n, seed, schedule))
                    as Box<dyn FnOnce() -> TierReport + Send>
            })
            .collect();
        hog_bench::run_cells(jobs, threads)
    };

    let tiers = sweep(threads);
    for t in &tiers {
        println!(
            "  {:>5} nodes: wall={:>6}ms events={:>9} ({:>8}/s) recomputes={:>7} work={:>11} peakq={:>6} fp={}",
            t.nodes,
            t.wall_ms,
            t.sim_events,
            t.events_per_sec,
            t.recomputes,
            t.recompute_work,
            t.peak_queue,
            t.fingerprint
        );
    }

    let json = to_json(seed, &tiers);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if verify_threads {
        let t1 = sweep(1);
        hog_bench::assert_threads_identical("scale", &json, &to_json(seed, &t1));
    }

    if let Some(base) = check_path {
        let text = std::fs::read_to_string(&base)
            .unwrap_or_else(|e| panic!("cannot read baseline {base}: {e}"));
        let baseline = parse_baseline(&text);
        assert!(!baseline.is_empty(), "baseline {base} has no tiers");
        let mut failed = false;
        for t in &tiers {
            let Some((_, base_ms, base_fp)) = baseline.iter().find(|(n, _, _)| *n == t.nodes)
            else {
                continue;
            };
            let limit = base_ms + (*base_ms as f64 * REGRESSION_FRAC) as u64 + NOISE_FLOOR_MS;
            let verdict = if t.wall_ms > limit {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "  check {:>5} nodes: {}ms vs baseline {}ms (limit {}ms) — {}",
                t.nodes, t.wall_ms, base_ms, limit, verdict
            );
            if let Some(fp) = base_fp {
                if fp != &t.fingerprint {
                    failed = true;
                    println!(
                        "  check {:>5} nodes: fingerprint {} != baseline {} — OUTCOME CHANGED",
                        t.nodes, t.fingerprint, fp
                    );
                }
            }
        }
        if failed {
            eprintln!("scale: wall-clock regression beyond {REGRESSION_FRAC:.0}% + {NOISE_FLOOR_MS}ms noise floor");
            std::process::exit(1);
        }
    }
}
