//! Regenerate Figure 5 ("HOG Node Fluctuation") and Table IV ("Area
//! beneath curves").
//!
//! Three 55-node runs — 5a/5b on stable sites, 5c under heavy preemption
//! — each rendered as an ASCII availability trace, plus the response-time
//! / area table. The paper's observation to reproduce: more node
//! fluctuation (smaller area) ⇒ longer response time.
//!
//! Usage: `fig5 [--threads N]`

use hog_core::experiments::{figure5, workload_window};
use hog_core::report::{ascii_series, TextTable};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let threads = hog_bench::arg_usize(&args, "--threads", 3);
    eprintln!("fig5: three 55-node runs, {threads} threads");
    let runs = figure5(threads);

    let mut out = String::new();
    for r in &runs {
        let (from, to) = workload_window(&r.result);
        out.push_str(&format!(
            "\nFIGURE 5 ({}) — available nodes during the workload\n",
            r.label
        ));
        out.push_str(&ascii_series(&r.result.reported_series, from, to, 72, 12));
    }

    let mut t = TextTable::new(&["Figure No.", "Response Time (s)", "Area (node·s)"]);
    for r in &runs {
        t.row(&[
            r.label.clone(),
            format!("{:.0}", r.response),
            format!("{:.0}", r.area),
        ]);
    }
    out.push_str(&format!("\nTABLE IV — AREA BENEATH CURVES\n{}", t.render()));

    // The paper's relationship: the unstable run has the smallest area
    // and the longest response.
    let stable_best = runs
        .iter()
        .filter(|r| r.label.contains("stable") && !r.label.contains("unstable"))
        .map(|r| r.response)
        .fold(f64::INFINITY, f64::min);
    let unstable = runs
        .iter()
        .find(|r| r.label.contains("unstable"))
        .map(|r| r.response)
        .unwrap_or(f64::NAN);
    out.push_str(&format!(
        "\nNode fluctuation vs. response: best stable run {stable_best:.0}s, unstable run {unstable:.0}s ({:.2}x)\n",
        unstable / stable_best
    ));

    println!("{out}");
    let dir = hog_bench::results_dir();
    std::fs::write(dir.join("fig5_table4.txt"), &out).expect("write fig5_table4.txt");
    let mut csv = TextTable::new(&["run", "t_secs", "reported_nodes"]);
    for r in &runs {
        let (from, to) = workload_window(&r.result);
        for (t_i, v) in r.result.reported_series.resample(from, to, 200) {
            csv.row(&[
                r.label.clone(),
                format!("{:.1}", t_i.as_secs_f64()),
                format!("{v:.0}"),
            ]);
        }
    }
    std::fs::write(dir.join("fig5.csv"), csv.to_csv()).expect("write fig5.csv");
    eprintln!("(written to {}/fig5_table4.txt, fig5.csv)", dir.display());
}
