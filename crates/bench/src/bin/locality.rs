//! Quantify §IV-D's locality claim: "The high replication factor for HOG
//! allows for very good data locality. With the data on the same node as
//! the map execution, reading in the data is very quick."
//!
//! Sweeps the replication factor on a fixed HOG pool and prints the map
//! locality mix achieved by the FIFO + locality scheduler.
//!
//! Usage: `locality [--nodes N] [--threads N]`

use hog_core::experiments::locality_vs_replication;
use hog_core::report::TextTable;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes = hog_bench::arg_usize(&args, "--nodes", 100);
    let threads = hog_bench::arg_usize(&args, "--threads", 2);
    eprintln!("locality sweep at {nodes} nodes…");
    let rows = locality_vs_replication(nodes, &[1, 3, 5, 10], threads);

    let mut t = TextTable::new(&[
        "replication",
        "node-local",
        "site-local",
        "remote",
        "node-local %",
        "response (s)",
    ]);
    for (f, nl, sl, rm, resp) in &rows {
        let total = (nl + sl + rm).max(1);
        t.row(&[
            f.to_string(),
            nl.to_string(),
            sl.to_string(),
            rm.to_string(),
            format!("{:.1}%", 100.0 * *nl as f64 / total as f64),
            format!("{resp:.0}"),
        ]);
    }
    let out = format!(
        "LOCALITY vs REPLICATION — {nodes} HOG nodes (paper §IV-D)\n{}",
        t.render()
    );
    println!("{out}");
    let dir = hog_bench::results_dir();
    std::fs::write(dir.join("locality.txt"), &out).expect("write locality.txt");
    eprintln!("(written to {}/locality.txt)", dir.display());
}
