//! Master-failover study (X13): job-completion overhead of a
//! chaos-injected master crash versus the crash-free run, swept over
//! crash time × checkpoint interval × pool size.
//!
//! Each pool first runs crash-free (the failover machinery armed but no
//! fault — checkpointing draws no randomness and schedules no events, so
//! this is bit-identical to a plain run). Each crash cell then injects
//! `MasterCrash` at the given offset after workload start; the headline
//! number is `overhead_secs` (workload response minus the crash-free
//! twin's), which must stay within `bound_secs` = detection timeout +
//! lost edit window (≤ checkpoint interval) + a replay allowance for
//! re-running the killed in-flight tasks.
//!
//! Usage:
//!   failover [--smoke] [--seed S] [--out PATH] [--check BASELINE]
//!            [--threads N] [--verify-threads]
//!
//! * `--smoke`          run only the 100-node pool, one crash cell (CI gate)
//! * `--seed S`         cluster seed (default 7; schedule seed is 1000+S)
//! * `--out PATH`       JSON report path (default BENCH_failover.json)
//! * `--check BASELINE` compare wall-clock and outcome fingerprints per
//!   label against a previous report; exit non-zero on a >25% (+noise
//!   floor) wall regression or any fingerprint change
//!
//! * `--threads N`      run sweep cells N-wide (default: available cores;
//!   every cell is an independent deterministic simulation, so the report
//!   is the same at any width — only wall clocks move)
//! * `--verify-threads` rerun the sweep at `--threads 1` and assert the
//!   two reports are byte-identical modulo wall-clock fields
//!
//! The JSON is hand-rolled (no serde in the workspace); keep the schema
//! in sync with `.github/workflows/ci.yml` and EXPERIMENTS.md X13.

use hog_chaos::{Fault, FaultPlan};
use hog_core::driver::{run_workload, RunResult};
use hog_core::ClusterConfig;
use hog_sim_core::SimDuration;
use hog_workload::SubmissionSchedule;
use std::fmt::Write as _;
use std::time::Instant;

/// Pool sizes swept (both finish the truncated Facebook workload well
/// after the latest crash offset).
const POOLS: [usize; 2] = [100, 300];
/// Crash offsets after workload start, seconds.
const CRASH_TIMES: [u64; 2] = [600, 1200];
/// Checkpoint intervals swept, seconds.
const INTERVALS: [u64; 2] = [300, 120];
/// Failure-detection timeout before standby promotion, seconds.
const DETECTION_SECS: u64 = 30;
/// Allowance for re-running the in-flight work the promotion killed.
/// Calibrated generously: the killed tasks re-run in parallel across the
/// surviving pool, overlapping work that was pending anyway.
const REPLAY_ALLOWANCE_SECS: f64 = 900.0;
/// Wall-clock regression gate for `--check` (fraction of baseline).
const REGRESSION_FRAC: f64 = 0.25;
/// Absolute slack below which a regression is considered timer noise.
const NOISE_FLOOR_MS: u64 = 250;

#[derive(Clone)]
struct CellReport {
    label: String,
    nodes: usize,
    crash_at: Option<u64>,
    interval: u64,
    wall_ms: u64,
    response_secs: f64,
    overhead_secs: f64,
    bound_secs: f64,
    passed: bool,
    jobs_ok: usize,
    jobs: usize,
    recovery_secs: f64,
    lost_window_secs: f64,
    reregistrations: u64,
    checkpoints: usize,
    fingerprint: String,
}

fn horizon() -> SimDuration {
    SimDuration::from_secs(100 * 3600)
}

fn run_cell(
    nodes: usize,
    seed: u64,
    schedule: &SubmissionSchedule,
    interval: u64,
    crash_at: Option<u64>,
    baseline_response: Option<f64>,
) -> CellReport {
    let label = match crash_at {
        None => format!("p{nodes}-free"),
        Some(c) => format!("p{nodes}-c{c}-i{interval}"),
    };
    let mut cfg = ClusterConfig::hog(nodes, seed)
        .with_failover(
            SimDuration::from_secs(interval),
            SimDuration::from_secs(DETECTION_SECS),
        )
        .named(label.clone());
    if let Some(c) = crash_at {
        cfg =
            cfg.with_fault_plan(FaultPlan::new().at(SimDuration::from_secs(c), Fault::MasterCrash));
    }
    let wall = Instant::now();
    let r = run_workload(cfg, schedule, horizon());
    let wall_ms = wall.elapsed().as_millis() as u64;
    assert!(
        !r.stopped_early,
        "{label} did not finish: {:?}",
        r.stuck_jobs
    );
    let response = r.response_time.map(|d| d.as_secs_f64()).unwrap_or(0.0);
    let (overhead, bound, passed) = match (crash_at, baseline_response) {
        (Some(_), Some(base)) => {
            let overhead = response - base;
            // Lost edit window is bounded by the checkpoint interval;
            // the measured value is tighter, but the *bound* quoted is
            // the configuration-level guarantee.
            let bound = DETECTION_SECS as f64 + interval as f64 + REPLAY_ALLOWANCE_SECS;
            let all_jobs = r.jobs_succeeded() == r.jobs.len();
            (overhead, bound, overhead <= bound && all_jobs)
        }
        _ => (0.0, 0.0, r.jobs_succeeded() == r.jobs.len()),
    };
    CellReport {
        label,
        nodes,
        crash_at,
        interval,
        wall_ms,
        response_secs: response,
        overhead_secs: overhead,
        bound_secs: bound,
        passed,
        jobs_ok: r.jobs_succeeded(),
        jobs: r.jobs.len(),
        recovery_secs: r.failover.total_recovery.as_secs_f64(),
        lost_window_secs: r.failover.total_lost_window.as_secs_f64(),
        reregistrations: r.failover.reregistrations,
        checkpoints: r.failover.checkpoints.len(),
        fingerprint: fingerprint(&r),
    }
}

fn fingerprint(r: &RunResult) -> String {
    hog_bench::outcome_fingerprint(r)
}

fn cell_json(c: &CellReport) -> String {
    format!(
        "{{\"label\": \"{}\", \"nodes\": {}, \"crash_at\": {}, \"interval\": {}, \"wall_ms\": {}, \"response_secs\": {:.3}, \"overhead_secs\": {:.3}, \"bound_secs\": {:.1}, \"passed\": {}, \"jobs_ok\": {}, \"jobs\": {}, \"recovery_secs\": {:.1}, \"lost_window_secs\": {:.1}, \"reregistrations\": {}, \"checkpoints\": {}, \"fingerprint\": \"{}\"}}",
        c.label,
        c.nodes,
        c.crash_at.map(|v| v.to_string()).unwrap_or_else(|| "null".into()),
        c.interval,
        c.wall_ms,
        c.response_secs,
        c.overhead_secs,
        c.bound_secs,
        c.passed,
        c.jobs_ok,
        c.jobs,
        c.recovery_secs,
        c.lost_window_secs,
        c.reregistrations,
        c.checkpoints,
        c.fingerprint
    )
}

fn to_json(seed: u64, cells: &[CellReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"failover\",");
    let _ = writeln!(s, "  \"workload\": \"facebook_truncated\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"detection_secs\": {DETECTION_SECS},");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(s, "    {}", cell_json(c));
        s.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn print_cell(c: &CellReport) {
    println!(
        "  {:>14}: resp={:>7.0}s overhead={:>+7.0}s (bound {:>5.0}s) ok={}/{} recovery={:.0}s lost={:.0}s rereg={} ckpts={} wall={}ms fp={} — {}",
        c.label,
        c.response_secs,
        c.overhead_secs,
        c.bound_secs,
        c.jobs_ok,
        c.jobs,
        c.recovery_secs,
        c.lost_window_secs,
        c.reregistrations,
        c.checkpoints,
        c.wall_ms,
        c.fingerprint,
        if c.passed { "PASS" } else { "FAIL" }
    );
}

/// Extract `(label, wall_ms, fingerprint)` triples from a report written
/// by [`to_json`] (schema-coupled on purpose; no JSON dep).
fn parse_baseline(text: &str) -> Vec<(String, u64, Option<String>)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"label\":") {
            continue;
        }
        let label = line.find("\"label\": \"").and_then(|i| {
            let rest = &line[i + "\"label\": \"".len()..];
            rest.find('"').map(|end| rest[..end].to_string())
        });
        let wall = line.find("\"wall_ms\": ").and_then(|i| {
            let rest = &line[i + "\"wall_ms\": ".len()..];
            let end = rest
                .find(|ch: char| !ch.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse::<u64>().ok()
        });
        let fp = line.find("\"fingerprint\": \"").and_then(|i| {
            let rest = &line[i + "\"fingerprint\": \"".len()..];
            rest.find('"').map(|end| rest[..end].to_string())
        });
        if let (Some(l), Some(w)) = (label, wall) {
            out.push((l, w, fp));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = hog_bench::arg_usize(&args, "--seed", 7) as u64;
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_failover.json".to_string());
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let schedule = SubmissionSchedule::facebook_truncated(1000 + seed);
    println!(
        "failover: {} jobs / {} maps / {} reduces, seed {seed}, detection {DETECTION_SECS}s",
        schedule.len(),
        schedule.total_maps(),
        schedule.total_reduces()
    );

    let threads = hog_bench::arg_threads(&args);
    let verify_threads = args.iter().any(|a| a == "--verify-threads");
    let pools: Vec<usize> = POOLS
        .iter()
        .copied()
        .filter(|&n| !smoke || n == POOLS[0])
        .collect();
    // Crash cells judge themselves against the crash-free response of
    // the same pool size, so the sweep runs in two waves: the per-pool
    // baselines first, then every crash cell.
    let sweep = |threads: usize| {
        let schedule = &schedule;
        let free_jobs: Vec<Box<dyn FnOnce() -> CellReport + Send>> = pools
            .iter()
            .map(|&nodes| {
                Box::new(move || run_cell(nodes, seed, schedule, INTERVALS[0], None, None))
                    as Box<dyn FnOnce() -> CellReport + Send>
            })
            .collect();
        let frees = hog_bench::run_cells(free_jobs, threads);
        let mut crash_jobs: Vec<Box<dyn FnOnce() -> CellReport + Send>> = Vec::new();
        for (pi, &nodes) in pools.iter().enumerate() {
            let base = frees[pi].response_secs;
            for &crash in &CRASH_TIMES {
                for &interval in &INTERVALS {
                    if smoke && !(crash == CRASH_TIMES[0] && interval == INTERVALS[0]) {
                        continue;
                    }
                    crash_jobs.push(Box::new(move || {
                        run_cell(nodes, seed, schedule, interval, Some(crash), Some(base))
                    }));
                }
            }
        }
        let mut crashes = hog_bench::run_cells(crash_jobs, threads).into_iter();
        // Re-interleave into the report's historical order: each pool's
        // crash-free cell followed by its crash grid.
        let mut cells = Vec::new();
        for (pi, _) in pools.iter().enumerate() {
            let n_crashes = CRASH_TIMES
                .iter()
                .flat_map(|&c| INTERVALS.iter().map(move |&i| (c, i)))
                .filter(|&(c, i)| !smoke || (c == CRASH_TIMES[0] && i == INTERVALS[0]))
                .count();
            cells.push(frees[pi].clone());
            for _ in 0..n_crashes {
                cells.push(crashes.next().expect("crash cell"));
            }
        }
        cells
    };

    let cells = sweep(threads);
    let mut all_passed = true;
    for c in &cells {
        print_cell(c);
        all_passed &= c.passed;
    }

    let json = to_json(seed, &cells);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if verify_threads {
        let c1 = sweep(1);
        hog_bench::assert_threads_identical("failover", &json, &to_json(seed, &c1));
    }

    if let Some(base) = check_path {
        let text = std::fs::read_to_string(&base)
            .unwrap_or_else(|e| panic!("cannot read baseline {base}: {e}"));
        let baseline = parse_baseline(&text);
        assert!(!baseline.is_empty(), "baseline {base} has no cells");
        let mut failed = false;
        for c in &cells {
            let Some((_, base_ms, base_fp)) = baseline.iter().find(|(l, _, _)| *l == c.label)
            else {
                continue;
            };
            let limit = base_ms + (*base_ms as f64 * REGRESSION_FRAC) as u64 + NOISE_FLOOR_MS;
            let verdict = if c.wall_ms > limit {
                failed = true;
                "REGRESSED"
            } else {
                "ok"
            };
            println!(
                "  check {:>14}: {}ms vs baseline {}ms (limit {}ms) — {}",
                c.label, c.wall_ms, base_ms, limit, verdict
            );
            if let Some(fp) = base_fp {
                if fp != &c.fingerprint {
                    failed = true;
                    println!(
                        "  check {:>14}: fingerprint {} != baseline {} — OUTCOME CHANGED",
                        c.label, c.fingerprint, fp
                    );
                }
            }
        }
        if failed {
            eprintln!("failover: regression beyond {REGRESSION_FRAC:.0}% + {NOISE_FLOOR_MS}ms noise floor, or outcome changed");
            std::process::exit(1);
        }
    }

    if !all_passed {
        eprintln!(
            "failover: a crash cell exceeded its recovery bound or lost jobs (see FAIL rows)"
        );
        std::process::exit(1);
    }
}
