//! Trace tooling (hog-obs): run a workload with full tracing + metrics
//! and export the event stream, or diff two runs metric-by-metric.
//!
//! Usage:
//!
//! * `trace run [--nodes N] [--seed S] [--format jsonl|csv]` — run the
//!   Facebook workload with `TraceMode::Full` and the metrics registry
//!   on, export the trace to the results dir and print per-layer event
//!   counts plus a metrics summary.
//! * `trace diff [--nodes N] [--seed S] [--seed2 S2] [--top K]` — run
//!   the same workload twice under different seeds and print the top-K
//!   diverging metric series.

use hog_core::driver::{run_workload, RunResult};
use hog_core::ClusterConfig;
use hog_obs::{to_csv, to_jsonl, render_diff, diff_registries, Layer, TraceMode};
use hog_sim_core::SimDuration;
use hog_workload::SubmissionSchedule;
use std::collections::BTreeMap;

const HORIZON_SECS: u64 = 100 * 3600;

fn traced_run(nodes: usize, seed: u64) -> RunResult {
    let cfg = ClusterConfig::hog(nodes, seed)
        .with_tracing(TraceMode::Full)
        .with_metrics();
    let schedule = SubmissionSchedule::facebook_truncated(1000 + seed);
    run_workload(cfg, &schedule, SimDuration::from_secs(HORIZON_SECS))
}

fn cmd_run(args: &[String]) {
    let nodes = hog_bench::arg_usize(args, "--nodes", 55);
    let seed = hog_bench::arg_usize(args, "--seed", 1) as u64;
    let csv = args.windows(2).any(|w| w[0] == "--format" && w[1] == "csv");
    let r = traced_run(nodes, seed);
    let log = r.trace.as_ref().expect("tracing was enabled");
    println!(
        "hog-{nodes} seed {seed}: {} events recorded ({} dropped), response={:?}s",
        log.recorded,
        log.dropped,
        r.response_time.map(|d| d.as_secs_f64())
    );

    // Per-layer / per-kind counts.
    let mut by_layer: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut by_kind: BTreeMap<String, u64> = BTreeMap::new();
    for ev in &log.events {
        *by_layer.entry(ev.layer.as_str()).or_insert(0) += 1;
        *by_kind.entry(format!("{}/{}", ev.layer, ev.kind)).or_insert(0) += 1;
    }
    for l in Layer::ALL {
        if let Some(n) = by_layer.get(l.as_str()) {
            println!("  [{:<9}] {n} events", l.as_str());
        }
    }
    let mut kinds: Vec<_> = by_kind.into_iter().collect();
    kinds.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    for (k, n) in kinds.iter().take(12) {
        println!("    {k:<28} {n}");
    }

    let dir = hog_bench::results_dir();
    let (path, body) = if csv {
        (dir.join(format!("trace-{nodes}-{seed}.csv")), to_csv(&log.events))
    } else {
        (dir.join(format!("trace-{nodes}-{seed}.jsonl")), to_jsonl(&log.events))
    };
    std::fs::write(&path, body).expect("write trace export");
    println!("exported {} events to {}", log.events.len(), path.display());

    if let Some(m) = &r.metrics {
        println!("{}", m.render_summary());
    }
}

fn cmd_diff(args: &[String]) {
    let nodes = hog_bench::arg_usize(args, "--nodes", 55);
    let seed_a = hog_bench::arg_usize(args, "--seed", 1) as u64;
    let seed_b = hog_bench::arg_usize(args, "--seed2", 2) as u64;
    let top = hog_bench::arg_usize(args, "--top", 10);
    println!("diffing hog-{nodes}: seed {seed_a} vs seed {seed_b} ...");
    let ra = traced_run(nodes, seed_a);
    let rb = traced_run(nodes, seed_b);
    println!(
        "  seed {seed_a}: response={:?}s  seed {seed_b}: response={:?}s",
        ra.response_time.map(|d| d.as_secs_f64()),
        rb.response_time.map(|d| d.as_secs_f64())
    );
    let (ma, mb) = (
        ra.metrics.as_ref().expect("metrics on"),
        rb.metrics.as_ref().expect("metrics on"),
    );
    let diffs = diff_registries(ma, mb);
    print!("{}", render_diff(&diffs, top));
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("run") => cmd_run(&args),
        Some("diff") => cmd_diff(&args),
        _ => {
            eprintln!("usage: trace run [--nodes N] [--seed S] [--format jsonl|csv]");
            eprintln!("       trace diff [--nodes N] [--seed S] [--seed2 S2] [--top K]");
            std::process::exit(2);
        }
    }
}
