//! Adaptive-replication study (X17): flat replication 10 vs Trua-style
//! per-block availability targets vs X6-style multi-copy task execution.
//!
//! The paper buys survival under OSG preemption with a blanket
//! replication factor of 10 — every block pays the worst-case premium
//! whether it sits on a stable Fermilab slot or a campus machine about
//! to be reclaimed. The availability policy (DESIGN §17) instead tracks
//! each block's target from the decayed failure score of the sites
//! holding it, the sites' churn profiles, and the block's read heat,
//! clamped to [4, 12] with hysteresis. The third column is the X6
//! alternative: keep flat-10 storage but run every task as 2 eager
//! copies. The study question: how much replica storage and repair
//! traffic does the adaptive policy save, and what does it cost in mean
//! job response?
//!
//! Usage:
//!   replication [--smoke] [--seed S] [--wave H] [--out PATH]
//!               [--check BASELINE] [--threads N] [--verify-threads]
//!
//! * `--smoke`          run the 3-policy grid at the base seed only (CI
//!   gate); the full sweep repeats it at [`VERDICT_SEEDS`] consecutive
//!   seeds and holds the study bar against the pooled result
//! * `--seed S`         base cluster seed (default 7; each grid seed `s`
//!   uses schedule seed 1000+s)
//! * `--wave H`         start the calibrated campus day at hour `H`
//!   (default [`WAVE_START_HOUR`], as in BENCH_churn)
//! * `--out PATH`       JSON report path (default BENCH_replication.json)
//! * `--check BASELINE` compare each cell's outcome fingerprint against a
//!   previous report and exit non-zero on any mismatch
//! * `--threads N`      sweep width (default: available cores)
//! * `--verify-threads` rerun at width 1 and assert identical reports
//!
//! The JSON is hand-rolled (no serde in the workspace). Keep the schema
//! in sync with EXPERIMENTS.md X17.

use hog_core::driver::{run_workload, RunResult};
use hog_core::ClusterConfig;
use hog_hdfs::AvailabilityPolicy;
use hog_sim_core::SimDuration;
use hog_workload::{StragglerMix, SubmissionSchedule};
use std::fmt::Write as _;
use std::time::Instant;

/// Pool size of the grid (matches BENCH_churn).
const NODES: usize = 300;

/// Simulated hour of the campus day at which cells start; 8:00 puts the
/// workload's tail inside the 13:00–15:00 reclaim wave (see BENCH_churn).
const WAVE_START_HOUR: f64 = 8.0;

/// Seeds per policy in the full sweep; the study bar is held against the
/// response and storage pooled over this many seeds.
const VERDICT_SEEDS: u64 = 3;

/// The study bar, pooled over the verdict seeds: adaptive must keep mean
/// job response within this factor of flat-10…
const RESPONSE_SLACK: f64 = 1.05;

/// …while cutting total replica storage to at most this fraction of
/// flat-10's.
const STORAGE_BAR: f64 = 0.85;

const GIB: f64 = (1u64 << 30) as f64;

struct CellReport {
    policy: &'static str,
    seed: u64,
    wall_ms: u64,
    response_secs: f64,
    mean_job_secs: f64,
    jobs_ok: usize,
    jobs: usize,
    /// Total replica bytes materialised (writes + repairs), GiB.
    replica_gb: f64,
    /// Re-replication (repair) traffic subset, GiB.
    repair_gb: f64,
    /// Usable node-hours integrated over the workload window.
    node_hours: f64,
    targets_raised: u64,
    targets_lowered: u64,
    replicas_trimmed: u64,
    fingerprint: String,
}

fn cell_from(policy: &'static str, seed: u64, wall_ms: u64, r: &RunResult) -> CellReport {
    let node_hours = match (r.workload_start, r.response_time) {
        (Some(s), Some(d)) => r.actual_series.area(s, s + d) / 3600.0,
        _ => 0.0,
    };
    CellReport {
        policy,
        seed,
        wall_ms,
        response_secs: r.response_time.map(|d| d.as_secs_f64()).unwrap_or(0.0),
        mean_job_secs: r.mean_job_response_secs(),
        jobs_ok: r.jobs_succeeded(),
        jobs: r.jobs.len(),
        replica_gb: r.replica_bytes as f64 / GIB,
        repair_gb: r.repair_bytes as f64 / GIB,
        node_hours,
        targets_raised: r.availability.0,
        targets_lowered: r.availability.1,
        replicas_trimmed: r.availability.2,
        fingerprint: hog_bench::outcome_fingerprint(r),
    }
}

/// One grid cell: 300 nodes under the calibrated campus wave with the
/// straggler mix on (same environment as BENCH_churn's calibrated
/// column), differing only in the replication/durability policy.
fn run_cell(policy: &'static str, wave: f64, seed: u64) -> CellReport {
    let schedule = SubmissionSchedule::facebook_truncated(1000 + seed);
    let mut cfg = ClusterConfig::hog(NODES, seed)
        .with_calibrated_churn_at(wave)
        .with_stragglers(StragglerMix::osg_default())
        .named(format!("replication-{policy}"));
    cfg = match policy {
        "flat10" => cfg,
        "adaptive" => cfg.with_availability_policy(AvailabilityPolicy::trua_default()),
        "kcopies" => cfg.with_task_copies(2, true),
        other => panic!("unknown policy label {other}"),
    };
    let wall = Instant::now();
    let r = run_workload(cfg, &schedule, SimDuration::from_secs(100 * 3600));
    cell_from(policy, seed, wall.elapsed().as_millis() as u64, &r)
}

fn cell_json(c: &CellReport) -> String {
    format!(
        "{{\"policy\": \"{}\", \"seed\": {}, \"wall_ms\": {}, \"response_secs\": {:.3}, \"mean_job_secs\": {:.3}, \"jobs_ok\": {}, \"jobs\": {}, \"replica_gb\": {:.3}, \"repair_gb\": {:.3}, \"node_hours\": {:.1}, \"targets_raised\": {}, \"targets_lowered\": {}, \"replicas_trimmed\": {}, \"fingerprint\": \"{}\"}}",
        c.policy,
        c.seed,
        c.wall_ms,
        c.response_secs,
        c.mean_job_secs,
        c.jobs_ok,
        c.jobs,
        c.replica_gb,
        c.repair_gb,
        c.node_hours,
        c.targets_raised,
        c.targets_lowered,
        c.replicas_trimmed,
        c.fingerprint
    )
}

fn to_json(seed: u64, cells: &[CellReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"replication\",");
    let _ = writeln!(s, "  \"workload\": \"facebook_truncated\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"cells\": [");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(s, "    {}", cell_json(c));
        s.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

fn print_cell(c: &CellReport) {
    println!(
        "  {:>8} s{}: resp={:>7.0}s mean_job={:>6.1}s ok={}/{} replica={:>6.1}GiB repair={:>6.1}GiB node_h={:>7.0} raise/lower/trim={}/{}/{} wall={}ms fp={}",
        c.policy,
        c.seed,
        c.response_secs,
        c.mean_job_secs,
        c.jobs_ok,
        c.jobs,
        c.replica_gb,
        c.repair_gb,
        c.node_hours,
        c.targets_raised,
        c.targets_lowered,
        c.replicas_trimmed,
        c.wall_ms,
        c.fingerprint
    );
}

/// The study bar: every cell completes its workload; pooled over the
/// verdict seeds, adaptive holds mean job response within
/// [`RESPONSE_SLACK`] of flat-10 while cutting replica storage to at
/// most [`STORAGE_BAR`] of flat-10's. One seed (the smoke grid) is too
/// noisy for the response half, so like BENCH_churn the bar is enforced
/// only at ≥ [`VERDICT_SEEDS`] seeds; smoke still enforces completion
/// and prints the observed deltas.
fn verdict(cells: &[CellReport]) -> bool {
    let mut ok = true;
    for c in cells {
        if c.jobs_ok != c.jobs {
            ok = false;
            println!(
                "  verdict: {} s{} finished only {}/{} jobs — FAIL",
                c.policy, c.seed, c.jobs_ok, c.jobs
            );
        }
    }
    let pooled = |policy: &str| -> (f64, f64, usize) {
        let rows: Vec<&CellReport> = cells.iter().filter(|c| c.policy == policy).collect();
        (
            rows.iter().map(|c| c.mean_job_secs).sum(),
            rows.iter().map(|c| c.replica_gb).sum(),
            rows.len(),
        )
    };
    let (flat_resp, flat_gb, n_flat) = pooled("flat10");
    let (ad_resp, ad_gb, n_ad) = pooled("adaptive");
    if n_flat > 0 && n_flat == n_ad {
        let enforced = n_flat as u64 >= VERDICT_SEEDS;
        let resp_pass = ad_resp <= flat_resp * RESPONSE_SLACK;
        let gb_pass = ad_gb <= flat_gb * STORAGE_BAR;
        if enforced {
            ok &= resp_pass && gb_pass;
        }
        println!(
            "  verdict: adaptive vs flat10 over {} seed(s): mean_job {:.1}s -> {:.1}s ({:+.1}% vs +{:.0}% slack) — {}",
            n_flat,
            flat_resp / n_flat as f64,
            ad_resp / n_ad as f64,
            (ad_resp / flat_resp - 1.0) * 100.0,
            (RESPONSE_SLACK - 1.0) * 100.0,
            if !enforced {
                "not enforced on the smoke grid"
            } else if resp_pass {
                "PASS"
            } else {
                "FAIL"
            }
        );
        println!(
            "  verdict: replica storage {:.1}GiB -> {:.1}GiB ({:.1}% of flat vs the {:.0}% bar) — {}",
            flat_gb / n_flat as f64,
            ad_gb / n_ad as f64,
            ad_gb / flat_gb * 100.0,
            STORAGE_BAR * 100.0,
            if !enforced {
                "not enforced on the smoke grid"
            } else if gb_pass {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }
    ok
}

/// Extract `(policy, seed, fingerprint)` rows from a report written by
/// [`to_json`] (schema-coupled on purpose; no JSON dep).
fn parse_baseline(text: &str) -> Vec<(String, u64, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"policy\":") {
            continue;
        }
        let str_field = |key: &str| -> Option<String> {
            let pat = format!("\"{key}\": \"");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            rest.find('"').map(|end| rest[..end].to_string())
        };
        let seed = line
            .find("\"seed\": ")
            .map(|i| &line[i + "\"seed\": ".len()..])
            .and_then(|rest| {
                let end = rest.find([',', '}'])?;
                rest[..end].trim().parse::<u64>().ok()
            });
        if let (Some(p), Some(seed), Some(fp)) =
            (str_field("policy"), seed, str_field("fingerprint"))
        {
            out.push((p, seed, fp));
        }
    }
    out
}

fn check_cells(cells: &[CellReport], baseline: &[(String, u64, String)]) -> bool {
    let mut failed = false;
    for c in cells {
        let Some((_, _, fp)) = baseline
            .iter()
            .find(|(p, s, _)| *p == c.policy && *s == c.seed)
        else {
            continue;
        };
        if *fp != c.fingerprint {
            failed = true;
            println!(
                "  check {} s{}: fingerprint {} != baseline {} — OUTCOME CHANGED",
                c.policy, c.seed, c.fingerprint, fp
            );
        } else {
            println!("  check {} s{}: fingerprint matches baseline", c.policy, c.seed);
        }
    }
    failed
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = hog_bench::arg_usize(&args, "--seed", 7) as u64;
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_replication.json".to_string());
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let wave = args
        .iter()
        .position(|a| a == "--wave")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(WAVE_START_HOUR);

    let schedule = SubmissionSchedule::facebook_truncated(1000 + seed);
    println!(
        "replication: {} jobs / {} maps / {} reduces, seed {seed}",
        schedule.len(),
        schedule.total_maps(),
        schedule.total_reduces()
    );

    let threads = hog_bench::arg_threads(&args);
    let verify_threads = args.iter().any(|a| a == "--verify-threads");
    let sweep = |threads: usize| {
        let grid_seeds = if smoke { 1 } else { VERDICT_SEEDS };
        let mut jobs: Vec<Box<dyn FnOnce() -> CellReport + Send>> = Vec::new();
        for s in seed..seed + grid_seeds {
            for &policy in &["flat10", "adaptive", "kcopies"] {
                jobs.push(Box::new(move || run_cell(policy, wave, s)));
            }
        }
        hog_bench::run_cells(jobs, threads)
    };

    let cells = sweep(threads);
    for c in &cells {
        print_cell(c);
    }
    let ok = verdict(&cells);

    let json = to_json(seed, &cells);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if verify_threads {
        let c1 = sweep(1);
        hog_bench::assert_threads_identical("replication", &json, &to_json(seed, &c1));
    }

    if let Some(base) = check_path {
        let text = std::fs::read_to_string(&base)
            .unwrap_or_else(|e| panic!("cannot read baseline {base}: {e}"));
        let baseline = parse_baseline(&text);
        assert!(
            !baseline.is_empty(),
            "baseline {base} has no fingerprinted cells"
        );
        if check_cells(&cells, &baseline) {
            eprintln!("replication: outcome fingerprints diverged from {base}");
            std::process::exit(1);
        }
    }

    if !ok {
        eprintln!("replication: study bar missed (see verdict above)");
        std::process::exit(1);
    }
}
