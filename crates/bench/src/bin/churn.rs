//! Churn-model study (X16): synthetic vs trace-calibrated preemption,
//! with and without predictive failure handling.
//!
//! The grid of cells crosses the churn generator (the legacy exponential
//! lifetime dialled to the paper's fluctuating-pool pressure vs the
//! OSG-calibrated heavy-tailed + diurnal model of DESIGN §16.1) with the
//! failure-handling policy (the failure-aware placement scheduler vs the
//! same scheduler with prediction armed, which launches rescue copies of
//! tasks running on nodes it expects to die before the 30 s detector
//! fires — DESIGN §16.2). The study question: how much of the response
//! time lost to realistic churn does the predictive layer buy back?
//!
//! The full sweep adds two sections:
//!
//! * a day-long SWIM-shaped diurnal trace (≈1000 jobs over 24 h,
//!   [`SubmissionSchedule::facebook_day`]) replayed under calibrated
//!   churn, where the preemption wave and the arrival wave overlap;
//! * an elastic-controller comparison under calibrated churn with and
//!   without the diurnal forecast (DESIGN §16.3), measuring whether
//!   pre-growth ahead of the predicted wave saves response time.
//!
//! Usage:
//!   churn [--smoke] [--seed S] [--wave H] [--out PATH] [--check BASELINE]
//!         [--threads N] [--verify-threads]
//!
//! * `--smoke`          run only the 2×2 truncated-workload grid at the
//!   base seed (CI gate); the full sweep repeats the grid at
//!   [`VERDICT_SEEDS`] consecutive seeds and holds the win bar against
//!   the pooled result
//! * `--seed S`         base cluster seed (default 7; each grid seed `s`
//!   uses schedule seed 1000+s)
//! * `--wave H`         start the calibrated cells at hour `H` of the
//!   campus day (default [`WAVE_START_HOUR`]; tuning knob for studying
//!   other workload/wave phase alignments)
//! * `--out PATH`       where to write the JSON report (default BENCH_churn.json)
//! * `--check BASELINE` compare each shared cell's outcome fingerprint
//!   against a previously written report (BENCH_churn.baseline.json in
//!   CI) and exit non-zero on any mismatch — the sweep is deterministic,
//!   so a changed fingerprint means the simulated outcome changed
//!
//! * `--threads N`      run sweep cells N-wide (default: available cores;
//!   every cell is an independent deterministic simulation, so the report
//!   is the same at any width — only wall clocks move)
//! * `--verify-threads` rerun the sweep at `--threads 1` and assert the
//!   two reports are byte-identical modulo wall-clock fields
//!
//! The JSON is hand-rolled (no serde in the workspace); the schema
//! mirrors BENCH_sched.json plus the rescue counters. Keep it in sync
//! with EXPERIMENTS.md X16.

use hog_core::driver::{run_workload, RunResult};
use hog_core::{ClusterConfig, SchedPolicy};
use hog_grid::{DiurnalForecast, ElasticConfig};
use hog_sim_core::SimDuration;
use hog_workload::{StragglerMix, SubmissionSchedule};
use std::fmt::Write as _;
use std::time::Instant;

/// Pool size of the truncated-workload grid.
const NODES: usize = 300;

/// Mean glidein lifetime for the *synthetic* churn cells: one eviction
/// every ~2 h per node, the paper's Figure-5 fluctuating-pool pressure
/// and roughly the calibrated mixture's own mean — so the two churn
/// columns differ in lifetime *shape*, not total pressure.
const EXP_LIFETIME_SECS: u64 = 2 * 3600;

/// Simulated hour of the campus day at which the truncated-workload
/// cells start. Starting at 8:00 the 88-job schedule submits through
/// the morning, and under calibrated churn its makespan stretches into
/// the 13:00–15:00 reclaim wave of the per-site profiles, so the jobs
/// at the back of the FIFO queue ride the wave — the regime the study
/// is about. (Starting *at* the peak collapses every policy equally;
/// starting at midnight never meets the wave at all.) The day-long
/// trace keeps the midnight start and crosses the wave naturally.
const WAVE_START_HOUR: f64 = 8.0;

/// Seeds per verdict cell in the full sweep: the FA-vs-predictive duel
/// is paired (both policies see the same preemption schedule per seed),
/// but schedule divergence makes single-seed deltas noisy, so the study
/// bar is held against the response pooled over this many seeds.
const VERDICT_SEEDS: u64 = 3;

/// Controller bounds for the forecast comparison.
const ELASTIC_MIN: usize = 60;
const ELASTIC_MAX: usize = 300;

/// The study bar: under calibrated churn, prediction must recover at
/// least this fraction of mean job response vs placement-only handling.
const PREDICTIVE_WIN: f64 = 0.10;

struct CellReport {
    policy: SchedPolicy,
    churn: &'static str,
    workload: &'static str,
    seed: u64,
    wall_ms: u64,
    response_secs: f64,
    mean_job_secs: f64,
    jobs_ok: usize,
    jobs: usize,
    speculative: u64,
    failures: u64,
    rescue_copies: u64,
    rescue_hits: u64,
    rescue_misses: u64,
    fingerprint: String,
}

impl CellReport {
    /// Share of rescue copies that were placed on time: the doomed
    /// attempt's node really died and the copy was still alive to cover
    /// for it (1.0 when prediction never fired).
    fn hit_rate(&self) -> f64 {
        let judged = self.rescue_hits + self.rescue_misses;
        if judged == 0 {
            1.0
        } else {
            self.rescue_hits as f64 / judged as f64
        }
    }
}

fn cell_from(
    policy: SchedPolicy,
    churn: &'static str,
    workload: &'static str,
    seed: u64,
    wall_ms: u64,
    r: &RunResult,
) -> CellReport {
    CellReport {
        policy,
        churn,
        workload,
        seed,
        wall_ms,
        response_secs: r.response_time.map(|d| d.as_secs_f64()).unwrap_or(0.0),
        mean_job_secs: r.mean_job_response_secs(),
        jobs_ok: r.jobs_succeeded(),
        jobs: r.jobs.len(),
        speculative: r.jt.speculative,
        failures: r.jt.failures,
        rescue_copies: r.jt.rescue_copies,
        rescue_hits: r.jt.rescue_hits,
        rescue_misses: r.jt.rescue_misses,
        fingerprint: hog_bench::outcome_fingerprint(r),
    }
}

/// Base config for a grid cell: 300 nodes, stragglers on (the churn
/// study always runs the heavy-tailed slowdown mix — it is part of the
/// calibrated environment, and keeping it in every cell means the churn
/// columns differ only in the preemption process).
fn cell_cfg(
    policy: SchedPolicy,
    churn: &'static str,
    start_hour: f64,
    seed: u64,
    label: String,
) -> ClusterConfig {
    let mut cfg = ClusterConfig::hog(NODES, seed)
        .with_scheduler(policy)
        .with_stragglers(StragglerMix::osg_default())
        .named(label);
    cfg = match churn {
        "exponential" => cfg.with_mean_lifetime(SimDuration::from_secs(EXP_LIFETIME_SECS)),
        "calibrated" => cfg.with_calibrated_churn_at(start_hour),
        other => panic!("unknown churn label {other}"),
    };
    cfg
}

fn run_cell(policy: SchedPolicy, churn: &'static str, wave: f64, seed: u64) -> CellReport {
    // Each seed gets its own arrival pattern too (schedule seed 1000+S,
    // the convention every bench bin shares), so pooling over seeds
    // averages over workload phase as well as preemption draws.
    let schedule = SubmissionSchedule::facebook_truncated(1000 + seed);
    let cfg = cell_cfg(
        policy,
        churn,
        wave,
        seed,
        format!("churn-{}-{}", churn, policy.as_str()),
    );
    let wall = Instant::now();
    let r = run_workload(cfg, &schedule, SimDuration::from_secs(100 * 3600));
    cell_from(
        policy,
        churn,
        "truncated",
        seed,
        wall.elapsed().as_millis() as u64,
        &r,
    )
}

/// Day-long diurnal trace under calibrated churn: the ≈1000-job SWIM
/// shape whose arrival peak overlaps the campuses' preemption waves.
fn run_day(policy: SchedPolicy, seed: u64, schedule: &SubmissionSchedule) -> CellReport {
    let cfg = cell_cfg(
        policy,
        "calibrated",
        0.0,
        seed,
        format!("churn-day-{}", policy.as_str()),
    );
    let wall = Instant::now();
    let r = run_workload(cfg, schedule, SimDuration::from_secs(60 * 3600));
    cell_from(
        policy,
        "calibrated",
        "day",
        seed,
        wall.elapsed().as_millis() as u64,
        &r,
    )
}

/// Elastic controller under calibrated churn, with or without the
/// diurnal pre-growth forecast (both predictive, truncated workload).
fn run_forecast(forecast: bool, wave: f64, seed: u64, schedule: &SubmissionSchedule) -> CellReport {
    let churn: &'static str = if forecast { "forecast" } else { "reactive" };
    let mut ecfg = ElasticConfig::new(ELASTIC_MIN, ELASTIC_MAX);
    if forecast {
        // Same wave phase as the churn driving the pool: peak 14:00 on a
        // clock whose t = 0 is the wave start hour.
        ecfg = ecfg.with_forecast(DiurnalForecast {
            amplitude: 0.5,
            peak_hour: (14.0 - wave).rem_euclid(24.0),
        });
    }
    let cfg = cell_cfg(
        SchedPolicy::Predictive,
        "calibrated",
        wave,
        seed,
        format!("churn-elastic-{churn}"),
    )
    .with_elastic_config(ecfg);
    let wall = Instant::now();
    let r = run_workload(cfg, schedule, SimDuration::from_secs(100 * 3600));
    let mut c = cell_from(
        SchedPolicy::Predictive,
        "calibrated",
        "truncated",
        seed,
        wall.elapsed().as_millis() as u64,
        &r,
    );
    c.workload = if forecast { "elastic+forecast" } else { "elastic" };
    c
}

fn cell_json(c: &CellReport) -> String {
    format!(
        "{{\"policy\": \"{}\", \"churn\": \"{}\", \"workload\": \"{}\", \"seed\": {}, \"wall_ms\": {}, \"response_secs\": {:.3}, \"mean_job_secs\": {:.3}, \"jobs_ok\": {}, \"jobs\": {}, \"speculative\": {}, \"failures\": {}, \"rescue_copies\": {}, \"rescue_hits\": {}, \"rescue_misses\": {}, \"rescue_hit_rate\": {:.4}, \"fingerprint\": \"{}\"}}",
        c.policy.as_str(),
        c.churn,
        c.workload,
        c.seed,
        c.wall_ms,
        c.response_secs,
        c.mean_job_secs,
        c.jobs_ok,
        c.jobs,
        c.speculative,
        c.failures,
        c.rescue_copies,
        c.rescue_hits,
        c.rescue_misses,
        c.hit_rate(),
        c.fingerprint
    )
}

fn to_json(seed: u64, cells: &[CellReport], extra: &[CellReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"churn\",");
    let _ = writeln!(s, "  \"workload\": \"facebook_truncated\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    for (key, group) in [("cells", cells), ("extended", extra)] {
        let _ = writeln!(s, "  \"{key}\": [");
        for (i, c) in group.iter().enumerate() {
            let _ = write!(s, "    {}", cell_json(c));
            s.push_str(if i + 1 < group.len() { ",\n" } else { "\n" });
        }
        s.push_str(if key == "cells" { "  ],\n" } else { "  ]\n" });
    }
    s.push_str("}\n");
    s
}

fn print_cell(c: &CellReport) {
    println!(
        "  {:>13} {:>11} {:>16} s{}: resp={:>7.0}s mean_job={:>6.1}s ok={}/{} spec={} fail={} rescue={} hit/miss={}/{} ({:.0}%) wall={}ms fp={}",
        c.policy.as_str(),
        c.churn,
        c.workload,
        c.seed,
        c.response_secs,
        c.mean_job_secs,
        c.jobs_ok,
        c.jobs,
        c.speculative,
        c.failures,
        c.rescue_copies,
        c.rescue_hits,
        c.rescue_misses,
        c.hit_rate() * 100.0,
        c.wall_ms,
        c.fingerprint
    );
}

/// The study bar: every cell completes its whole workload, and under
/// calibrated churn the predictive policy recovers ≥ [`PREDICTIVE_WIN`]
/// of mean job response vs placement-only failure handling, pooled over
/// the verdict seeds. A single seed (the smoke grid) is too noisy for a
/// fair duel — schedule divergence makes per-seed deltas swing ±10% —
/// so, like BENCH_elastic, only the full multi-seed sweep enforces the
/// win bar; smoke still enforces completion and prints the observed win.
fn verdict(cells: &[CellReport], extra: &[CellReport]) -> bool {
    let mut ok = true;
    for c in cells.iter().chain(extra) {
        if c.jobs_ok != c.jobs {
            ok = false;
            println!(
                "  verdict: {} {} {} s{} finished only {}/{} jobs — FAIL",
                c.policy.as_str(),
                c.churn,
                c.workload,
                c.seed,
                c.jobs_ok,
                c.jobs
            );
        }
    }
    let pooled = |policy: &str, churn: &str| -> (f64, usize) {
        let ms: Vec<f64> = cells
            .iter()
            .filter(|c| {
                c.policy.as_str() == policy && c.churn == churn && c.workload == "truncated"
            })
            .map(|c| c.mean_job_secs)
            .collect();
        (ms.iter().sum(), ms.len())
    };
    let (base, n_base) = pooled("failure_aware", "calibrated");
    let (pred, n_pred) = pooled("predictive", "calibrated");
    if n_base > 0 && n_base == n_pred {
        let win = 1.0 - pred / base;
        let enforced = n_base as u64 >= VERDICT_SEEDS;
        let pass = pred <= base * (1.0 - PREDICTIVE_WIN);
        if enforced {
            ok &= pass;
        }
        println!(
            "  verdict: calibrated mean_job {:.1}s -> {:.1}s with prediction over {} seed(s) ({:+.1}% vs the {:.0}% bar) — {}",
            base / n_base as f64,
            pred / n_pred as f64,
            n_base,
            win * 100.0,
            PREDICTIVE_WIN * 100.0,
            if !enforced {
                "not enforced on the smoke grid"
            } else if pass {
                "PASS"
            } else {
                "FAIL"
            }
        );
    }
    ok
}

/// Extract `(policy, churn, workload, seed, fingerprint)` rows from a
/// report written by [`to_json`] (schema-coupled on purpose; no JSON dep).
fn parse_baseline(text: &str) -> Vec<(String, String, String, u64, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"policy\":") {
            continue;
        }
        let str_field = |key: &str| -> Option<String> {
            let pat = format!("\"{key}\": \"");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            rest.find('"').map(|end| rest[..end].to_string())
        };
        let seed = line
            .find("\"seed\": ")
            .map(|i| &line[i + "\"seed\": ".len()..])
            .and_then(|rest| {
                let end = rest.find([',', '}'])?;
                rest[..end].trim().parse::<u64>().ok()
            });
        if let (Some(p), Some(c), Some(w), Some(seed), Some(fp)) = (
            str_field("policy"),
            str_field("churn"),
            str_field("workload"),
            seed,
            str_field("fingerprint"),
        ) {
            out.push((p, c, w, seed, fp));
        }
    }
    out
}

/// Compare every cell present in the baseline by fingerprint; returns
/// whether any mismatched. Cells absent from the baseline (e.g. the
/// extra verdict seeds when smoke-checking against a full baseline) are
/// skipped.
fn check_cells(cells: &[CellReport], baseline: &[(String, String, String, u64, String)]) -> bool {
    let mut failed = false;
    for c in cells {
        let Some((_, _, _, _, fp)) = baseline.iter().find(|(p, ch, w, s, _)| {
            *p == c.policy.as_str() && *ch == c.churn && *w == c.workload && *s == c.seed
        }) else {
            continue;
        };
        if *fp != c.fingerprint {
            failed = true;
            println!(
                "  check {} {} {} s{}: fingerprint {} != baseline {} — OUTCOME CHANGED",
                c.policy.as_str(),
                c.churn,
                c.workload,
                c.seed,
                c.fingerprint,
                fp
            );
        } else {
            println!(
                "  check {} {} {} s{}: fingerprint matches baseline",
                c.policy.as_str(),
                c.churn,
                c.workload,
                c.seed
            );
        }
    }
    failed
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = hog_bench::arg_usize(&args, "--seed", 7) as u64;
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_churn.json".to_string());
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let wave = args
        .iter()
        .position(|a| a == "--wave")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse::<f64>().ok())
        .unwrap_or(WAVE_START_HOUR);

    let schedule = SubmissionSchedule::facebook_truncated(1000 + seed);
    println!(
        "churn: {} jobs / {} maps / {} reduces, seed {seed}",
        schedule.len(),
        schedule.total_maps(),
        schedule.total_reduces()
    );
    let day = (!smoke).then(|| SubmissionSchedule::facebook_day(1000 + seed));

    let threads = hog_bench::arg_threads(&args);
    let verify_threads = args.iter().any(|a| a == "--verify-threads");
    let sweep = |threads: usize| {
        let schedule = &schedule;
        let day = day.as_ref();
        // Smoke runs the 2×2 grid at the base seed; the full sweep runs
        // it at every verdict seed so the study bar is judged on pooled
        // responses rather than one draw.
        let grid_seeds = if smoke { 1 } else { VERDICT_SEEDS };
        let mut jobs: Vec<Box<dyn FnOnce() -> CellReport + Send>> = Vec::new();
        for s in seed..seed + grid_seeds {
            for &churn in &["exponential", "calibrated"] {
                for &policy in &[SchedPolicy::FailureAware, SchedPolicy::Predictive] {
                    jobs.push(Box::new(move || run_cell(policy, churn, wave, s)));
                }
            }
        }
        let cells = hog_bench::run_cells(jobs, threads);
        let mut extra_jobs: Vec<Box<dyn FnOnce() -> CellReport + Send>> = Vec::new();
        if let Some(day) = day {
            for &policy in &[SchedPolicy::FailureAware, SchedPolicy::Predictive] {
                extra_jobs.push(Box::new(move || run_day(policy, seed, day)));
            }
            for forecast in [false, true] {
                extra_jobs.push(Box::new(move || run_forecast(forecast, wave, seed, schedule)));
            }
        }
        let extra = hog_bench::run_cells(extra_jobs, threads);
        (cells, extra)
    };

    let (cells, extra) = sweep(threads);
    for c in &cells {
        print_cell(c);
    }
    if !extra.is_empty() {
        println!("  -- day-long diurnal trace + forecast comparison --");
        for c in &extra {
            print_cell(c);
        }
    }
    let ok = verdict(&cells, &extra);

    let json = to_json(seed, &cells, &extra);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if verify_threads {
        let (c1, e1) = sweep(1);
        hog_bench::assert_threads_identical("churn", &json, &to_json(seed, &c1, &e1));
    }

    if let Some(base) = check_path {
        let text = std::fs::read_to_string(&base)
            .unwrap_or_else(|e| panic!("cannot read baseline {base}: {e}"));
        let baseline = parse_baseline(&text);
        assert!(
            !baseline.is_empty(),
            "baseline {base} has no fingerprinted cells"
        );
        let mut failed = check_cells(&cells, &baseline);
        failed |= check_cells(&extra, &baseline);
        if failed {
            eprintln!("churn: outcome fingerprints diverged from {base}");
            std::process::exit(1);
        }
    }

    if !ok {
        eprintln!("churn: study bar missed (see verdict above)");
        std::process::exit(1);
    }
}
