//! Elastic-pool study (X12): the closed-loop glidein controller against
//! static pools on the truncated Facebook workload.
//!
//! Static tiers hold 40 / 100 / 300 glideins for the whole run (the
//! operator pre-provisions, as in the paper's §IV-A methodology); the
//! elastic run starts from the 40-node floor and lets the controller
//! resize between 40 and 300 from the observed task backlog. The study
//! question is Table-IV economics: how close does the controller get to
//! the best static pool's mean job response while consuming fewer
//! node·hours of grid allocation?
//!
//! A second section repeats the comparison under the X11 correlated
//! preemption-burst plan: the controller must re-grow through the same
//! churn the bursts inflict, and its failure-aware shrink should avoid
//! handing nodes back at the blasted sites.
//!
//! Usage:
//!   elastic [--smoke] [--seed S] [--out PATH] [--check BASELINE]
//!           [--threads N] [--verify-threads]
//!
//! * `--smoke`    run only the static-100 and elastic tiers (CI gate)
//! * `--seed S`   cluster seed (default 7; schedule seed is 1000+S)
//! * `--out PATH` where to write the JSON report (default BENCH_elastic.json)
//! * `--check BASELINE` compare wall-clock and outcome fingerprints per
//!   shared label against a previous report; exit non-zero on a >25%
//!   (+noise floor) wall regression or any fingerprint change
//!
//! * `--threads N`      run sweep cells N-wide (default: available cores;
//!   every cell is an independent deterministic simulation, so the report
//!   is the same at any width — only wall clocks move)
//! * `--verify-threads` rerun the sweep at `--threads 1` and assert the
//!   two reports are byte-identical modulo wall-clock fields
//!
//! The JSON is hand-rolled (no serde in the workspace); schema mirrors
//! BENCH_scale.json. Keep it in sync with EXPERIMENTS.md X12.

use hog_chaos::{Fault, FaultPlan};
use hog_core::driver::{run_workload, RunResult};
use hog_core::ClusterConfig;
use hog_sim_core::SimDuration;
use hog_workload::SubmissionSchedule;
use std::fmt::Write as _;
use std::time::Instant;

/// Static pool sizes compared against the controller.
const STATIC_TIERS: [usize; 3] = [40, 100, 300];
/// Controller bounds for the elastic runs.
const ELASTIC_MIN: usize = 40;
const ELASTIC_MAX: usize = 300;
/// Sites hammered by the burst ablation (same pair as the sched bench).
const BURST_SITES: [&str; 2] = ["UCSDT2", "AGLT2"];
/// Wall-clock regression gate for `--check` (fraction of baseline).
const REGRESSION_FRAC: f64 = 0.25;
/// Absolute slack below which a regression is considered timer noise.
const NOISE_FLOOR_MS: u64 = 250;

struct TierReport {
    label: String,
    elastic: bool,
    wall_ms: u64,
    response_secs: f64,
    mean_job_secs: f64,
    jobs_ok: usize,
    jobs: usize,
    node_hours: f64,
    grows: usize,
    shrinks: usize,
    peak_target: usize,
    fingerprint: String,
}

fn report(label: String, initial: usize, elastic: bool, wall_ms: u64, r: &RunResult) -> TierReport {
    if std::env::var_os("HOG_ELASTIC_JOBS").is_some() {
        let t0 = r.workload_start.unwrap_or(hog_sim_core::SimTime::ZERO);
        for j in &r.jobs {
            let resp = j
                .finished
                .map(|f| f.saturating_since(j.submitted).as_secs_f64())
                .unwrap_or(-1.0);
            eprintln!(
                "JOB {} {} {} {:.0} {:.1} {}",
                label,
                j.index,
                j.maps,
                j.submitted.saturating_since(t0).as_secs_f64(),
                resp,
                j.bin
            );
        }
    }
    let grows = r.elastic_actions.iter().filter(|&&(_, d)| d > 0).count();
    let shrinks = r.elastic_actions.len() - grows;
    // Walk the resize history to find the largest pool the controller
    // ever asked for (static runs: the fixed tier size).
    let mut target = initial as i64;
    let mut peak = target;
    for &(_, d) in &r.elastic_actions {
        target += d;
        peak = peak.max(target);
    }
    TierReport {
        label,
        elastic,
        wall_ms,
        response_secs: r.response_time.map(|d| d.as_secs_f64()).unwrap_or(0.0),
        mean_job_secs: r.mean_job_response_secs(),
        jobs_ok: r.jobs_succeeded(),
        jobs: r.jobs.len(),
        node_hours: r.area_reported / 3600.0,
        grows,
        shrinks,
        peak_target: peak.max(0) as usize,
        fingerprint: hog_bench::outcome_fingerprint(r),
    }
}

fn run_static(nodes: usize, seed: u64, schedule: &SubmissionSchedule) -> TierReport {
    let cfg = ClusterConfig::hog(nodes, seed).named(format!("static-{nodes}"));
    let wall = Instant::now();
    let r = run_workload(cfg, schedule, SimDuration::from_secs(100 * 3600));
    assert!(!r.stopped_early, "static-{nodes} did not finish");
    report(
        format!("static-{nodes}"),
        nodes,
        false,
        wall.elapsed().as_millis() as u64,
        &r,
    )
}

fn run_elastic(seed: u64, schedule: &SubmissionSchedule) -> TierReport {
    let cfg = ClusterConfig::hog(ELASTIC_MIN, seed)
        .with_elastic(ELASTIC_MIN, ELASTIC_MAX)
        .named(format!("elastic-{ELASTIC_MIN}-{ELASTIC_MAX}"));
    let wall = Instant::now();
    let r = run_workload(cfg, schedule, SimDuration::from_secs(100 * 3600));
    assert!(!r.stopped_early, "elastic run did not finish");
    if std::env::var_os("HOG_ELASTIC_TIMELINE").is_some() {
        let t0 = r.workload_start.unwrap_or(hog_sim_core::SimTime::ZERO);
        for &(t, d) in &r.elastic_actions {
            println!(
                "    t+{:>6.0}s {:>+4}",
                t.saturating_since(t0).as_secs_f64(),
                d
            );
        }
    }
    report(
        format!("elastic-{ELASTIC_MIN}-{ELASTIC_MAX}"),
        ELASTIC_MIN,
        true,
        wall.elapsed().as_millis() as u64,
        &r,
    )
}

/// The X11 plan: a 45-victim burst every 5 minutes for ~90 minutes,
/// alternating between the two target sites.
fn burst_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    for k in 0..18u64 {
        plan = plan.at(
            SimDuration::from_secs(300 + k * 300),
            Fault::PreemptBurst {
                site: BURST_SITES[(k % 2) as usize].to_string(),
                count: 45,
            },
        );
    }
    plan
}

fn run_burst(elastic: bool, seed: u64, schedule: &SubmissionSchedule) -> TierReport {
    let label = if elastic {
        format!("burst-elastic-{ELASTIC_MIN}-{ELASTIC_MAX}")
    } else {
        "burst-static-300".to_string()
    };
    let mut cfg = ClusterConfig::hog(if elastic { ELASTIC_MIN } else { 300 }, seed)
        .with_fault_plan(burst_plan())
        .named(label.clone());
    if elastic {
        cfg = cfg.with_elastic(ELASTIC_MIN, ELASTIC_MAX);
    }
    let wall = Instant::now();
    let r = run_workload(cfg, schedule, SimDuration::from_secs(100 * 3600));
    assert!(!r.stopped_early, "{label} did not finish");
    let initial = if elastic { ELASTIC_MIN } else { 300 };
    report(
        label,
        initial,
        elastic,
        wall.elapsed().as_millis() as u64,
        &r,
    )
}

fn tier_json(t: &TierReport) -> String {
    format!(
        "{{\"label\": \"{}\", \"elastic\": {}, \"wall_ms\": {}, \"response_secs\": {:.3}, \"mean_job_secs\": {:.3}, \"jobs_ok\": {}, \"jobs\": {}, \"node_hours\": {:.1}, \"grows\": {}, \"shrinks\": {}, \"peak_target\": {}, \"fingerprint\": \"{}\"}}",
        t.label,
        t.elastic,
        t.wall_ms,
        t.response_secs,
        t.mean_job_secs,
        t.jobs_ok,
        t.jobs,
        t.node_hours,
        t.grows,
        t.shrinks,
        t.peak_target,
        t.fingerprint
    )
}

fn to_json(seed: u64, tiers: &[TierReport], ablation: &[TierReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"elastic\",");
    let _ = writeln!(s, "  \"workload\": \"facebook_truncated\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    for (key, group) in [("tiers", tiers), ("ablation", ablation)] {
        let _ = writeln!(s, "  \"{key}\": [");
        for (i, t) in group.iter().enumerate() {
            let _ = write!(s, "    {}", tier_json(t));
            s.push_str(if i + 1 < group.len() { ",\n" } else { "\n" });
        }
        s.push_str(if key == "tiers" { "  ],\n" } else { "  ]\n" });
    }
    s.push_str("}\n");
    s
}

fn print_tier(t: &TierReport) {
    println!(
        "  {:>22}: resp={:>7.0}s mean_job={:>6.1}s ok={}/{} node_hours={:>8.1} resizes={}+{} peak={} wall={}ms fp={}",
        t.label,
        t.response_secs,
        t.mean_job_secs,
        t.jobs_ok,
        t.jobs,
        t.node_hours,
        t.grows,
        t.shrinks,
        t.peak_target,
        t.wall_ms,
        t.fingerprint
    );
}

/// The study's pass bar: the controller lands within 10% of the best
/// static pool's mean job response while spending fewer node·hours.
fn verdict(tiers: &[TierReport]) -> bool {
    let Some(el) = tiers.iter().find(|t| t.elastic) else {
        return true;
    };
    let Some(best) = tiers
        .iter()
        .filter(|t| !t.elastic)
        .min_by(|a, b| a.mean_job_secs.total_cmp(&b.mean_job_secs))
    else {
        return true;
    };
    let bar = best.mean_job_secs * 1.10;
    let ok = el.mean_job_secs <= bar && el.node_hours < best.node_hours;
    println!(
        "  verdict: elastic mean_job={:.1}s vs best static ({}) {:.1}s (bar {:.1}s), node_hours {:.1} vs {:.1} — {}",
        el.mean_job_secs,
        best.label,
        best.mean_job_secs,
        bar,
        el.node_hours,
        best.node_hours,
        if ok { "PASS" } else { "FAIL" }
    );
    ok
}

/// Extract `(label, wall_ms, fingerprint)` triples from a report written
/// by [`to_json`] (schema-coupled on purpose; no JSON dep).
fn parse_baseline(text: &str) -> Vec<(String, u64, Option<String>)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"label\":") {
            continue;
        }
        let label = line.find("\"label\": \"").and_then(|i| {
            let rest = &line[i + "\"label\": \"".len()..];
            rest.find('"').map(|end| rest[..end].to_string())
        });
        let wall = line.find("\"wall_ms\": ").and_then(|i| {
            let rest = &line[i + "\"wall_ms\": ".len()..];
            let end = rest
                .find(|ch: char| !ch.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse::<u64>().ok()
        });
        let fp = line.find("\"fingerprint\": \"").and_then(|i| {
            let rest = &line[i + "\"fingerprint\": \"".len()..];
            rest.find('"').map(|end| rest[..end].to_string())
        });
        if let (Some(l), Some(w)) = (label, wall) {
            out.push((l, w, fp));
        }
    }
    out
}

/// `--check`: every tier of this run that shares a label with the
/// baseline must stay within the wall-clock gate and keep its outcome
/// fingerprint. Returns false on regression.
fn check_against(baseline_path: &str, tiers: &[TierReport]) -> bool {
    let text = std::fs::read_to_string(baseline_path)
        .unwrap_or_else(|e| panic!("cannot read baseline {baseline_path}: {e}"));
    let baseline = parse_baseline(&text);
    assert!(
        !baseline.is_empty(),
        "baseline {baseline_path} has no tiers"
    );
    let mut ok = true;
    for t in tiers {
        let Some((_, base_ms, base_fp)) = baseline.iter().find(|(l, _, _)| *l == t.label) else {
            continue;
        };
        let limit = base_ms + (*base_ms as f64 * REGRESSION_FRAC) as u64 + NOISE_FLOOR_MS;
        let verdict = if t.wall_ms > limit {
            ok = false;
            "REGRESSED"
        } else {
            "ok"
        };
        println!(
            "  check {:>22}: {}ms vs baseline {}ms (limit {}ms) — {}",
            t.label, t.wall_ms, base_ms, limit, verdict
        );
        if let Some(fp) = base_fp {
            if fp != &t.fingerprint {
                ok = false;
                println!(
                    "  check {:>22}: fingerprint {} != baseline {} — OUTCOME CHANGED",
                    t.label, t.fingerprint, fp
                );
            }
        }
    }
    ok
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = hog_bench::arg_usize(&args, "--seed", 7) as u64;
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_elastic.json".to_string());
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let schedule = SubmissionSchedule::facebook_truncated(1000 + seed);
    println!(
        "elastic: {} jobs / {} maps / {} reduces, seed {seed}",
        schedule.len(),
        schedule.total_maps(),
        schedule.total_reduces()
    );

    let threads = hog_bench::arg_threads(&args);
    let verify_threads = args.iter().any(|a| a == "--verify-threads");
    let sweep = |threads: usize| {
        let schedule = &schedule;
        let mut jobs: Vec<Box<dyn FnOnce() -> TierReport + Send>> = Vec::new();
        for &n in &STATIC_TIERS {
            if smoke && n != 100 {
                continue;
            }
            jobs.push(Box::new(move || run_static(n, seed, schedule)));
        }
        jobs.push(Box::new(move || run_elastic(seed, schedule)));
        let tiers = hog_bench::run_cells(jobs, threads);
        let mut ablation_jobs: Vec<Box<dyn FnOnce() -> TierReport + Send>> = Vec::new();
        if !smoke {
            for elastic in [false, true] {
                ablation_jobs.push(Box::new(move || run_burst(elastic, seed, schedule)));
            }
        }
        let ablation = hog_bench::run_cells(ablation_jobs, threads);
        (tiers, ablation)
    };

    let (tiers, ablation) = sweep(threads);
    for t in &tiers {
        print_tier(t);
    }
    let ok = verdict(&tiers);
    if !ablation.is_empty() {
        println!("  -- X11 preemption bursts on {BURST_SITES:?} --");
        for t in &ablation {
            print_tier(t);
        }
    }

    let json = to_json(seed, &tiers, &ablation);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if verify_threads {
        let (t1, a1) = sweep(1);
        hog_bench::assert_threads_identical("elastic", &json, &to_json(seed, &t1, &a1));
    }

    if let Some(base) = check_path {
        let all: Vec<TierReport> = tiers.into_iter().chain(ablation).collect();
        if !check_against(&base, &all) {
            eprintln!("elastic: wall-clock regression beyond {REGRESSION_FRAC:.0}% + {NOISE_FLOOR_MS}ms noise floor, or outcome changed");
            std::process::exit(1);
        }
    }

    // The smoke tier only compares against static-100, which elastic
    // legitimately beats on node-hours but not necessarily on response;
    // only the full sweep enforces the study bar.
    if !smoke && !ok {
        eprintln!("elastic: controller missed the study bar (see verdict above)");
        std::process::exit(1);
    }
}
