//! Regenerate Tables I, II and III of the paper.
//!
//! Usage: `tables [table1|table2|table3|all]`

use hog_core::config::{ClusterConfig, ResourceConfig};
use hog_core::report::TextTable;
use hog_workload::facebook::{truncated_bins, FACEBOOK_BINS};
use hog_workload::SubmissionSchedule;

fn table1() -> String {
    let mut t = TextTable::new(&[
        "Bin",
        "#Maps at Facebook",
        "%Jobs at Facebook",
        "#Maps in Benchmark",
        "# of jobs in Benchmark",
    ]);
    for b in FACEBOOK_BINS {
        let range = if b.maps_at_facebook.0 == b.maps_at_facebook.1 {
            format!("{}", b.maps_at_facebook.0)
        } else if b.maps_at_facebook.1 == u32::MAX {
            format!(">{}", b.maps_at_facebook.0 - 1)
        } else {
            format!("{}-{}", b.maps_at_facebook.0, b.maps_at_facebook.1)
        };
        t.row(&[
            b.number.to_string(),
            range,
            format!("{:.0}%", b.fraction_at_facebook * 100.0),
            b.maps.to_string(),
            b.jobs_in_benchmark.to_string(),
        ]);
    }
    format!("TABLE I — FACEBOOK PRODUCTION WORKLOAD\n{}", t.render())
}

fn table2() -> String {
    let mut t = TextTable::new(&["Bin", "Map Tasks", "Reduce Tasks"]);
    for b in truncated_bins() {
        t.row(&[
            b.number.to_string(),
            b.maps.to_string(),
            b.reduces.to_string(),
        ]);
    }
    // Verify against a generated schedule.
    let s = SubmissionSchedule::facebook_truncated(1);
    format!(
        "TABLE II — TRUNCATED WORKLOAD FOR THIS PAPER\n{}\n(generated schedule: {} jobs, {} maps, {} reduces, span {:.0}s ≈ 21 min)\n",
        t.render(),
        s.len(),
        s.total_maps(),
        s.total_reduces(),
        s.last_submission().as_secs_f64()
    )
}

fn table3() -> String {
    let cfg = ClusterConfig::dedicated(1);
    let mut t = TextTable::new(&["Nodes", "Quantity", "Hardware and Hadoop Configuration"]);
    t.row(&[
        "Master node".into(),
        "1".into(),
        "central server: Namenode + JobTracker".into(),
    ]);
    let ResourceConfig::Fixed { nodes, .. } = &cfg.resource else {
        unreachable!()
    };
    let quad = nodes.iter().filter(|&&(m, _)| m == 4).count();
    let dual = nodes.iter().filter(|&&(m, _)| m == 2).count();
    t.row(&[
        "Slave nodes-I".into(),
        quad.to_string(),
        "2 dual-core CPUs: 4 map and 1 reduce slots per node".into(),
    ]);
    t.row(&[
        "Slave nodes-II".into(),
        dual.to_string(),
        "2 single-core CPUs: 2 map and 1 reduce slots per node".into(),
    ]);
    let total_cores: u32 = nodes.iter().map(|&(m, _)| m as u32).sum();
    format!(
        "TABLE III — DEDICATED MAPREDUCE CLUSTER CONFIGURATION\n{}\n(total: {} worker nodes, {} cores/map slots, replication {}, {} placement)\n",
        t.render(),
        nodes.len(),
        total_cores,
        cfg.hdfs.replication,
        "rack-aware"
    )
}

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let out = match which.as_str() {
        "table1" => table1(),
        "table2" => table2(),
        "table3" => table3(),
        _ => format!("{}\n{}\n{}", table1(), table2(), table3()),
    };
    println!("{out}");
    let dir = hog_bench::results_dir();
    std::fs::write(dir.join("tables.txt"), &out).expect("write tables.txt");
    eprintln!("(written to {}/tables.txt)", dir.display());
}
