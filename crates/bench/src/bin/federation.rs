//! Federation benchmark: the truncated Facebook workload replayed on a
//! fixed ~100-node budget split across 1 / 2 / 4 HOG pools, with the
//! meta-scheduler's locality-aware routing pitted against uniform-random
//! routing at two shared-dataset fractions.
//!
//! The headline claim (EXPERIMENTS.md X14): locality-aware routing beats
//! random routing on **mean job response** and on **cross-pool WAN
//! bytes** at 2 and 4 pools. The bench computes that verdict itself and
//! exits non-zero when it fails, so CI gates on it directly.
//!
//! Usage:
//!   federation [--smoke] [--seed S] [--out PATH] [--check BASELINE]
//!              [--threads N] [--verify-threads]
//!
//! * `--smoke`          run only the 1-pool cell and the 2-pool pair at
//!   the low sharing fraction (CI per-PR gate)
//! * `--seed S`         base seed (default 7; schedule seed is 1000+S;
//!   pool p's cluster seed is S+p)
//! * `--out PATH`       JSON report path (default BENCH_federation.json)
//! * `--check BASELINE` compare outcome fingerprints against a previous
//!   report and exit non-zero on any drift
//! * `--threads N`      run cells N-wide (default: available cores)
//! * `--verify-threads` rerun at `--threads 1`, assert byte-identity
//!   modulo wall-clock fields
//!
//! The 1-pool cell is the federation-overhead control: its pool
//! fingerprint must equal the plain 100-node `Cluster` fingerprint from
//! the scale bench (tests/federation.rs proves the identity; the shared
//! fingerprint makes it visible across baselines).
//!
//! JSON is hand-rolled (no serde in the workspace); keep the schema in
//! sync with `.github/workflows/ci.yml` and DESIGN.md §14.

use hog_core::ClusterConfig;
use hog_fed::{assert_fed_finished, run_federation, FedConfig, FedResult, RoutingPolicy};
use hog_sim_core::SimDuration;
use hog_workload::SubmissionSchedule;
use std::fmt::Write as _;
use std::time::Instant;

/// Node budget split evenly across the pools of every cell.
const TOTAL_NODES: usize = 100;
/// Pool counts swept by the full benchmark.
const POOL_TIERS: [usize; 3] = [1, 2, 4];
/// Shared-dataset fractions (percent) swept at 2 and 4 pools.
const SHARED_PCTS: [u32; 2] = [25, 75];
/// Peer pools receiving a copy of each shared dataset.
const PEERS: usize = 1;
/// Cross-pool replication factor for shared copies.
const R_REMOTE: u16 = 2;

struct CellReport {
    pools: usize,
    policy: &'static str,
    shared_pct: u32,
    wall_ms: u64,
    mean_job_secs: f64,
    response_secs: f64,
    jobs_ok: usize,
    jobs: usize,
    wan_bytes: u64,
    wan_transfers: u64,
    route_stagings: u64,
    initial_stagings: u64,
    fairness: f64,
    routed: Vec<u64>,
    fingerprint: String,
}

/// Federation-level outcome fingerprint: FNV-1a over every pool's
/// canonical [`hog_bench::outcome_fingerprint`] plus the routing vector
/// and WAN byte total — any change in any pool's simulated outcome, in
/// where a job ran, or in cross-pool traffic moves it.
fn fed_fingerprint(r: &FedResult) -> String {
    let mut canon = String::new();
    for p in &r.pools {
        let _ = write!(canon, "{};", hog_bench::outcome_fingerprint(p));
    }
    let _ = write!(canon, "routed={:?};wan={}", r.routed_to, r.wan_bytes);
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canon.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

fn run_cell(
    pools: usize,
    policy: RoutingPolicy,
    shared_pct: u32,
    seed: u64,
    schedule: &SubmissionSchedule,
) -> CellReport {
    let pool_cfgs: Vec<ClusterConfig> = (0..pools)
        .map(|p| ClusterConfig::hog(TOTAL_NODES / pools, seed + p as u64))
        .collect();
    let cfg = FedConfig::new(pool_cfgs, seed)
        .with_routing(policy)
        .with_sharing(shared_pct as f64 / 100.0, PEERS, R_REMOTE)
        .with_audit(true)
        .named(format!("fed-{pools}p-{}-s{shared_pct}", policy.name()));
    let wall = Instant::now();
    let r = run_federation(cfg, schedule, SimDuration::from_secs(100 * 3600));
    let wall_ms = wall.elapsed().as_millis() as u64;
    assert_fed_finished(&r);
    CellReport {
        pools,
        policy: r.policy,
        shared_pct,
        wall_ms,
        mean_job_secs: r.mean_job_response_secs(),
        response_secs: r.response_time.map(|d| d.as_secs_f64()).unwrap_or(0.0),
        jobs_ok: r.jobs_succeeded(),
        jobs: r.jobs.len(),
        wan_bytes: r.wan_bytes,
        wan_transfers: r.wan_transfers,
        route_stagings: r.route_stagings,
        initial_stagings: r.initial_stagings,
        fairness: r.pool_fairness(),
        routed: r.routed_counts.clone(),
        fingerprint: fed_fingerprint(&r),
    }
}

fn cell_json(c: &CellReport) -> String {
    let routed: Vec<String> = c.routed.iter().map(|n| n.to_string()).collect();
    format!(
        "{{\"pools\": {}, \"policy\": \"{}\", \"shared_pct\": {}, \"wall_ms\": {}, \"mean_job_secs\": {:.3}, \"response_secs\": {:.3}, \"jobs_ok\": {}, \"jobs\": {}, \"wan_bytes\": {}, \"wan_transfers\": {}, \"route_stagings\": {}, \"initial_stagings\": {}, \"fairness\": {:.4}, \"routed\": [{}], \"fingerprint\": \"{}\"}}",
        c.pools,
        c.policy,
        c.shared_pct,
        c.wall_ms,
        c.mean_job_secs,
        c.response_secs,
        c.jobs_ok,
        c.jobs,
        c.wan_bytes,
        c.wan_transfers,
        c.route_stagings,
        c.initial_stagings,
        c.fairness,
        routed.join(", "),
        c.fingerprint
    )
}

/// The locality-vs-random verdicts, one per multi-pool tier present in
/// the sweep: locality must win (mean job response strictly lower, WAN
/// bytes no higher) aggregated across the shared fractions run.
fn verdicts(cells: &[CellReport]) -> Vec<(usize, bool, f64, f64, u64, u64)> {
    let mut out = Vec::new();
    for &n in &POOL_TIERS[1..] {
        let agg = |policy: &str| -> Option<(f64, u64)> {
            let picked: Vec<&CellReport> = cells
                .iter()
                .filter(|c| c.pools == n && c.policy == policy)
                .collect();
            if picked.is_empty() {
                return None;
            }
            let mean = picked.iter().map(|c| c.mean_job_secs).sum::<f64>() / picked.len() as f64;
            let wan = picked.iter().map(|c| c.wan_bytes).sum();
            Some((mean, wan))
        };
        if let (Some((lm, lw)), Some((rm, rw))) = (agg("locality"), agg("random")) {
            out.push((n, lm < rm && lw <= rw, lm, rm, lw, rw));
        }
    }
    out
}

fn to_json(seed: u64, cells: &[CellReport], verdicts: &[(usize, bool, f64, f64, u64, u64)]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"federation\",");
    let _ = writeln!(s, "  \"workload\": \"facebook_truncated\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    let _ = writeln!(s, "  \"total_nodes\": {TOTAL_NODES},");
    s.push_str("  \"cells\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(s, "    {}", cell_json(c));
        s.push_str(if i + 1 < cells.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ],\n");
    s.push_str("  \"verdicts\": [\n");
    for (i, (n, ok, lm, rm, lw, rw)) in verdicts.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"pools\": {n}, \"locality_beats_random\": {ok}, \"locality_mean_secs\": {lm:.3}, \"random_mean_secs\": {rm:.3}, \"locality_wan_bytes\": {lw}, \"random_wan_bytes\": {rw}}}"
        );
        s.push_str(if i + 1 < verdicts.len() { ",\n" } else { "\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Extract `(pools, policy, shared_pct, fingerprint)` per cell line from
/// a report written by [`to_json`] (schema-coupled on purpose).
fn parse_baseline(text: &str) -> Vec<(usize, String, u32, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"pools\":") || !line.contains("\"policy\":") {
            continue;
        }
        let num = |key: &str| -> Option<u64> {
            let pat = format!("\"{key}\": ");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse().ok()
        };
        let string = |key: &str| -> Option<String> {
            let pat = format!("\"{key}\": \"");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            rest.find('"').map(|end| rest[..end].to_string())
        };
        if let (Some(n), Some(p), Some(s), Some(fp)) = (
            num("pools"),
            string("policy"),
            num("shared_pct"),
            string("fingerprint"),
        ) {
            out.push((n as usize, p, s as u32, fp));
        }
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let seed = hog_bench::arg_usize(&args, "--seed", 7) as u64;
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_federation.json".to_string());
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let schedule = SubmissionSchedule::facebook_truncated(1000 + seed);
    println!(
        "federation: {} jobs / {} maps / {} reduces, seed {seed}, {TOTAL_NODES} nodes",
        schedule.len(),
        schedule.total_maps(),
        schedule.total_reduces()
    );

    // Cell grid: the 1-pool control plus (policy × shared fraction) at
    // each multi-pool tier. Smoke keeps the control and the 2-pool pair
    // at the low fraction so the verdict still gates per-PR CI.
    let mut grid: Vec<(usize, RoutingPolicy, u32)> = vec![(1, RoutingPolicy::Home, 0)];
    for &n in &POOL_TIERS[1..] {
        for &pct in &SHARED_PCTS {
            for policy in [RoutingPolicy::locality_default(), RoutingPolicy::Random] {
                grid.push((n, policy, pct));
            }
        }
    }
    if smoke {
        grid.retain(|&(n, _, pct)| n == 1 || (n == 2 && pct == SHARED_PCTS[0]));
    }

    let threads = hog_bench::arg_threads(&args);
    let verify_threads = args.iter().any(|a| a == "--verify-threads");
    let sweep = |threads: usize| {
        let schedule = &schedule;
        let jobs: Vec<Box<dyn FnOnce() -> CellReport + Send>> = grid
            .iter()
            .map(|&(n, policy, pct)| {
                Box::new(move || run_cell(n, policy, pct, seed, schedule))
                    as Box<dyn FnOnce() -> CellReport + Send>
            })
            .collect();
        hog_bench::run_cells(jobs, threads)
    };

    let cells = sweep(threads);
    for c in &cells {
        println!(
            "  {}p {:>8} s={:>2}%: wall={:>6}ms mean_job={:>8.1}s wan={:>11}B route_stage={:>3} fair={:.3} routed={:?} fp={}",
            c.pools,
            c.policy,
            c.shared_pct,
            c.wall_ms,
            c.mean_job_secs,
            c.wan_bytes,
            c.route_stagings,
            c.fairness,
            c.routed,
            c.fingerprint
        );
    }

    let vs = verdicts(&cells);
    let mut failed = false;
    for (n, ok, lm, rm, lw, rw) in &vs {
        println!(
            "  verdict {n} pools: locality mean {lm:.1}s / {lw}B vs random {rm:.1}s / {rw}B — {}",
            if *ok { "LOCALITY WINS" } else { "LOCALITY LOSES" }
        );
        if !ok {
            failed = true;
        }
    }

    let json = to_json(seed, &cells, &vs);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if verify_threads {
        let t1 = sweep(1);
        hog_bench::assert_threads_identical("federation", &json, &to_json(seed, &t1, &verdicts(&t1)));
    }

    if let Some(base) = check_path {
        let text = std::fs::read_to_string(&base)
            .unwrap_or_else(|e| panic!("cannot read baseline {base}: {e}"));
        let baseline = parse_baseline(&text);
        assert!(!baseline.is_empty(), "baseline {base} has no cells");
        for c in &cells {
            let Some((_, _, _, fp)) = baseline
                .iter()
                .find(|(n, p, s, _)| *n == c.pools && p == c.policy && *s == c.shared_pct)
            else {
                continue;
            };
            if fp != &c.fingerprint {
                failed = true;
                println!(
                    "  check {}p {} s={}%: fingerprint {} != baseline {} — OUTCOME CHANGED",
                    c.pools, c.policy, c.shared_pct, c.fingerprint, fp
                );
            }
        }
    }

    if failed {
        eprintln!("federation: verdict or baseline check failed");
        std::process::exit(1);
    }
}
