//! Ablation experiments X1–X7 and the X10 chaos degradation curve (see
//! DESIGN.md §4).
//!
//! Usage: `ablations [heartbeat|replication|zombie|disk|baselines|multicopy|siteaware|chaos|all]
//!                   [--nodes N] [--threads N]`

use hog_core::baselines::compare_hog_moon_hod;
use hog_core::experiments::{
    ablation_chaos, ablation_disk, ablation_heartbeat, ablation_multicopy, ablation_replication,
    ablation_siteaware, ablation_zombie, ComparisonArm,
};
use hog_core::report::TextTable;
use hog_sim_core::SimDuration;

fn arm_row(t: &mut TextTable, label: &str, arm: &ComparisonArm) {
    let r = &arm.result;
    t.row(&[
        label.to_string(),
        format!("{:.0}", arm.response()),
        format!("{}/{}", r.jobs_succeeded(), r.jobs.len()),
        r.jt.failures.to_string(),
        r.nn_counters.2.to_string(),
        r.missing_input_blocks.to_string(),
    ]);
}

fn header() -> TextTable {
    TextTable::new(&[
        "configuration",
        "response (s)",
        "jobs ok",
        "task failures",
        "blocks lost",
        "inputs missing",
    ])
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let which = args.get(1).cloned().unwrap_or_else(|| "all".into());
    let nodes = hog_bench::arg_usize(&args, "--nodes", 60);
    let threads = hog_bench::arg_usize(&args, "--threads", 4);
    let mut out = String::new();

    let run_heartbeat = |out: &mut String| {
        eprintln!("X1 heartbeat ablation…");
        let cmp = ablation_heartbeat(nodes, threads);
        let mut t = header();
        for arm in &cmp.arms {
            arm_row(&mut t, &arm.label, arm);
        }
        out.push_str(&format!(
            "\nX1 — dead-node timeout (30 s HOG vs 630 s stock), {nodes} nodes under churn\n{}",
            t.render()
        ));
    };
    let run_replication = |out: &mut String| {
        eprintln!("X2 replication sweep…");
        let arms = ablation_replication(nodes, &[3, 5, 10, 12], threads);
        let mut t = header();
        for (f, arm) in &arms {
            arm_row(&mut t, &format!("replication={f}"), arm);
        }
        out.push_str(&format!(
            "\nX2 — replication factor under churn, {nodes} nodes\n{}",
            t.render()
        ));
    };
    let run_zombie = |out: &mut String| {
        eprintln!("X3 zombie ablation…");
        let cmp = ablation_zombie(nodes, threads);
        let mut t = header();
        for arm in &cmp.arms {
            arm_row(&mut t, &arm.label, arm);
        }
        let zombie_failures: Vec<u64> = cmp
            .arms
            .iter()
            .map(|a| a.result.cluster.zombie_task_failures)
            .collect();
        out.push_str(&format!(
            "\nX3 — abandoned (zombie) datanodes, {nodes} nodes (zombie task failures per arm: {zombie_failures:?})\n{}",
            t.render()
        ));
    };
    let run_disk = |out: &mut String| {
        eprintln!("X4 disk-overflow sweep…");
        let arms = ablation_disk(nodes, &[64, 160, 512, 20480], threads);
        let mut t = header();
        for (m, arm) in &arms {
            arm_row(&mut t, &format!("scratch={m}MiB"), arm);
        }
        out.push_str(&format!(
            "\nX4 — intermediate-data disk overflow, {nodes} nodes\n{}",
            t.render()
        ));
    };
    let run_baselines = |out: &mut String| {
        eprintln!("X5 HOG vs MOON vs HOD…");
        let (hog, moon, hod) =
            compare_hog_moon_hod(nodes, SimDuration::from_secs(45 * 60), 1700, threads);
        let mut t = header();
        arm_row(
            &mut t,
            "HOG",
            &ComparisonArm {
                label: "HOG".into(),
                result: hog,
            },
        );
        arm_row(
            &mut t,
            "MOON (anchored)",
            &ComparisonArm {
                label: "MOON".into(),
                result: moon,
            },
        );
        out.push_str(&format!(
            "\nX5 — HOG vs MOON vs HOD, {nodes} nodes under churn\n{}",
            t.render()
        ));
        out.push_str(&format!(
            "HOD ({} nodes per per-job cluster, instances NOT capped by shared grid capacity — \
             each job sees a private pool, so compare overhead, not makespan): \
             response {:.0}s, mean reconstruction overhead {:.0}s/job, jobs ok {}/{}\n",
            nodes / 4,
            hod.response_secs,
            hod.mean_overhead_secs,
            hod.jobs_succeeded,
            hod.jobs
        ));
    };
    let run_multicopy = |out: &mut String| {
        eprintln!("X6 multi-copy tasks…");
        let arms = ablation_multicopy(nodes, &[1, 2, 3], threads);
        let mut t = header();
        for (k, arm) in &arms {
            arm_row(&mut t, &format!("copies={k}"), arm);
        }
        out.push_str(&format!(
            "\nX6 — multi-copy task execution (paper §VI), {nodes} nodes under churn\n{}",
            t.render()
        ));
    };
    let run_siteaware = |out: &mut String| {
        eprintln!("X7 site-awareness ablation…");
        let cmp = ablation_siteaware(nodes, threads);
        let mut t = header();
        for arm in &cmp.arms {
            arm_row(&mut t, &arm.label, arm);
        }
        out.push_str(&format!(
            "\nX7 — site-aware vs rack-oblivious placement under site outages, {nodes} nodes\n{}",
            t.render()
        ));
    };

    let run_chaos = |out: &mut String| {
        eprintln!("X10 chaos degradation curve…");
        let arms = ablation_chaos(nodes, &[0, 1, 2, 3, 4], threads);
        let mut t = TextTable::new(&[
            "intensity",
            "response (s)",
            "jobs ok",
            "task failures",
            "blocks lost",
            "preemptions",
            "chaos verdict",
        ]);
        for (k, arm) in &arms {
            let r = &arm.result;
            let verdict = match &r.chaos_failure {
                None => "clean".to_string(),
                Some(f) => match f {
                    hog_core::chaos::ChaosFailure::InvariantViolation { violations, .. } => {
                        format!("INVARIANT ({} violations)", violations.len())
                    }
                    hog_core::chaos::ChaosFailure::Livelock { stalled_for, .. } => {
                        format!("LIVELOCK ({}s stall)", stalled_for.as_millis() / 1000)
                    }
                },
            };
            t.row(&[
                k.to_string(),
                format!("{:.0}", arm.response()),
                format!("{}/{}", r.jobs_succeeded(), r.jobs.len()),
                r.jt.failures.to_string(),
                r.nn_counters.2.to_string(),
                r.grid.map_or(0, |g| g.0).to_string(),
                verdict,
            ]);
        }
        out.push_str(&format!(
            "\nX10 — graceful degradation under escalating chaos (audited), {nodes} nodes\n{}",
            t.render()
        ));
    };

    match which.as_str() {
        "heartbeat" => run_heartbeat(&mut out),
        "replication" => run_replication(&mut out),
        "zombie" => run_zombie(&mut out),
        "disk" => run_disk(&mut out),
        "baselines" => run_baselines(&mut out),
        "multicopy" => run_multicopy(&mut out),
        "siteaware" => run_siteaware(&mut out),
        "chaos" => run_chaos(&mut out),
        _ => {
            run_heartbeat(&mut out);
            run_replication(&mut out);
            run_zombie(&mut out);
            run_disk(&mut out);
            run_baselines(&mut out);
            run_multicopy(&mut out);
            run_siteaware(&mut out);
            run_chaos(&mut out);
        }
    }

    println!("{out}");
    let dir = hog_bench::results_dir();
    let path = dir.join(format!("ablations_{which}.txt"));
    std::fs::write(&path, &out).expect("write ablations");
    eprintln!("(written to {})", path.display());
}
