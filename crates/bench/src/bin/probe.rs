//! Quick calibration probe: run the Facebook workload on the dedicated
//! cluster and/or HOG at one pool size, print the headline numbers.
//!
//! Usage: `probe [--nodes N] [--seed S] [--dedicated] [--lifetime SECS]`

use hog_core::driver::run_workload;
use hog_core::ClusterConfig;
use hog_sim_core::SimDuration;
use hog_workload::SubmissionSchedule;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let nodes = hog_bench::arg_usize(&args, "--nodes", 100);
    let seed = hog_bench::arg_usize(&args, "--seed", 1) as u64;
    let lifetime = hog_bench::arg_usize(&args, "--lifetime", 0);
    let zombies = hog_bench::arg_usize(&args, "--zombies", 0); // percent
    let zombie_fix = args.iter().any(|a| a == "--zombie-fix");
    let dedicated = args.iter().any(|a| a == "--dedicated");

    let schedule = SubmissionSchedule::facebook_truncated(1000 + seed);
    println!(
        "workload: {} jobs, {} maps, {} reduces, last submit {:.0}s",
        schedule.len(),
        schedule.total_maps(),
        schedule.total_reduces(),
        schedule.last_submission().as_secs_f64()
    );

    let cfg = if dedicated {
        ClusterConfig::dedicated(seed)
    } else {
        let mut c = ClusterConfig::hog(nodes, seed);
        if lifetime > 0 {
            c = c.with_mean_lifetime(SimDuration::from_secs(lifetime as u64));
        }
        if zombies > 0 {
            c = c.with_zombies(zombies as f64 / 100.0, zombie_fix);
        }
        c
    };
    let name = cfg.name.clone();
    let wall = Instant::now();
    let r = run_workload(cfg, &schedule, SimDuration::from_secs(100 * 3600));
    println!(
        "{name}: response={:?}s jobs_ok={}/{} events={}M wall={:.1}s",
        r.response_time.map(|d| d.as_secs_f64()),
        r.jobs_succeeded(),
        r.jobs.len(),
        r.events / 1_000_000,
        wall.elapsed().as_secs_f64()
    );
    println!(
        "  locality: node={} site={} remote={} spec={} failures={}",
        r.jt.node_local, r.jt.site_local, r.jt.remote, r.jt.speculative, r.jt.failures
    );
    println!(
        "  nn: repl_ok={} repl_fail={} lost={} bad_reports={} missing_now={} missing_input={}",
        r.nn_counters.0, r.nn_counters.1, r.nn_counters.2, r.nn_counters.3, r.missing_blocks, r.missing_input_blocks
    );
    if let Some((pre, out, starts)) = r.grid {
        println!("  grid: preemptions={pre} outages={out} starts={starts}");
    }
    println!("  mediator: {:?}", r.cluster);
    for s in &r.stuck_jobs {
        println!("  STUCK {s}");
    }
}
