//! Scheduler policy sweep: replay the truncated Facebook workload under
//! each `hog-sched` policy (FIFO, fair + delay scheduling, failure-aware)
//! across pool sizes and preemption pressure, and record the locality
//! split (node/rack/site/remote), speculation, failures and workload
//! response time per cell — the data behind EXPERIMENTS.md's scheduler
//! study.
//!
//! A second section runs the preemption-burst ablation (X11): a scripted
//! chaos plan hammers two sites with correlated `PreemptBurst`s while the
//! invariant audit is armed, comparing FIFO's placement (which keeps
//! walking into the blast zone) against the failure-aware policy (which
//! learns the sites' reliability scores and routes work around them).
//!
//! Usage:
//!   sched [--smoke] [--ablation] [--seed S] [--out PATH] [--check BASELINE]
//!         [--threads N] [--verify-threads]
//!
//! * `--smoke`          run only the 100-node stable tier (CI-friendly)
//! * `--ablation`       run only the X11 burst ablation
//! * `--seed S`         cluster seed (default 7; schedule seed is 1000+S)
//! * `--out PATH`       where to write the JSON report (default BENCH_sched.json)
//! * `--check BASELINE` compare each shared cell's outcome fingerprint
//!   against a previously written report (BENCH_sched.baseline.json in
//!   CI) and exit non-zero on any mismatch — the sweep is deterministic,
//!   so a changed fingerprint means the simulated outcome changed
//!
//! * `--threads N`      run sweep cells N-wide (default: available cores;
//!   every cell is an independent deterministic simulation, so the report
//!   is the same at any width — only wall clocks move)
//! * `--verify-threads` rerun the sweep at `--threads 1` and assert the
//!   two reports are byte-identical modulo wall-clock fields
//!
//! The JSON is hand-rolled (no serde in the workspace); the schema mirrors
//! BENCH_scale.json. Keep it in sync with EXPERIMENTS.md.

use hog_chaos::{Fault, FaultPlan};
use hog_core::driver::{run_workload, RunResult};
use hog_core::{ClusterConfig, SchedPolicy};
use hog_sim_core::SimDuration;
use hog_workload::SubmissionSchedule;
use std::fmt::Write as _;
use std::time::Instant;

/// Policies swept, in report order.
const POLICIES: [SchedPolicy; 3] = [
    SchedPolicy::Fifo,
    SchedPolicy::Fair,
    SchedPolicy::FailureAware,
];

/// `(pool size, churn label, mean lifetime override)` cells of the sweep.
/// `None` keeps the stable-site default (12 h mean glidein lifetime);
/// `Some` dials preemption pressure up to one eviction every ~2 h per
/// node, the paper's Figure-5 "fluctuating pool" regime.
const CELLS: [(usize, &str, Option<u64>); 3] = [
    (100, "stable", None),
    (300, "stable", None),
    (100, "churn", Some(2 * 3600)),
];

/// Sites targeted by the X11 preemption-burst plan. Concentrating every
/// burst on the same two sites is what gives a history-keeping scheduler
/// something to learn.
const BURST_SITES: [&str; 2] = ["UCSDT2", "AGLT2"];

struct CellReport {
    policy: SchedPolicy,
    nodes: usize,
    churn: &'static str,
    wall_ms: u64,
    response_secs: f64,
    mean_job_secs: f64,
    jobs_ok: usize,
    jobs: usize,
    node_local: u64,
    rack_local: u64,
    site_local: u64,
    remote: u64,
    speculative: u64,
    failures: u64,
    fairness: f64,
    fingerprint: String,
}

impl CellReport {
    /// Share of map launches that hit node- or rack-local input.
    fn local_share(&self) -> f64 {
        let total = self.node_local + self.rack_local + self.site_local + self.remote;
        if total == 0 {
            0.0
        } else {
            (self.node_local + self.rack_local) as f64 / total as f64
        }
    }
}

/// Time-weighted mean of the `mapreduce/fairness_jain` gauge over the
/// workload window (1.0 when metrics are off or nothing was recorded).
fn mean_fairness(r: &RunResult) -> f64 {
    let Some(reg) = &r.metrics else { return 1.0 };
    let Some(s) = reg.find("mapreduce/fairness_jain") else {
        return 1.0;
    };
    match (r.workload_start, r.response_time) {
        (Some(start), Some(resp)) if resp.as_millis() > 0 => s.mean_over(start, start + resp),
        _ => s.last_value(),
    }
}

fn cell_from(
    policy: SchedPolicy,
    nodes: usize,
    churn: &'static str,
    wall_ms: u64,
    r: &RunResult,
) -> CellReport {
    CellReport {
        policy,
        nodes,
        churn,
        wall_ms,
        response_secs: r.response_time.map(|d| d.as_secs_f64()).unwrap_or(0.0),
        mean_job_secs: r.mean_job_response_secs(),
        jobs_ok: r.jobs_succeeded(),
        jobs: r.jobs.len(),
        node_local: r.jt.node_local,
        rack_local: r.jt.rack_local,
        site_local: r.jt.site_local,
        remote: r.jt.remote,
        speculative: r.jt.speculative,
        failures: r.jt.failures,
        fairness: mean_fairness(r),
        fingerprint: hog_bench::outcome_fingerprint(r),
    }
}

fn run_cell(
    policy: SchedPolicy,
    nodes: usize,
    churn: &'static str,
    lifetime: Option<u64>,
    seed: u64,
    schedule: &SubmissionSchedule,
) -> CellReport {
    let mut cfg = ClusterConfig::hog(nodes, seed)
        .with_scheduler(policy)
        .with_metrics()
        .named(format!("sched-{}-{nodes}-{churn}", policy.as_str()));
    if let Some(secs) = lifetime {
        cfg = cfg.with_mean_lifetime(SimDuration::from_secs(secs));
    }
    let wall = Instant::now();
    let r = run_workload(cfg, schedule, SimDuration::from_secs(100 * 3600));
    cell_from(policy, nodes, churn, wall.elapsed().as_millis() as u64, &r)
}

/// X11: repeated correlated preemption bursts against [`BURST_SITES`]
/// through the workload window, invariant audit armed.
fn burst_plan() -> FaultPlan {
    let mut plan = FaultPlan::new();
    // One 45-victim burst every 5 minutes for the first ~90 minutes,
    // alternating between the two target sites, so each site is hit
    // every 10 minutes — within a half-life (600 s) of the previous hit,
    // which is what lets the failure-aware policy's reliability score
    // stay above threshold between bursts.
    for k in 0..18u64 {
        plan = plan.at(
            SimDuration::from_secs(300 + k * 300),
            Fault::PreemptBurst {
                site: BURST_SITES[(k % 2) as usize].to_string(),
                count: 45,
            },
        );
    }
    plan
}

fn run_burst(policy: SchedPolicy, seed: u64, schedule: &SubmissionSchedule) -> CellReport {
    let cfg = ClusterConfig::hog(300, seed)
        .with_scheduler(policy)
        .with_fault_plan(burst_plan())
        .with_audit(true)
        .with_metrics()
        .named(format!("sched-burst-{}", policy.as_str()));
    let wall = Instant::now();
    let r = run_workload(cfg, schedule, SimDuration::from_secs(100 * 3600));
    cell_from(policy, 300, "bursts", wall.elapsed().as_millis() as u64, &r)
}

fn cell_json(c: &CellReport) -> String {
    format!(
        "{{\"policy\": \"{}\", \"nodes\": {}, \"churn\": \"{}\", \"wall_ms\": {}, \"response_secs\": {:.3}, \"mean_job_secs\": {:.3}, \"jobs_ok\": {}, \"jobs\": {}, \"node_local\": {}, \"rack_local\": {}, \"site_local\": {}, \"remote\": {}, \"local_share\": {:.4}, \"speculative\": {}, \"failures\": {}, \"fairness\": {:.4}, \"fingerprint\": \"{}\"}}",
        c.policy.as_str(),
        c.nodes,
        c.churn,
        c.wall_ms,
        c.response_secs,
        c.mean_job_secs,
        c.jobs_ok,
        c.jobs,
        c.node_local,
        c.rack_local,
        c.site_local,
        c.remote,
        c.local_share(),
        c.speculative,
        c.failures,
        c.fairness,
        c.fingerprint
    )
}

fn to_json(seed: u64, cells: &[CellReport], ablation: &[CellReport]) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"bench\": \"sched\",");
    let _ = writeln!(s, "  \"workload\": \"facebook_truncated\",");
    let _ = writeln!(s, "  \"seed\": {seed},");
    for (key, group) in [("cells", cells), ("ablation", ablation)] {
        let _ = writeln!(s, "  \"{key}\": [");
        for (i, c) in group.iter().enumerate() {
            let _ = write!(s, "    {}", cell_json(c));
            s.push_str(if i + 1 < group.len() { ",\n" } else { "\n" });
        }
        s.push_str(if key == "cells" { "  ],\n" } else { "  ]\n" });
    }
    s.push_str("}\n");
    s
}

fn print_cell(c: &CellReport) {
    println!(
        "  {:>13} {:>4}n {:>6}: resp={:>7.0}s mean_job={:>6.1}s ok={}/{} locality n/r/s/rem={}/{}/{}/{} local={:.1}% spec={} fail={} jain={:.3} wall={}ms fp={}",
        c.policy.as_str(),
        c.nodes,
        c.churn,
        c.response_secs,
        c.mean_job_secs,
        c.jobs_ok,
        c.jobs,
        c.node_local,
        c.rack_local,
        c.site_local,
        c.remote,
        c.local_share() * 100.0,
        c.speculative,
        c.failures,
        c.fairness,
        c.wall_ms,
        c.fingerprint
    );
}

/// Extract `(policy, nodes, churn, fingerprint)` rows from a report
/// written by [`to_json`] (schema-coupled on purpose; no JSON dep).
/// Baselines written before fingerprints were recorded yield no rows.
fn parse_baseline(text: &str) -> Vec<(String, usize, String, String)> {
    let mut out = Vec::new();
    for line in text.lines() {
        let line = line.trim();
        if !line.starts_with("{\"policy\":") {
            continue;
        }
        let str_field = |key: &str| -> Option<String> {
            let pat = format!("\"{key}\": \"");
            let start = line.find(&pat)? + pat.len();
            let rest = &line[start..];
            rest.find('"').map(|end| rest[..end].to_string())
        };
        let nodes = line.find("\"nodes\": ").and_then(|i| {
            let rest = &line[i + "\"nodes\": ".len()..];
            let end = rest
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(rest.len());
            rest[..end].parse::<usize>().ok()
        });
        if let (Some(p), Some(n), Some(c), Some(fp)) = (
            str_field("policy"),
            nodes,
            str_field("churn"),
            str_field("fingerprint"),
        ) {
            out.push((p, n, c, fp));
        }
    }
    out
}

/// Compare every swept cell present in the baseline by fingerprint;
/// returns whether any mismatched.
fn check_cells(cells: &[CellReport], baseline: &[(String, usize, String, String)]) -> bool {
    let mut failed = false;
    for c in cells {
        let Some((_, _, _, fp)) = baseline
            .iter()
            .find(|(p, n, ch, _)| *p == c.policy.as_str() && *n == c.nodes && *ch == c.churn)
        else {
            continue;
        };
        if *fp != c.fingerprint {
            failed = true;
            println!(
                "  check {} {}n {}: fingerprint {} != baseline {} — OUTCOME CHANGED",
                c.policy.as_str(),
                c.nodes,
                c.churn,
                c.fingerprint,
                fp
            );
        } else {
            println!(
                "  check {} {}n {}: fingerprint matches baseline",
                c.policy.as_str(),
                c.nodes,
                c.churn
            );
        }
    }
    failed
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let ablation_only = args.iter().any(|a| a == "--ablation");
    let seed = hog_bench::arg_usize(&args, "--seed", 7) as u64;
    let out_path = args
        .iter()
        .position(|a| a == "--out")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_sched.json".to_string());
    let check_path = args
        .iter()
        .position(|a| a == "--check")
        .and_then(|i| args.get(i + 1))
        .cloned();

    let schedule = SubmissionSchedule::facebook_truncated(1000 + seed);
    println!(
        "sched: {} jobs / {} maps / {} reduces, seed {seed}",
        schedule.len(),
        schedule.total_maps(),
        schedule.total_reduces()
    );

    let threads = hog_bench::arg_threads(&args);
    let verify_threads = args.iter().any(|a| a == "--verify-threads");
    let sweep = |threads: usize| {
        let schedule = &schedule;
        let mut jobs: Vec<Box<dyn FnOnce() -> CellReport + Send>> = Vec::new();
        for &(nodes, churn, lifetime) in &CELLS {
            if ablation_only || (smoke && (nodes, churn) != (CELLS[0].0, CELLS[0].1)) {
                continue;
            }
            for &policy in &POLICIES {
                jobs.push(Box::new(move || {
                    run_cell(policy, nodes, churn, lifetime, seed, schedule)
                }));
            }
        }
        let cells = hog_bench::run_cells(jobs, threads);
        let mut ablation_jobs: Vec<Box<dyn FnOnce() -> CellReport + Send>> = Vec::new();
        if !smoke {
            for policy in [SchedPolicy::Fifo, SchedPolicy::FailureAware] {
                ablation_jobs.push(Box::new(move || run_burst(policy, seed, schedule)));
            }
        }
        let ablation = hog_bench::run_cells(ablation_jobs, threads);
        (cells, ablation)
    };

    let (cells, ablation) = sweep(threads);
    for c in &cells {
        print_cell(c);
    }
    if !ablation.is_empty() {
        println!("  -- X11 preemption bursts on {BURST_SITES:?}, audit on --");
        for c in &ablation {
            print_cell(c);
        }
    }

    let json = to_json(seed, &cells, &ablation);
    std::fs::write(&out_path, &json).expect("write report");
    println!("wrote {out_path}");

    if verify_threads {
        let (c1, a1) = sweep(1);
        hog_bench::assert_threads_identical("sched", &json, &to_json(seed, &c1, &a1));
    }

    if let Some(base) = check_path {
        let text = std::fs::read_to_string(&base)
            .unwrap_or_else(|e| panic!("cannot read baseline {base}: {e}"));
        let baseline = parse_baseline(&text);
        assert!(
            !baseline.is_empty(),
            "baseline {base} has no fingerprinted cells"
        );
        let mut failed = check_cells(&cells, &baseline);
        failed |= check_cells(&ablation, &baseline);
        if failed {
            eprintln!("sched: outcome fingerprints diverged from {base}");
            std::process::exit(1);
        }
    }
}
