//! Benchmark harness for the HOG reproduction.
//!
//! Binaries (see `src/bin/`):
//!
//! * `tables` — regenerate Tables I, II and III.
//! * `fig4` — the equivalent-performance sweep (Figure 4).
//! * `fig5` — node-fluctuation traces + Table IV areas.
//! * `ablations` — experiments X1–X7 from DESIGN.md.
//! * `probe` — quick calibration probe (single runs).
//!
//! Criterion microbenches live in `benches/`.

#![warn(missing_docs)]

use hog_core::driver::RunResult;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Resolve the output directory for benchmark artifacts (CSV files),
/// creating it if needed. Defaults to `target/paper-results`, overridable
/// via `HOG_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("HOG_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/paper-results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// FNV-1a over the outcome-defining facts of a run: anything the
/// simulation *produces* (job completion instants, locality, replication
/// counters) but nothing about how the host computed it — deliberately
/// excluding the engine event count, which legitimately shrinks when the
/// mediator dedups redundant NetTick arms without changing any outcome.
///
/// Shared by the scale, sched and elastic benchmarks; the canonical
/// string (and therefore every committed baseline fingerprint) must never
/// change.
pub fn outcome_fingerprint(r: &RunResult) -> String {
    let mut canon = String::new();
    let _ = write!(
        canon,
        "resp={:?};ok={};",
        r.response_time.map(|d| d.as_millis()),
        r.jobs_succeeded()
    );
    for j in &r.jobs {
        let _ = write!(
            canon,
            "j{}={:?}/{};",
            j.index,
            j.finished.map(|t| t.as_millis()),
            j.succeeded
        );
    }
    let _ = write!(
        canon,
        "jt={},{},{},{},{};nn={},{},{},{}",
        r.jt.node_local,
        r.jt.site_local,
        r.jt.remote,
        r.jt.speculative,
        r.jt.failures,
        r.nn_counters.0,
        r.nn_counters.1,
        r.nn_counters.2,
        r.nn_counters.3
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canon.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Parse `--threads N` style args with a default.
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Default worker count for bench sweeps: the available cores.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The `--threads N` argument, defaulting to [`default_threads`].
pub fn arg_threads(args: &[String]) -> usize {
    arg_usize(args, "--threads", default_threads()).max(1)
}

/// Run independent bench cells `threads`-wide, preserving input order
/// (results land by submission index regardless of completion order).
/// Every cell is a deterministic simulation, so the report is identical
/// at any thread count — `--verify-threads` in the sweep bins asserts
/// exactly that against a 1-thread rerun.
pub fn run_cells<T, F>(jobs: Vec<F>, threads: usize) -> Vec<T>
where
    T: Send,
    F: FnOnce() -> T + Send,
{
    let threads = threads.max(1);
    let n = jobs.len();
    if threads == 1 || n <= 1 {
        return jobs.into_iter().map(|f| f()).collect();
    }
    let results: parking_lot::Mutex<Vec<Option<T>>> =
        parking_lot::Mutex::new((0..n).map(|_| None).collect());
    let work: parking_lot::Mutex<std::vec::IntoIter<(usize, F)>> = parking_lot::Mutex::new(
        jobs.into_iter()
            .enumerate()
            .collect::<Vec<_>>()
            .into_iter(),
    );
    crossbeam::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|_| loop {
                let item = { work.lock().next() };
                let Some((idx, job)) = item else { break };
                let r = job();
                results.lock()[idx] = Some(r);
            });
        }
    })
    .expect("bench cell worker panicked");
    results
        .into_inner()
        .into_iter()
        .map(|r| r.expect("missing bench cell result"))
        .collect()
}

/// Strip host-dependent measurements from a report: `"wall_ms": 123` →
/// `"wall_ms": 0` (likewise the derived `events_per_sec`). Everything
/// else in the bench JSON is simulation outcome, which is deterministic —
/// so two reports of the same sweep must be byte-identical after this,
/// whatever `--threads`.
pub fn zero_wall(json: &str) -> String {
    let mut out = json.to_string();
    for key in ["\"wall_ms\": ", "\"events_per_sec\": "] {
        let mut next = String::with_capacity(out.len());
        let mut rest = out.as_str();
        while let Some(i) = rest.find(key) {
            let start = i + key.len();
            next.push_str(&rest[..start]);
            next.push('0');
            let tail = &rest[start..];
            let digits = tail
                .find(|c: char| !c.is_ascii_digit())
                .unwrap_or(tail.len());
            rest = &tail[digits..];
        }
        next.push_str(rest);
        out = next;
    }
    out
}

/// `--verify-threads` support: assert the report produced at `--threads
/// N` is byte-identical (modulo wall clocks, via [`zero_wall`]) to the
/// 1-thread rerun's.
pub fn assert_threads_identical(bench: &str, parallel_json: &str, serial_json: &str) {
    assert!(
        zero_wall(parallel_json) == zero_wall(serial_json),
        "{bench}: parallel report differs from --threads 1 rerun"
    );
    println!("{bench}: --verify-threads ok (report identical to --threads 1)");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["x", "--threads", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_usize(&args, "--threads", 3), 7);
        assert_eq!(arg_usize(&args, "--seeds", 3), 3);
    }
}
