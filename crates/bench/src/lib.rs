//! Benchmark harness for the HOG reproduction.
//!
//! Binaries (see `src/bin/`):
//!
//! * `tables` — regenerate Tables I, II and III.
//! * `fig4` — the equivalent-performance sweep (Figure 4).
//! * `fig5` — node-fluctuation traces + Table IV areas.
//! * `ablations` — experiments X1–X7 from DESIGN.md.
//! * `probe` — quick calibration probe (single runs).
//!
//! Criterion microbenches live in `benches/`.

#![warn(missing_docs)]

use std::path::PathBuf;

/// Resolve the output directory for benchmark artifacts (CSV files),
/// creating it if needed. Defaults to `target/paper-results`, overridable
/// via `HOG_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("HOG_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/paper-results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Parse `--threads N` style args with a default.
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["x", "--threads", "7"].iter().map(|s| s.to_string()).collect();
        assert_eq!(arg_usize(&args, "--threads", 3), 7);
        assert_eq!(arg_usize(&args, "--seeds", 3), 3);
    }
}
