//! Benchmark harness for the HOG reproduction.
//!
//! Binaries (see `src/bin/`):
//!
//! * `tables` — regenerate Tables I, II and III.
//! * `fig4` — the equivalent-performance sweep (Figure 4).
//! * `fig5` — node-fluctuation traces + Table IV areas.
//! * `ablations` — experiments X1–X7 from DESIGN.md.
//! * `probe` — quick calibration probe (single runs).
//!
//! Criterion microbenches live in `benches/`.

#![warn(missing_docs)]

use hog_core::driver::RunResult;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Resolve the output directory for benchmark artifacts (CSV files),
/// creating it if needed. Defaults to `target/paper-results`, overridable
/// via `HOG_RESULTS_DIR`.
pub fn results_dir() -> PathBuf {
    let dir = std::env::var("HOG_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/paper-results"));
    std::fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// FNV-1a over the outcome-defining facts of a run: anything the
/// simulation *produces* (job completion instants, locality, replication
/// counters) but nothing about how the host computed it — deliberately
/// excluding the engine event count, which legitimately shrinks when the
/// mediator dedups redundant NetTick arms without changing any outcome.
///
/// Shared by the scale, sched and elastic benchmarks; the canonical
/// string (and therefore every committed baseline fingerprint) must never
/// change.
pub fn outcome_fingerprint(r: &RunResult) -> String {
    let mut canon = String::new();
    let _ = write!(
        canon,
        "resp={:?};ok={};",
        r.response_time.map(|d| d.as_millis()),
        r.jobs_succeeded()
    );
    for j in &r.jobs {
        let _ = write!(
            canon,
            "j{}={:?}/{};",
            j.index,
            j.finished.map(|t| t.as_millis()),
            j.succeeded
        );
    }
    let _ = write!(
        canon,
        "jt={},{},{},{},{};nn={},{},{},{}",
        r.jt.node_local,
        r.jt.site_local,
        r.jt.remote,
        r.jt.speculative,
        r.jt.failures,
        r.nn_counters.0,
        r.nn_counters.1,
        r.nn_counters.2,
        r.nn_counters.3
    );
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in canon.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    format!("{h:016x}")
}

/// Parse `--threads N` style args with a default.
pub fn arg_usize(args: &[String], flag: &str, default: usize) -> usize {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arg_parsing() {
        let args: Vec<String> = ["x", "--threads", "7"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_usize(&args, "--threads", 3), 7);
        assert_eq!(arg_usize(&args, "--seeds", 3), 3);
    }
}
