//! Criterion benches for the two scale-path hot spots this repo's
//! incremental rework targets (DESIGN.md §10):
//!
//! * `fluid_recompute/*` — cost of the waterfilling recompute triggered by
//!   one flow start while N flows are already in the air. The incremental
//!   engine only re-waterfills the connected component the new flow
//!   touches, so cost scales with component size, not N.
//! * `namenode_tick/*` — one replication-monitor tick with a deep
//!   under-replication queue. The bucketed queue dispatches without the
//!   per-tick sort of the whole backlog.
//! * `jobtracker_heartbeat/*` — one cluster-wide heartbeat round against
//!   a loaded job queue. The incremental job-order cache and pending-only
//!   locality index keep the per-heartbeat cost flat in tracker count.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hog_hdfs::placement::SiteAwarePolicy;
use hog_hdfs::{BlockId, HdfsConfig, Namenode};
use hog_mapreduce::{Assignment, JobSubmission, JobTracker, MrParams};
use hog_net::{FluidNet, NetParams, Network, NodeId, SiteId, Topology};
use hog_sim_core::{SimRng, SimTime};
use std::hint::black_box;

/// A fluid net with `flows` active transfers spread over 8 sites × 50
/// nodes (enough endpoints that NICs are not all shared).
fn loaded_net(flows: u32) -> FluidNet {
    let mut net = FluidNet::new(NetParams::grid_default());
    let nodes = 400u32;
    for n in 0..nodes {
        net.register_node(NodeId(n), SiteId((n / 50) as u16));
    }
    for i in 0..flows {
        let src = NodeId(i * 7 % nodes);
        let dst = NodeId((i * 131 + 11) % nodes);
        net.start_flow(SimTime::ZERO, src, dst, 256 << 20, i as u64);
    }
    net
}

fn bench_fluid_recompute(c: &mut Criterion) {
    let mut group = c.benchmark_group("fluid_recompute");
    for &flows in &[10u32, 100, 1000] {
        let name = format!("start_flow_at_{flows}");
        group.bench_function(&name, |b| {
            b.iter_batched(
                || loaded_net(flows),
                |mut net| {
                    // One start = one incremental recompute of the touched
                    // component.
                    net.start_flow(SimTime::ZERO, NodeId(3), NodeId(397), 256 << 20, 1 << 40);
                    black_box(net.recompute_work())
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

fn bench_namenode_tick(c: &mut Criterion) {
    let mut group = c.benchmark_group("namenode_tick");
    group.sample_size(10);
    // 10k blocks on 200 datanodes at replication 3; killing 7 nodes puts
    // ~1k blocks below target, so the measured tick dispatches from a
    // four-digit priority queue (bounded by max_repl_orders_per_tick).
    group.bench_function("10k_blocks_1k_under", |b| {
        b.iter_batched(
            || {
                let mut topo = Topology::new();
                let mut nodes = Vec::new();
                for s in 0..10 {
                    let site = topo.add_site(format!("S{s}"), format!("s{s}.edu"));
                    for _ in 0..20 {
                        nodes.push(topo.add_node(site));
                    }
                }
                let mut nn = Namenode::new(
                    HdfsConfig::hog(),
                    Box::new(SiteAwarePolicy),
                    SimRng::seed_from_u64(3),
                );
                for &n in &nodes {
                    nn.register_datanode(SimTime::ZERO, n);
                }
                let f = nn.create_file_default("/in");
                for _ in 0..10_000 {
                    let (blk, t) = nn.allocate_block(f, 8 << 20, None, &topo).unwrap();
                    nn.commit_block(blk, &t);
                }
                for &n in nodes.iter().take(7) {
                    nn.mark_silent(SimTime::from_secs(1), n);
                }
                // Priming tick: declares the silent nodes dead and fills
                // the under-replication queue.
                let _ = nn.tick(SimTime::from_secs(3600), &topo);
                assert!(nn.under_replicated_count() >= 1000);
                (nn, topo)
            },
            |(mut nn, topo)| {
                let out = nn.tick(SimTime::from_secs(3700), &topo);
                black_box((out.orders.len(), nn.under_replicated_count()))
            },
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

/// A JobTracker with `trackers` registered workers over `trackers / 200`
/// sites and `jobs` submitted jobs whose splits land on real workers, plus
/// the matching topology. Speculation is off so the measured round is the
/// pure assignment path (no speculative rescans).
fn loaded_jt(trackers: u32, jobs: u32) -> (JobTracker, Topology, Vec<NodeId>) {
    let mut topo = Topology::new();
    let mut nodes = Vec::with_capacity(trackers as usize);
    let sites = (trackers / 200).max(1);
    for s in 0..sites {
        let site = topo.add_site(format!("S{s}"), format!("s{s}.edu"));
        for _ in 0..trackers.div_ceil(sites) {
            if nodes.len() < trackers as usize {
                nodes.push(topo.add_node(site));
            }
        }
    }
    let mut jt = JobTracker::new(
        MrParams::hog().with_speculation(false),
        SimRng::seed_from_u64(11),
    );
    for &n in &nodes {
        jt.register_tracker(SimTime::ZERO, n, topo.site_of(n), 1, 1);
    }
    for j in 0..jobs {
        let maps = 50usize;
        let spec = JobSubmission {
            input_blocks: (0..maps)
                .map(|i| (BlockId((j as u64) << 20 | i as u64), 64 << 20))
                .collect(),
            split_locations: (0..maps)
                .map(|i| {
                    // Three replicas per split, scattered like placement
                    // would scatter them.
                    (0..3usize)
                        .map(|r| nodes[(i * 997 + r * 131 + j as usize * 7919) % nodes.len()])
                        .collect()
                })
                .collect(),
            reduces: 4,
            map_cpu_secs: 30.0,
            map_output_bytes: 16 << 20,
            reduce_cpu_secs: 10.0,
            reduce_output_bytes: 16 << 20,
            output_replication: 10,
        };
        jt.submit_job(SimTime::ZERO, spec, &topo);
    }
    (jt, topo, nodes)
}

fn bench_jobtracker_heartbeat(c: &mut Criterion) {
    let mut group = c.benchmark_group("jobtracker_heartbeat");
    group.sample_size(10);
    for &(trackers, jobs) in &[(1_000u32, 10u32), (1_000, 100), (10_000, 10), (10_000, 100)] {
        let name = format!("{trackers}_trackers_{jobs}_jobs");
        group.bench_function(&name, |b| {
            b.iter_batched(
                || loaded_jt(trackers, jobs),
                |(mut jt, topo, nodes)| {
                    // One cluster-wide heartbeat round, assignments
                    // drained into a reused buffer exactly like the
                    // cluster's batched dispatch loop does.
                    let now = SimTime::from_secs(3);
                    let mut out: Vec<Assignment> = Vec::new();
                    let mut assigned = 0usize;
                    for &n in &nodes {
                        jt.heartbeat_into(now, n, &topo, &mut out);
                        assigned += out.len();
                    }
                    black_box(assigned)
                },
                BatchSize::SmallInput,
            )
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_fluid_recompute,
    bench_namenode_tick,
    bench_jobtracker_heartbeat
);
criterion_main!(benches);
