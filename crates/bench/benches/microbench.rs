//! Criterion microbenchmarks for the hot paths of the simulator:
//!
//! * event-queue push/pop throughput (every simulated action goes
//!   through it);
//! * fluid-network rate recomputation (runs on every flow-set change);
//! * placement-policy target selection (every block allocation and
//!   replication order);
//! * namenode death-detection + replication-dispatch tick;
//! * a full small end-to-end workload run.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use hog_core::driver::run_workload;
use hog_core::ClusterConfig;
use hog_hdfs::placement::{Candidate, PlacementPolicy, SiteAwarePolicy};
use hog_net::{FluidNet, NetParams, Network, NodeId, SiteId};
use hog_sim_core::{EventQueue, SimDuration, SimRng, SimTime};
use hog_workload::facebook::Bin;
use hog_workload::SubmissionSchedule;
use std::hint::black_box;

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_10k", |b| {
        let mut rng = SimRng::seed_from_u64(1);
        let times: Vec<u64> = (0..10_000).map(|_| rng.uniform_u64(0, 1_000_000)).collect();
        b.iter(|| {
            let mut q = EventQueue::with_capacity(10_000);
            for (i, &t) in times.iter().enumerate() {
                q.push(SimTime::from_millis(t), i);
            }
            let mut sum = 0usize;
            while let Some((_, v)) = q.pop() {
                sum += v;
            }
            black_box(sum)
        })
    });
}

fn bench_fluid_recompute(c: &mut Criterion) {
    c.bench_function("fluid_recompute_200_flows", |b| {
        b.iter_batched(
            || {
                let mut net = FluidNet::new(NetParams::grid_default());
                for s in 0..5u16 {
                    for n in 0..40u32 {
                        net.register_node(NodeId(s as u32 * 40 + n), SiteId(s));
                    }
                }
                net
            },
            |mut net| {
                // 200 flows; each start triggers one recompute over the
                // growing flow set.
                for i in 0..200u32 {
                    let src = NodeId(i % 200);
                    let dst = NodeId((i * 37 + 1) % 200);
                    net.start_flow(SimTime::ZERO, src, dst, 64 << 20, i as u64);
                }
                black_box(net.active_flows())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_placement(c: &mut Criterion) {
    c.bench_function("site_aware_choose_10_of_1000", |b| {
        let candidates: Vec<Candidate> = (0..1000u32)
            .map(|i| Candidate {
                node: NodeId(i),
                site: SiteId((i % 5) as u16),
                free: 1_000_000_000 - (i as u64) * 1000,
            })
            .collect();
        let mut rng = SimRng::seed_from_u64(2);
        b.iter(|| {
            let chosen = SiteAwarePolicy.choose(None, 10, &[], &candidates, &mut rng);
            black_box(chosen.len())
        })
    });
}

fn bench_namenode_tick(c: &mut Criterion) {
    use hog_hdfs::{HdfsConfig, Namenode};
    use hog_net::Topology;
    c.bench_function("namenode_tick_after_node_death", |b| {
        b.iter_batched(
            || {
                let mut topo = Topology::new();
                let mut nodes = Vec::new();
                for s in 0..5 {
                    let site = topo.add_site(format!("S{s}"), format!("s{s}.edu"));
                    for _ in 0..20 {
                        nodes.push(topo.add_node(site));
                    }
                }
                let mut nn = Namenode::new(
                    HdfsConfig::hog().with_replication(5),
                    Box::new(SiteAwarePolicy),
                    SimRng::seed_from_u64(3),
                );
                for &n in &nodes {
                    nn.register_datanode(SimTime::ZERO, n);
                }
                let f = nn.create_file_default("/in");
                for _ in 0..200 {
                    let (blk, t) = nn.allocate_block(f, 64 << 20, None, &topo).unwrap();
                    nn.commit_block(blk, &t);
                }
                nn.mark_silent(SimTime::from_secs(1), nodes[0]);
                (nn, topo)
            },
            |(mut nn, topo)| {
                let out = nn.tick(SimTime::from_secs(60), &topo);
                black_box(out.orders.len())
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    group.bench_function("small_workload_dedicated", |b| {
        let bin = Bin {
            number: 3,
            maps_at_facebook: (10, 10),
            fraction_at_facebook: 1.0,
            maps: 10,
            jobs_in_benchmark: 4,
            reduces: 3,
        };
        let schedule = SubmissionSchedule::from_bins(&[bin], 5);
        b.iter(|| {
            let r = run_workload(
                ClusterConfig::dedicated(1),
                &schedule,
                SimDuration::from_secs(12 * 3600),
            );
            black_box(r.events)
        })
    });
    group.bench_function("small_workload_hog30", |b| {
        let bin = Bin {
            number: 3,
            maps_at_facebook: (10, 10),
            fraction_at_facebook: 1.0,
            maps: 10,
            jobs_in_benchmark: 4,
            reduces: 3,
        };
        let schedule = SubmissionSchedule::from_bins(&[bin], 5);
        b.iter(|| {
            let r = run_workload(
                ClusterConfig::hog(30, 2),
                &schedule,
                SimDuration::from_secs(12 * 3600),
            );
            black_box(r.events)
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_fluid_recompute,
    bench_placement,
    bench_namenode_tick,
    bench_end_to_end
);
criterion_main!(benches);
