//! Overhead of the hog-obs trace layer on an end-to-end run.
//!
//! Four variants of the same small HOG workload:
//!
//! * `off` — `TraceMode::Off` (the default): emit closures must never
//!   run, so this is the baseline;
//! * `ring` — a 256-event flight recorder;
//! * `full` — every event retained in memory;
//! * `full_export` — full retention plus a JSONL export of the log.
//!
//! The disabled path is the contract that matters: tracing compiled in
//! but switched off must be free (see `tests/observability.rs` for the
//! hard assertion that it does not change the event count).

use criterion::{criterion_group, criterion_main, Criterion};
use hog_core::driver::run_workload;
use hog_core::ClusterConfig;
use hog_obs::{to_jsonl, TraceMode};
use hog_sim_core::SimDuration;
use hog_workload::facebook::Bin;
use hog_workload::SubmissionSchedule;
use std::hint::black_box;

fn small_schedule() -> SubmissionSchedule {
    let bin = Bin {
        number: 3,
        maps_at_facebook: (10, 10),
        fraction_at_facebook: 1.0,
        maps: 10,
        jobs_in_benchmark: 4,
        reduces: 3,
    };
    SubmissionSchedule::from_bins(&[bin], 5)
}

fn run(mode: TraceMode, export: bool) -> u64 {
    let cfg = ClusterConfig::hog(30, 2).with_tracing(mode);
    let r = run_workload(cfg, &small_schedule(), SimDuration::from_secs(12 * 3600));
    if export {
        let log = r.trace.as_ref().expect("tracing on");
        black_box(to_jsonl(&log.events).len());
    }
    r.events
}

fn bench_obs_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);
    group.bench_function("off", |b| b.iter(|| black_box(run(TraceMode::Off, false))));
    group.bench_function("ring256", |b| {
        b.iter(|| black_box(run(TraceMode::Ring(256), false)))
    });
    group.bench_function("full", |b| b.iter(|| black_box(run(TraceMode::Full, false))));
    group.bench_function("full_export", |b| {
        b.iter(|| black_box(run(TraceMode::Full, true)))
    });
    group.finish();
}

criterion_group!(benches, bench_obs_overhead);
criterion_main!(benches);
