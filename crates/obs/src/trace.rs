//! Structured trace events, sinks, and the [`Tracer`] handle shared by
//! every layer of the simulation.
//!
//! The design constraint is determinism: emitting a trace event must never
//! consume RNG state, schedule a simulation event, or otherwise perturb the
//! run. A traced run and an untraced run of the same `(config, seed)` pair
//! produce bit-identical `RunResult`s. The second constraint is cost: with
//! tracing disabled (the default) [`Tracer::emit`] is a single `Option`
//! check and the event-construction closure is never invoked.

use hog_sim_core::SimTime;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// Which subsystem emitted an event.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Layer {
    /// Cluster orchestration: master ticks, phase changes, pool resizes.
    Core,
    /// Grid substrate: glideins, preemption, site outages.
    Grid,
    /// HDFS: block placement, replication, datanode liveness.
    Hdfs,
    /// MapReduce: jobs, task attempts, speculation, shuffle.
    MapReduce,
    /// Fluid network: flow lifecycle and rate changes.
    Net,
    /// Fault injection and chaos supervision.
    Chaos,
    /// Federation: meta-scheduler routing, cross-pool staging, pool health.
    Fed,
}

impl Layer {
    /// All layers, in display order.
    pub const ALL: [Layer; 7] = [
        Layer::Core,
        Layer::Grid,
        Layer::Hdfs,
        Layer::MapReduce,
        Layer::Net,
        Layer::Chaos,
        Layer::Fed,
    ];

    /// Stable lowercase name used in exports.
    pub fn as_str(self) -> &'static str {
        match self {
            Layer::Core => "core",
            Layer::Grid => "grid",
            Layer::Hdfs => "hdfs",
            Layer::MapReduce => "mapreduce",
            Layer::Net => "net",
            Layer::Chaos => "chaos",
            Layer::Fed => "fed",
        }
    }
}

impl fmt::Display for Layer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value attached to a [`TraceEvent`].
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (ids, counts, bytes).
    U64(u64),
    /// Signed integer (deltas).
    I64(i64),
    /// Floating point (rates, factors).
    F64(f64),
    /// Short free-form text (reasons, names).
    Str(String),
    /// Boolean flag.
    Bool(bool),
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v}"),
            FieldValue::Str(v) => write!(f, "{v}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}
impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

/// One structured event in the cross-layer trace stream.
///
/// `time` and `seq` are stamped by the recorder at emit time: `time` from
/// the simulation clock the [`Tracer`] was last advanced to, `seq` as a
/// global monotone counter so events within one instant stay causally
/// ordered across layers.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Simulation time of the event.
    pub time: SimTime,
    /// Global emission sequence number (causal order within one instant).
    pub seq: u64,
    /// Emitting subsystem.
    pub layer: Layer,
    /// Event kind, e.g. `"node_start"` or `"repl_order"`.
    pub kind: &'static str,
    /// Key/value payload, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl TraceEvent {
    /// New event of the given layer and kind. Time and sequence number are
    /// filled in by the recorder when the event is emitted.
    pub fn new(layer: Layer, kind: &'static str) -> Self {
        TraceEvent {
            time: SimTime::ZERO,
            seq: 0,
            layer,
            kind,
            fields: Vec::new(),
        }
    }

    /// Attach a field (builder-style).
    pub fn with(mut self, key: &'static str, value: impl Into<FieldValue>) -> Self {
        self.fields.push((key, value.into()));
        self
    }

    /// Look up a field by key.
    pub fn field(&self, key: &str) -> Option<&FieldValue> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t={:>10.3}s seq={:<6} [{:<9}] {}",
            self.time.as_secs_f64(),
            self.seq,
            self.layer,
            self.kind
        )?;
        for (k, v) in &self.fields {
            write!(f, " {k}={v}")?;
        }
        Ok(())
    }
}

/// Where emitted events go. Implementations must be deterministic and must
/// not observe wall-clock time.
pub trait TraceSink {
    /// Consume one event (time and sequence number already stamped).
    fn record(&mut self, ev: TraceEvent);
    /// Every retained event, oldest first.
    fn retained(&self) -> Vec<TraceEvent>;
    /// Events evicted by bounded retention (0 for unbounded sinks).
    fn dropped(&self) -> u64 {
        0
    }
}

/// Discards every event. Useful for measuring the cost of event
/// construction alone.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoopSink;

impl TraceSink for NoopSink {
    fn record(&mut self, _ev: TraceEvent) {}
    fn retained(&self) -> Vec<TraceEvent> {
        Vec::new()
    }
}

/// Bounded ring buffer keeping the most recent `cap` events — the flight
/// recorder. Cheap enough to leave on for long runs; its tail is appended
/// to chaos failure dumps.
#[derive(Clone, Debug)]
pub struct RingSink {
    cap: usize,
    buf: VecDeque<TraceEvent>,
    dropped: u64,
}

impl RingSink {
    /// Ring retaining at most `cap` events (`cap` is clamped to ≥ 1).
    pub fn new(cap: usize) -> Self {
        let cap = cap.max(1);
        RingSink {
            cap,
            buf: VecDeque::with_capacity(cap),
            dropped: 0,
        }
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(ev);
    }
    fn retained(&self) -> Vec<TraceEvent> {
        self.buf.iter().cloned().collect()
    }
    fn dropped(&self) -> u64 {
        self.dropped
    }
}

/// Unbounded sink retaining every event, for full JSONL/CSV export.
#[derive(Clone, Debug, Default)]
pub struct FullSink {
    events: Vec<TraceEvent>,
}

impl TraceSink for FullSink {
    fn record(&mut self, ev: TraceEvent) {
        self.events.push(ev);
    }
    fn retained(&self) -> Vec<TraceEvent> {
        self.events.clone()
    }
}

/// What (if anything) a run records.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum TraceMode {
    /// No recorder at all; `emit` is a single branch (the default).
    #[default]
    Off,
    /// Flight recorder: keep only the most recent `n` events.
    Ring(usize),
    /// Keep every event for export.
    Full,
}

struct Recorder {
    now: SimTime,
    seq: u64,
    recorded: u64,
    sink: Box<dyn TraceSink>,
}

/// Cheap, cloneable handle through which layers emit events. Clones share
/// one recorder; a disabled tracer (the default) carries no allocation and
/// never invokes the event-construction closure.
#[derive(Clone, Default)]
pub struct Tracer {
    inner: Option<Rc<RefCell<Recorder>>>,
}

impl Tracer {
    /// A tracer that records nothing.
    pub fn disabled() -> Self {
        Tracer { inner: None }
    }

    /// Tracer for the given mode (`Off` yields a disabled tracer).
    pub fn new(mode: TraceMode) -> Self {
        match mode {
            TraceMode::Off => Tracer::disabled(),
            TraceMode::Ring(cap) => Tracer::with_sink(Box::new(RingSink::new(cap))),
            TraceMode::Full => Tracer::with_sink(Box::new(FullSink::default())),
        }
    }

    /// Tracer recording into a custom sink.
    pub fn with_sink(sink: Box<dyn TraceSink>) -> Self {
        Tracer {
            inner: Some(Rc::new(RefCell::new(Recorder {
                now: SimTime::ZERO,
                seq: 0,
                recorded: 0,
                sink,
            }))),
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Move the recorder clock forward. Called once per dispatched
    /// simulation event by the owning model; layer code never needs it.
    #[inline]
    pub fn advance(&self, now: SimTime) {
        if let Some(inner) = &self.inner {
            inner.borrow_mut().now = now;
        }
    }

    /// Emit an event. The closure is only invoked when tracing is enabled,
    /// so field formatting costs nothing on the disabled path.
    #[inline]
    pub fn emit(&self, make: impl FnOnce() -> TraceEvent) {
        let Some(inner) = &self.inner else { return };
        let mut rec = inner.borrow_mut();
        let mut ev = make();
        ev.time = rec.now;
        ev.seq = rec.seq;
        rec.seq += 1;
        rec.recorded += 1;
        rec.sink.record(ev);
    }

    /// The most recent `n` retained events, oldest first.
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let mut events = self.retained();
        let start = events.len().saturating_sub(n);
        events.drain(..start);
        events
    }

    /// Every retained event, oldest first.
    pub fn retained(&self) -> Vec<TraceEvent> {
        self.inner
            .as_ref()
            .map_or_else(Vec::new, |i| i.borrow().sink.retained())
    }

    /// Total events emitted (including any evicted from a ring).
    pub fn events_recorded(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().recorded)
    }

    /// Events evicted by bounded retention.
    pub fn dropped(&self) -> u64 {
        self.inner.as_ref().map_or(0, |i| i.borrow().sink.dropped())
    }

    /// Snapshot the recorder into a plain-data [`TraceLog`] (None when
    /// disabled). The log is `Send`, unlike the tracer itself.
    pub fn take_log(&self) -> Option<TraceLog> {
        self.inner.as_ref().map(|i| {
            let rec = i.borrow();
            TraceLog {
                events: rec.sink.retained(),
                recorded: rec.recorded,
                dropped: rec.sink.dropped(),
            }
        })
    }
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled())
            .field("recorded", &self.events_recorded())
            .finish()
    }
}

/// Plain-data snapshot of a run's trace: the retained events plus totals.
/// This is what crosses thread boundaries in sweep results.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceLog {
    /// Retained events, oldest first (the full stream under
    /// [`TraceMode::Full`], the tail under [`TraceMode::Ring`]).
    pub events: Vec<TraceEvent>,
    /// Total events emitted over the run.
    pub recorded: u64,
    /// Events evicted by bounded retention.
    pub dropped: u64,
}

/// Observability knobs carried inside a cluster configuration. The default
/// records nothing and registers no metrics.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ObsOptions {
    /// Trace recording mode.
    pub trace: TraceMode,
    /// Register and snapshot the per-layer metrics registry.
    pub metrics: bool,
    /// How many flight-recorder events to append to a chaos failure dump.
    pub dump_tail: usize,
}

impl Default for ObsOptions {
    fn default() -> Self {
        ObsOptions {
            trace: TraceMode::Off,
            metrics: false,
            dump_tail: 30,
        }
    }
}

impl ObsOptions {
    /// True when any recording is enabled.
    pub fn active(&self) -> bool {
        self.trace != TraceMode::Off || self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: &'static str) -> TraceEvent {
        TraceEvent::new(Layer::Hdfs, kind).with("block", 7u64)
    }

    #[test]
    fn disabled_tracer_never_builds_events() {
        let t = Tracer::disabled();
        let mut built = false;
        t.emit(|| {
            built = true;
            ev("x")
        });
        assert!(!built);
        assert!(!t.enabled());
        assert_eq!(t.events_recorded(), 0);
        assert!(t.take_log().is_none());
    }

    #[test]
    fn full_sink_stamps_time_and_seq() {
        let t = Tracer::new(TraceMode::Full);
        t.advance(SimTime::from_secs(5));
        t.emit(|| ev("a"));
        t.emit(|| ev("b"));
        t.advance(SimTime::from_secs(9));
        t.emit(|| ev("c"));
        let log = t.take_log().unwrap();
        assert_eq!(log.recorded, 3);
        assert_eq!(log.dropped, 0);
        let seqs: Vec<u64> = log.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(log.events[0].time, SimTime::from_secs(5));
        assert_eq!(log.events[2].time, SimTime::from_secs(9));
        assert_eq!(log.events[0].field("block"), Some(&FieldValue::U64(7)));
    }

    #[test]
    fn ring_sink_keeps_most_recent() {
        let t = Tracer::new(TraceMode::Ring(3));
        for _ in 0..10 {
            t.emit(|| ev("tick"));
        }
        let log = t.take_log().unwrap();
        assert_eq!(log.events.len(), 3);
        assert_eq!(log.recorded, 10);
        assert_eq!(log.dropped, 7);
        let seqs: Vec<u64> = log.events.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![7, 8, 9]);
    }

    #[test]
    fn tail_returns_last_n_oldest_first() {
        let t = Tracer::new(TraceMode::Full);
        for _ in 0..5 {
            t.emit(|| ev("tick"));
        }
        let tail = t.tail(2);
        assert_eq!(tail.len(), 2);
        assert_eq!(tail[0].seq, 3);
        assert_eq!(tail[1].seq, 4);
        assert_eq!(t.tail(100).len(), 5);
    }

    #[test]
    fn clones_share_one_recorder() {
        let t = Tracer::new(TraceMode::Full);
        let t2 = t.clone();
        t.emit(|| ev("a"));
        t2.emit(|| ev("b"));
        assert_eq!(t.events_recorded(), 2);
        assert_eq!(t.retained()[1].seq, 1);
    }

    #[test]
    fn obs_options_default_is_off() {
        let o = ObsOptions::default();
        assert!(!o.active());
        assert_eq!(o.trace, TraceMode::Off);
        assert!(!o.metrics);
        assert!(o.dump_tail > 0);
    }

    #[test]
    fn event_display_is_readable() {
        let t = Tracer::new(TraceMode::Full);
        t.advance(SimTime::from_secs(305));
        t.emit(|| TraceEvent::new(Layer::Hdfs, "repl_order").with("block", 17u64));
        let s = t.retained()[0].to_string();
        assert!(s.contains("[hdfs"), "{s}");
        assert!(s.contains("repl_order block=17"), "{s}");
    }
}
