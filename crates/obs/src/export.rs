//! Deterministic exporters for trace streams: JSONL, CSV, and the
//! human-readable flight-recorder tail appended to chaos failure dumps.
//!
//! Everything here is pure string formatting over already-recorded events,
//! so two runs with identical event streams produce byte-identical output.

use crate::trace::{FieldValue, TraceEvent};
use std::fmt::Write as _;

fn json_escape(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

fn json_value(v: &FieldValue, out: &mut String) {
    match v {
        FieldValue::U64(x) => {
            let _ = write!(out, "{x}");
        }
        FieldValue::I64(x) => {
            let _ = write!(out, "{x}");
        }
        FieldValue::F64(x) if x.is_finite() => {
            let _ = write!(out, "{x}");
        }
        // JSON has no NaN/Inf literal; encode as a string.
        FieldValue::F64(x) => {
            out.push('"');
            let _ = write!(out, "{x}");
            out.push('"');
        }
        FieldValue::Str(s) => {
            out.push('"');
            json_escape(s, out);
            out.push('"');
        }
        FieldValue::Bool(b) => {
            let _ = write!(out, "{b}");
        }
    }
}

/// Render events as JSON Lines, one object per event:
/// `{"t_ms":…,"seq":…,"layer":"…","kind":"…","fields":{…}}`.
pub fn to_jsonl(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 96);
    for ev in events {
        let _ = write!(
            out,
            "{{\"t_ms\":{},\"seq\":{},\"layer\":\"{}\",\"kind\":\"{}\",\"fields\":{{",
            ev.time.as_millis(),
            ev.seq,
            ev.layer,
            ev.kind
        );
        for (i, (k, v)) in ev.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('"');
            json_escape(k, &mut out);
            out.push_str("\":");
            json_value(v, &mut out);
        }
        out.push_str("}}\n");
    }
    out
}

fn csv_quote(s: &str, out: &mut String) {
    if s.contains([',', '"', '\n']) {
        out.push('"');
        out.push_str(&s.replace('"', "\"\""));
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Render events as CSV with columns `t_ms,seq,layer,kind,fields` where
/// `fields` is a `key=value;key=value` list.
pub fn to_csv(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 64 + 32);
    out.push_str("t_ms,seq,layer,kind,fields\n");
    let mut packed = String::new();
    for ev in events {
        let _ = write!(
            out,
            "{},{},{},{},",
            ev.time.as_millis(),
            ev.seq,
            ev.layer,
            ev.kind
        );
        packed.clear();
        for (i, (k, v)) in ev.fields.iter().enumerate() {
            if i > 0 {
                packed.push(';');
            }
            let _ = write!(packed, "{k}={v}");
        }
        csv_quote(&packed, &mut out);
        out.push('\n');
    }
    out
}

/// Render a flight-recorder tail for inclusion in a chaos failure dump.
/// `recorded`/`dropped` are the recorder's lifetime totals.
pub fn render_tail(events: &[TraceEvent], recorded: u64, dropped: u64) -> String {
    let mut out = format!(
        "flight recorder (last {} of {} events, {} evicted):\n",
        events.len(),
        recorded,
        dropped
    );
    if events.is_empty() {
        out.push_str("  (no events recorded)\n");
        return out;
    }
    for ev in events {
        let _ = writeln!(out, "  {ev}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{Layer, TraceMode, Tracer};
    use hog_sim_core::SimTime;

    fn sample_events() -> Vec<TraceEvent> {
        let t = Tracer::new(TraceMode::Full);
        t.advance(SimTime::from_millis(1500));
        t.emit(|| {
            TraceEvent::new(Layer::Net, "flow_start")
                .with("flow", 3u64)
                .with("rate", 0.5f64)
                .with("diffuse", true)
        });
        t.emit(|| TraceEvent::new(Layer::Grid, "node_lost").with("reason", "preempted, sadly"));
        t.retained()
    }

    #[test]
    fn jsonl_shape_and_escaping() {
        let out = to_jsonl(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"t_ms\":1500,\"seq\":0,\"layer\":\"net\",\"kind\":\"flow_start\",\
             \"fields\":{\"flow\":3,\"rate\":0.5,\"diffuse\":true}}"
        );
        assert!(lines[1].contains("\"reason\":\"preempted, sadly\""));
    }

    #[test]
    fn jsonl_escapes_control_and_quote() {
        let mut s = String::new();
        json_escape("a\"b\\c\nd\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn jsonl_nonfinite_floats_become_strings() {
        let ev = TraceEvent::new(Layer::Core, "x").with("v", f64::NAN);
        let out = to_jsonl(&[ev]);
        assert!(out.contains("\"v\":\"NaN\""), "{out}");
    }

    #[test]
    fn csv_header_and_field_quoting() {
        let out = to_csv(&sample_events());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines[0], "t_ms,seq,layer,kind,fields");
        assert_eq!(
            lines[1],
            "1500,0,net,flow_start,flow=3;rate=0.5;diffuse=true"
        );
        // Field value containing a comma gets quoted.
        assert_eq!(
            lines[2],
            "1500,1,grid,node_lost,\"reason=preempted, sadly\""
        );
    }

    #[test]
    fn tail_rendering() {
        let events = sample_events();
        let out = render_tail(&events, 10, 8);
        assert!(out.starts_with("flight recorder (last 2 of 10 events, 8 evicted):"));
        assert!(out.contains("flow_start"));
        let empty = render_tail(&[], 0, 0);
        assert!(empty.contains("no events recorded"));
    }

    #[test]
    fn export_is_deterministic() {
        let a = to_jsonl(&sample_events());
        let b = to_jsonl(&sample_events());
        assert_eq!(a, b);
    }
}
