//! Per-layer metrics registry: named gauges/counters backed by
//! [`StepSeries`] (snapshotted once per master tick) plus fixed-bucket
//! histograms, and a metric-by-metric diff between two runs.

use crate::trace::Layer;
use hog_sim_core::{Histogram, SimTime, StepSeries};
use std::borrow::Cow;
use std::fmt::Write as _;

/// Handle to a registered series-backed metric (gauge or counter).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MetricId(usize);

/// Handle to a registered histogram.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramId(usize);

#[derive(Clone, Debug)]
struct SeriesMetric {
    layer: Layer,
    name: Cow<'static, str>,
    current: f64,
    series: StepSeries,
}

#[derive(Clone, Debug)]
struct HistMetric {
    layer: Layer,
    name: &'static str,
    hist: Histogram,
}

/// Named metrics registered per layer. Series-backed metrics hold a live
/// `current` value updated by `set`/`add` and are sampled into their
/// [`StepSeries`] by `snapshot` (the cluster calls it once per master
/// tick); histograms record observations immediately.
#[derive(Clone, Debug, Default)]
pub struct MetricsRegistry {
    series: Vec<SeriesMetric>,
    hists: Vec<HistMetric>,
}

impl MetricsRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Register a series-backed metric. Names are `snake_case` and unique
    /// within a layer by convention (not enforced).
    pub fn register(&mut self, layer: Layer, name: &'static str) -> MetricId {
        self.register_name(layer, Cow::Borrowed(name))
    }

    /// Register a series-backed metric whose name is built at runtime
    /// (e.g. the per-job `job3_slots` slot-share series, registered
    /// lazily as jobs are submitted).
    pub fn register_owned(&mut self, layer: Layer, name: String) -> MetricId {
        self.register_name(layer, Cow::Owned(name))
    }

    fn register_name(&mut self, layer: Layer, name: Cow<'static, str>) -> MetricId {
        self.series.push(SeriesMetric {
            layer,
            name,
            current: 0.0,
            series: StepSeries::new(),
        });
        MetricId(self.series.len() - 1)
    }

    /// Register a histogram with the given ascending bucket edges.
    pub fn register_histogram(
        &mut self,
        layer: Layer,
        name: &'static str,
        edges: Vec<f64>,
    ) -> HistogramId {
        self.hists.push(HistMetric {
            layer,
            name,
            hist: Histogram::with_edges(edges),
        });
        HistogramId(self.hists.len() - 1)
    }

    /// Set the current value of a series metric (gauge-style).
    #[inline]
    pub fn set(&mut self, id: MetricId, v: f64) {
        self.series[id.0].current = v;
    }

    /// Add to the current value of a series metric (counter-style).
    #[inline]
    pub fn add(&mut self, id: MetricId, delta: f64) {
        self.series[id.0].current += delta;
    }

    /// Record one observation into a histogram.
    #[inline]
    pub fn observe(&mut self, id: HistogramId, x: f64) {
        self.hists[id.0].hist.record(x);
    }

    /// Sample every series metric's current value at time `t`. Out-of-order
    /// samples are clamped by [`StepSeries::record`].
    pub fn snapshot(&mut self, t: SimTime) {
        for m in &mut self.series {
            m.series.record(t, m.current);
        }
    }

    /// Full `layer/name` of a series metric.
    pub fn name(&self, id: MetricId) -> String {
        let m = &self.series[id.0];
        format!("{}/{}", m.layer, m.name)
    }

    /// The recorded series behind a metric.
    pub fn series(&self, id: MetricId) -> &StepSeries {
        &self.series[id.0].series
    }

    /// Look up a series by its full `layer/name`.
    pub fn find(&self, full_name: &str) -> Option<&StepSeries> {
        self.iter_series()
            .find(|(n, _)| n == full_name)
            .map(|(_, s)| s)
    }

    /// Iterate `(full_name, series)` in registration order.
    pub fn iter_series(&self) -> impl Iterator<Item = (String, &StepSeries)> {
        self.series
            .iter()
            .map(|m| (format!("{}/{}", m.layer, m.name), &m.series))
    }

    /// Iterate `(full_name, histogram)` in registration order.
    pub fn iter_histograms(&self) -> impl Iterator<Item = (String, &Histogram)> {
        self.hists
            .iter()
            .map(|m| (format!("{}/{}", m.layer, m.name), &m.hist))
    }

    /// Number of registered series metrics.
    pub fn len(&self) -> usize {
        self.series.len()
    }

    /// True when no series metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.series.is_empty()
    }

    /// Render a fixed-width table of every series metric: samples, mean
    /// over the recorded window, and final value.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<36} {:>8} {:>14} {:>14}",
            "metric", "samples", "mean", "last"
        );
        for (name, s) in self.iter_series() {
            let mean = series_mean(s);
            let _ = writeln!(
                out,
                "{:<36} {:>8} {:>14.3} {:>14.3}",
                name,
                s.len(),
                mean,
                s.last_value()
            );
        }
        for (name, h) in self.iter_histograms() {
            let _ = writeln!(
                out,
                "{:<36} {:>8} {:>14} {:>14}",
                name,
                h.total(),
                format!(
                    "p50={}",
                    h.quantile(0.5).map_or("-".into(), |q| format!("{q:.1}"))
                ),
                format!("overflow={}", h.overflow())
            );
        }
        out
    }
}

/// Time-weighted mean of a series over its own recorded window (0.0 when
/// fewer than one sample spans any time).
fn series_mean(s: &StepSeries) -> f64 {
    match (s.points().first(), s.points().last()) {
        (Some(&(t0, _)), Some(&(t1, _))) if t1 > t0 => s.mean_over(t0, t1),
        (Some(&(_, v)), _) => v,
        _ => 0.0,
    }
}

/// One series compared between two runs, scored by relative mean
/// divergence.
#[derive(Clone, Debug)]
pub struct SeriesDivergence {
    /// Full `layer/name` of the metric.
    pub name: String,
    /// `|mean_a − mean_b| / (max(|mean_a|, |mean_b|) + ε)` — 0 for
    /// identical means, → 1 for fully divergent ones.
    pub score: f64,
    /// Time-weighted mean in run A (0.0 when absent).
    pub mean_a: f64,
    /// Time-weighted mean in run B (0.0 when absent).
    pub mean_b: f64,
    /// Final value in run A.
    pub last_a: f64,
    /// Final value in run B.
    pub last_b: f64,
}

/// Compare two registries metric-by-metric over the union of their series
/// names, most divergent first (ties break by name for determinism).
pub fn diff_registries(a: &MetricsRegistry, b: &MetricsRegistry) -> Vec<SeriesDivergence> {
    let mut names: Vec<String> = a.iter_series().map(|(n, _)| n).collect();
    for (n, _) in b.iter_series() {
        if !names.contains(&n) {
            names.push(n);
        }
    }
    let empty = StepSeries::new();
    let mut out: Vec<SeriesDivergence> = names
        .into_iter()
        .map(|name| {
            let sa = a.find(&name).unwrap_or(&empty);
            let sb = b.find(&name).unwrap_or(&empty);
            let (mean_a, mean_b) = (series_mean(sa), series_mean(sb));
            let denom = mean_a.abs().max(mean_b.abs()) + 1e-9;
            SeriesDivergence {
                score: (mean_a - mean_b).abs() / denom,
                mean_a,
                mean_b,
                last_a: sa.last_value(),
                last_b: sb.last_value(),
                name,
            }
        })
        .collect();
    out.sort_by(|x, y| {
        y.score
            .partial_cmp(&x.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| x.name.cmp(&y.name))
    });
    out
}

/// Render the top `top` diverging series as a fixed-width table.
pub fn render_diff(diffs: &[SeriesDivergence], top: usize) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<36} {:>9} {:>13} {:>13} {:>12} {:>12}",
        "metric", "score", "mean A", "mean B", "last A", "last B"
    );
    for d in diffs.iter().take(top) {
        let _ = writeln!(
            out,
            "{:<36} {:>9.4} {:>13.3} {:>13.3} {:>12.3} {:>12.3}",
            d.name, d.score, d.mean_a, d.mean_b, d.last_a, d.last_b
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filled(scale: f64) -> MetricsRegistry {
        let mut r = MetricsRegistry::new();
        let g = r.register(Layer::Core, "pool_usable");
        let c = r.register(Layer::Hdfs, "repl_completed");
        for i in 0..5u64 {
            r.set(g, scale * i as f64);
            r.add(c, 1.0);
            r.snapshot(SimTime::from_secs(i * 30));
        }
        r
    }

    #[test]
    fn register_set_snapshot_roundtrip() {
        let r = filled(1.0);
        let s = r.find("core/pool_usable").expect("registered");
        assert_eq!(s.len(), 5);
        assert_eq!(s.last_value(), 4.0);
        let c = r.find("hdfs/repl_completed").expect("registered");
        assert_eq!(c.last_value(), 5.0);
        assert!(r.find("net/nope").is_none());
    }

    #[test]
    fn histogram_metrics_record_immediately() {
        let mut r = MetricsRegistry::new();
        let h = r.register_histogram(Layer::MapReduce, "job_secs", vec![0.0, 60.0, 600.0]);
        r.observe(h, 30.0);
        r.observe(h, 10_000.0);
        let (name, hist) = r.iter_histograms().next().unwrap();
        assert_eq!(name, "mapreduce/job_secs");
        assert_eq!(hist.total(), 2);
        assert_eq!(hist.overflow(), 1);
    }

    #[test]
    fn diff_ranks_divergent_series_first() {
        let a = filled(1.0);
        let b = filled(3.0); // pool_usable diverges, repl_completed identical
        let diffs = diff_registries(&a, &b);
        assert_eq!(diffs.len(), 2);
        assert_eq!(diffs[0].name, "core/pool_usable");
        assert!(diffs[0].score > 0.5, "score={}", diffs[0].score);
        assert!(diffs[1].score < 1e-6);
    }

    #[test]
    fn diff_handles_disjoint_registries() {
        let a = filled(1.0);
        let mut b = MetricsRegistry::new();
        let only_b = b.register(Layer::Net, "active_flows");
        b.set(only_b, 2.0);
        b.snapshot(SimTime::from_secs(10));
        let diffs = diff_registries(&a, &b);
        assert_eq!(diffs.len(), 3);
        let flows = diffs.iter().find(|d| d.name == "net/active_flows").unwrap();
        assert_eq!(flows.mean_a, 0.0);
        assert!(flows.score > 0.9);
    }

    #[test]
    fn owned_names_round_trip_like_static_ones() {
        let mut r = MetricsRegistry::new();
        let ids: Vec<MetricId> = (0..3)
            .map(|i| r.register_owned(Layer::MapReduce, format!("job{i}_slots")))
            .collect();
        for (i, &id) in ids.iter().enumerate() {
            r.set(id, i as f64);
        }
        r.snapshot(SimTime::from_secs(30));
        assert_eq!(r.name(ids[2]), "mapreduce/job2_slots");
        let s = r.find("mapreduce/job1_slots").expect("registered");
        assert_eq!(s.last_value(), 1.0);
    }

    #[test]
    fn render_does_not_panic_on_empty() {
        let r = MetricsRegistry::new();
        assert!(r.is_empty());
        let _ = r.render_summary();
        let _ = render_diff(&diff_registries(&r, &r), 10);
    }
}
