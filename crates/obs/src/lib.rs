//! Cross-layer observability for the HOG simulation.
//!
//! Three pieces, all deterministic and all off by default:
//!
//! * [`trace`] — structured [`TraceEvent`]s emitted by every layer through
//!   a shared [`Tracer`] handle, recorded into a [`TraceSink`]: nothing
//!   ([`TraceMode::Off`]), a bounded ring-buffer flight recorder
//!   ([`TraceMode::Ring`]), or the full stream ([`TraceMode::Full`]).
//! * [`export`] — byte-deterministic JSONL/CSV exporters plus the
//!   flight-recorder tail rendering appended to chaos failure dumps.
//! * [`registry`] — a per-layer [`MetricsRegistry`] of named
//!   gauges/counters (snapshotted into `StepSeries` each master tick) and
//!   histograms, with [`diff_registries`] to rank the most divergent series
//!   between two runs.
//!
//! The overhead contract: tracing never consumes RNG state and never
//! schedules simulation events, so enabling it cannot change a
//! `RunResult`; with everything off, the per-emit cost is one branch and
//! the event-construction closure is never run.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod export;
pub mod registry;
pub mod trace;

pub use export::{render_tail, to_csv, to_jsonl};
pub use registry::{
    diff_registries, render_diff, HistogramId, MetricId, MetricsRegistry, SeriesDivergence,
};
pub use trace::{
    FieldValue, FullSink, Layer, NoopSink, ObsOptions, RingSink, TraceEvent, TraceLog, TraceMode,
    TraceSink, Tracer,
};
