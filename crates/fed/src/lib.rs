//! # hog-fed — federated multi-pool HOG
//!
//! HOG (the paper) runs **one** Hadoop instance over the whole grid. This
//! crate asks the natural scale-out question: what if each grid region
//! ran its *own* HOG pool — a full Namenode + JobTracker master stack
//! with its own glidein sites — and a thin federation layer routed jobs
//! between pools and replicated hot datasets across them?
//!
//! Three pieces:
//!
//! - [`Federation`] — the executor: N [`hog_core::Cluster`] pools, each
//!   with its own event queue, co-simulated under one clock
//!   (deterministic merge of queues; see the module docs in
//!   [`federation`]).
//! - [`MetaScheduler`] — routes each fired job submission to a pool by
//!   data locality, queue depth, and a decayed pool-health score, with
//!   spill-over when the preferred pool's backlog is too deep.
//! - Cross-pool block placement — shared datasets get replicas in peer
//!   pools up front, and routed jobs stage their dataset on demand, both
//!   over the inter-pool WAN tier ([`hog_net::WanTier`], slower than any
//!   intra-pool link).
//!
//! Entry points: [`FedConfig`] + [`run_federation`], mirroring
//! `hog_core::run_workload`. The `federation` bench bin sweeps pool
//! count × routing policy × shared-dataset fraction over this API.

pub mod config;
pub mod federation;
pub mod meta;

pub use config::FedConfig;
pub use federation::{
    assert_fed_finished, jain, run_federation, FedResult, Federation,
};
pub use meta::{MetaScheduler, PoolSnapshot, RoutingPolicy};
