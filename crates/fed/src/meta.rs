//! The federation meta-scheduler: pick a pool for each submitted job.
//!
//! Routing weighs three signals per pool, in the spirit of the related
//! work's placement scores (ATLAS-style failure history as a *pool
//! health* signal; see PAPERS.md):
//!
//! 1. **Data locality** — the fraction of the job's input blocks already
//!    resident in the pool. Under the federation's whole-dataset
//!    placement a dataset is either fully resident (home pool, or a peer
//!    that holds a shared copy) or absent, so this is 1.0 or 0.0; the
//!    scoring still works on fractions if partial placement ever lands.
//! 2. **Queue depth** — the pool's task backlog normalized by its live
//!    slot count, so a small busy pool and a large busy pool compare
//!    fairly.
//! 3. **Pool health** — an exponentially decayed score of recent task
//!    attempt failures, fed by the federation's periodic sampling; a pool
//!    burning attempts (churn storm, partition aftermath) is demoted
//!    without being blacklisted.
//!
//! **Spill-over**: when the best-scoring pool's backlog exceeds
//! `spill_threshold`, the meta-scheduler re-scores with locality
//! discounted (a WAN staging round-trip beats queueing behind a deep
//! backlog, but a peer already holding a shared copy still beats an
//! empty one) and takes the best lightly-loaded pool instead.

use hog_sim_core::SimRng;

/// How the federation routes each fired job submission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RoutingPolicy {
    /// Score pools by locality − backlog − health penalty, spilling over
    /// to the least-loaded pool when the preferred backlog exceeds the
    /// threshold (tasks per live slot).
    LocalityAware {
        /// Backlog (tasks per live slot) above which the preferred pool
        /// is considered saturated and the job spills elsewhere.
        spill_threshold: f64,
    },
    /// Uniform-random pool choice (the baseline the bench beats).
    Random,
    /// Always the dataset's home pool (no load balancing at all).
    Home,
}

impl RoutingPolicy {
    /// The default locality-aware tuning: spill when a pool's backlog
    /// exceeds four tasks per live slot.
    pub fn locality_default() -> Self {
        RoutingPolicy::LocalityAware {
            spill_threshold: 4.0,
        }
    }

    /// Stable name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            RoutingPolicy::LocalityAware { .. } => "locality",
            RoutingPolicy::Random => "random",
            RoutingPolicy::Home => "home",
        }
    }
}

/// Per-pool state the meta-scheduler scores against, snapshotted by the
/// federation at routing time.
#[derive(Clone, Copy, Debug)]
pub struct PoolSnapshot {
    /// Fraction of the job's input blocks resident in this pool.
    pub locality: f64,
    /// Pending + running tasks per live slot (0 when the pool is empty
    /// of work; saturates the spill threshold when deep).
    pub backlog_per_slot: f64,
    /// Decayed recent attempt-failure score (federation-maintained).
    pub health_penalty: f64,
}

/// Floor on the locality weight (backlog units): even a tiny dataset's
/// staging round-trip costs about as much as two queued tasks.
const LOCALITY_WEIGHT: f64 = 2.0;

/// Ceiling on the locality weight: beyond this a dataset is "immovable"
/// and extra bytes change nothing — keeps one monster job from pinning
/// the score scale.
const MAX_LOCALITY_WEIGHT: f64 = 32.0;

/// Locality discount on the spill-over path: a saturated pool's data no
/// longer justifies queueing at full weight, but a peer already holding
/// a shared copy still beats an empty peer by the staging cost.
const SPILL_DISCOUNT: f64 = 0.5;

/// The routing engine. Owns the RNG for `Random` so routing decisions
/// consume no other stream (determinism: enabling federation must not
/// perturb pool-internal randomness).
#[derive(Clone, Debug)]
pub struct MetaScheduler {
    policy: RoutingPolicy,
    rng: SimRng,
}

impl MetaScheduler {
    /// Build a meta-scheduler; `seed` feeds only the `Random` policy.
    pub fn new(policy: RoutingPolicy, seed: u64) -> Self {
        MetaScheduler {
            policy,
            // Decorrelated from the federation seed like the chaos stream.
            rng: SimRng::seed_from_u64(seed ^ 0x686f_675f_6665_6421), // b"hog_fed!"
        }
    }

    /// The active policy.
    pub fn policy(&self) -> RoutingPolicy {
        self.policy
    }

    /// Pick the pool for a job. `home` is the dataset's home pool,
    /// `stage_units` the estimated cost of staging this job's dataset
    /// across the WAN expressed in backlog units (one unit ≈ one queued
    /// task per slot of delay), `snaps` one entry per pool.
    /// Deterministic: ties break on the lower pool index.
    pub fn route(&mut self, home: usize, stage_units: f64, snaps: &[PoolSnapshot]) -> usize {
        debug_assert!(!snaps.is_empty());
        match self.policy {
            RoutingPolicy::Home => home,
            RoutingPolicy::Random => self.rng.index(snaps.len()),
            RoutingPolicy::LocalityAware { spill_threshold } => {
                // Size-aware locality: moving a big dataset costs more,
                // so its resident pools are proportionally stickier.
                let w = stage_units.clamp(LOCALITY_WEIGHT, MAX_LOCALITY_WEIGHT);
                let preferred = Self::argmax(snaps, |s| {
                    w * s.locality - s.backlog_per_slot - s.health_penalty
                });
                if snaps[preferred].backlog_per_slot <= spill_threshold {
                    return preferred;
                }
                // Preferred pool saturated: locality no longer pays for
                // the queueing delay at full weight, but among comparably
                // loaded alternatives resident data still saves a whole
                // WAN staging — re-score with locality discounted rather
                // than dropped.
                Self::argmax(snaps, |s| {
                    SPILL_DISCOUNT * w * s.locality - s.backlog_per_slot - s.health_penalty
                })
            }
        }
    }

    fn argmax(snaps: &[PoolSnapshot], score: impl Fn(&PoolSnapshot) -> f64) -> usize {
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (i, s) in snaps.iter().enumerate() {
            let sc = score(s);
            if sc > best_score {
                best = i;
                best_score = sc;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(locality: f64, backlog: f64) -> PoolSnapshot {
        PoolSnapshot {
            locality,
            backlog_per_slot: backlog,
            health_penalty: 0.0,
        }
    }

    #[test]
    fn locality_prefers_resident_pool() {
        let mut m = MetaScheduler::new(RoutingPolicy::locality_default(), 1);
        let pick = m.route(0, 2.0, &[snap(1.0, 1.0), snap(0.0, 0.0)]);
        assert_eq!(pick, 0, "resident pool wins a one-task backlog gap");
    }

    #[test]
    fn deep_backlog_spills_over() {
        let mut m = MetaScheduler::new(RoutingPolicy::locality_default(), 1);
        let pick = m.route(0, 2.0, &[snap(1.0, 9.0), snap(0.0, 0.5)]);
        assert_eq!(pick, 1, "saturated resident pool spills to idle peer");
    }

    #[test]
    fn big_dataset_sticks_to_resident_pool() {
        let mut m = MetaScheduler::new(RoutingPolicy::locality_default(), 1);
        // Same backlog gap as `deep_backlog_spills_over`, but the
        // dataset costs 20 backlog units to move: spilling to the empty
        // peer no longer pays, while a peer holding a shared copy does.
        let pick = m.route(0, 20.0, &[snap(1.0, 9.0), snap(0.0, 0.5)]);
        assert_eq!(pick, 0, "immovable dataset rides out the backlog");
        let pick = m.route(0, 20.0, &[snap(1.0, 9.0), snap(1.0, 0.5)]);
        assert_eq!(pick, 1, "a resident lightly-loaded peer still wins");
    }

    #[test]
    fn health_penalty_demotes_failing_pool() {
        let mut m = MetaScheduler::new(RoutingPolicy::locality_default(), 1);
        let sick = PoolSnapshot {
            locality: 1.0,
            backlog_per_slot: 0.0,
            health_penalty: 5.0,
        };
        let pick = m.route(0, 2.0, &[sick, snap(1.0, 0.0)]);
        assert_eq!(pick, 1);
    }

    #[test]
    fn random_is_seed_deterministic() {
        let picks = |seed| {
            let mut m = MetaScheduler::new(RoutingPolicy::Random, seed);
            (0..32)
                .map(|_| m.route(0, 2.0, &[snap(0.0, 0.0); 4]))
                .collect::<Vec<_>>()
        };
        assert_eq!(picks(7), picks(7));
        assert_ne!(picks(7), picks(8));
    }

    #[test]
    fn home_policy_ignores_load() {
        let mut m = MetaScheduler::new(RoutingPolicy::Home, 1);
        assert_eq!(m.route(2, 2.0, &[snap(0.0, 0.0); 4]), 2);
    }
}
