//! The federation executor: N full master stacks co-simulated under one
//! clock, a meta-scheduler routing jobs between them, and an inter-pool
//! WAN tier staging datasets across pool boundaries.
//!
//! ## Co-simulation
//!
//! Each pool is a complete [`Cluster`] (Namenode + JobTracker + glidein
//! sites, optionally checkpointed) with its **own** event queue. The
//! federation's driver loop pops the globally earliest event across all
//! pool queues plus its own federation queue (WAN completions, periodic
//! ticks) and dispatches it to the owning pool under a
//! [`Scheduler`] borrowed over that pool's queue. Ties at the same
//! instant resolve to the lower pool index, with federation events last —
//! a fixed total order, so runs are deterministic.
//!
//! ## The job lifecycle
//!
//! A job's submission timeline fires in its dataset's *home* pool; the
//! fired submission is intercepted (pool mode:
//! [`Cluster::take_pending_routes`]) and handed to the
//! [`MetaScheduler`], which scores every pool on locality, backlog, and
//! health. If the chosen pool already holds the dataset the job is
//! submitted there immediately; otherwise the dataset crosses the WAN
//! first ([`WanTier`]), is staged onto the destination pool's datanodes
//! at `r_remote`, and the job submits on staging completion.
//!
//! ```text
//! Scheduled ──route──► Submitted{p} ──job done──► Done{p}
//!     │                    ▲
//!     └──route to non-resident pool──► AwaitingStage{p} ──staged──┘
//! ```
//!
//! ## Determinism and the 1-pool identity
//!
//! With a single pool, every dataset is home, routing is the identity,
//! and the pool's queue sees exactly the event sequence a standalone
//! [`Cluster`] run produces: deferred routing happens synchronously after
//! the submitting handler returns, against the same queue at the same
//! instant, so sequence-number allocation is unchanged. Federation-level
//! ticks live in a separate queue and only *read* pool state. The
//! `one_pool_identity` integration tests pin this with
//! fingerprint-identical runs.

use std::collections::BTreeMap;
use std::collections::BTreeSet;

use hog_chaos::{Auditor, ChaosFailure, Fault};
use hog_core::cluster::Cluster;
use hog_core::driver::{collect_result, JobOutcome, RunResult};
use hog_core::event::Event;
use hog_net::{WanDone, WanTier, WanTransferId};
use hog_obs::{Layer, MetricId, MetricsRegistry};
use hog_sim_core::engine::{RunStats, StopReason};
use hog_sim_core::{
    EventQueue, Model, Scheduler, SimDuration, SimRng, SimTime, Violation,
};
use hog_workload::SubmissionSchedule;

use crate::config::FedConfig;
use crate::meta::{MetaScheduler, PoolSnapshot};

/// Salt decorrelating the shared-dataset tagging draw from every other
/// stream keyed off the federation seed.
const SHARE_SALT: u64 = 0x6665_645f_7368_7231; // b"fed_shr1"

/// Per-tick multiplicative decay of the pool-health failure score.
const HEALTH_DECAY: f64 = 0.5;
/// Health-score weight of one task-attempt failure observed in a tick.
const HEALTH_SCALE: f64 = 0.1;

/// Runaway guard across all pool queues combined (same budget a
/// standalone run gets).
const EVENT_BUDGET: u64 = 2_000_000_000;

/// Seconds of queueing delay one backlog unit (one pending task per
/// live slot) is worth — converts a dataset's WAN staging time into the
/// meta-scheduler's backlog-denominated locality weight. Calibrated to
/// a typical Facebook-bin task duration (tens of seconds).
const BACKLOG_UNIT_SECS: f64 = 30.0;

/// Federation-internal events (separate queue from the pools').
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum FedEvent {
    /// The earliest in-flight WAN transfer may have completed.
    WanTick,
    /// Periodic health sampling, gauges, and (optionally) the
    /// no-lost-jobs audit.
    FedTick,
}

/// Why a dataset is crossing the WAN.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum StageKind {
    /// Up-front shared-dataset replication (before the workload starts).
    Initial,
    /// On-demand staging for a job routed to a non-resident pool.
    Route,
}

/// Where a job is in the federation lifecycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobPhase {
    /// Submission timeline not fired yet (or not routed yet).
    Scheduled,
    /// Routed to `pool`; dataset crossing the WAN / staging there.
    AwaitingStage { pool: usize },
    /// Running (or queued) in `pool`'s JobTracker.
    Submitted { pool: usize },
    /// Terminal in `pool`.
    Done { pool: usize },
}

/// One member pool: a full master stack plus its private event queue.
struct Pool {
    cluster: Cluster,
    queue: EventQueue<Event>,
    /// Events handled by this pool (per-pool `RunStats` synthesis).
    events: u64,
    /// Schedule indices submitted here whose result is still pending.
    inflight: Vec<usize>,
}

/// Per-pool gauge ids in the federation registry.
struct PoolGauges {
    backlog: MetricId,
    size: MetricId,
    routed: MetricId,
    staged_bytes: MetricId,
}

/// Everything measured in one federation run.
#[derive(Clone, Debug)]
pub struct FedResult {
    /// Federation label.
    pub name: String,
    /// Federation seed.
    pub seed: u64,
    /// Routing policy name ("locality" / "random" / "home").
    pub policy: &'static str,
    /// Per-pool results (same shape a standalone run produces).
    pub pools: Vec<RunResult>,
    /// Merged per-job outcomes in schedule order, each taken from the
    /// pool that ran the job.
    pub jobs: Vec<JobOutcome>,
    /// Pool each job was routed to (`None` if never routed).
    pub routed_to: Vec<Option<usize>>,
    /// Jobs routed to each pool.
    pub routed_counts: Vec<u64>,
    /// Cross-pool WAN bytes delivered into each pool.
    pub staged_bytes_in: Vec<u64>,
    /// On-demand (route-triggered) WAN stagings.
    pub route_stagings: u64,
    /// Up-front shared-dataset stagings.
    pub initial_stagings: u64,
    /// Total bytes delivered over the inter-pool WAN.
    pub wan_bytes: u64,
    /// WAN transfers started.
    pub wan_transfers: u64,
    /// Inter-pool partitions injected (PoolPartition faults frozen the
    /// WAN this many times).
    pub partitions: u64,
    /// Workload response: first submission → last job terminal (`None`
    /// when the horizon cut the run short).
    pub response_time: Option<SimDuration>,
    /// Clock when the run stopped.
    pub end_time: SimTime,
    /// Pool events handled (federation ticks excluded).
    pub events: u64,
    /// Federation-queue events handled.
    pub fed_events: u64,
    /// True when every job reached a terminal state.
    pub completed: bool,
    /// First federation-audit failure, if the audit tripped.
    pub chaos_failure: Option<ChaosFailure>,
    /// Per-pool federation gauges (`fed/pool{i}_*`).
    pub metrics: MetricsRegistry,
}

impl FedResult {
    /// Mean job response time in seconds over finished jobs.
    pub fn mean_job_response_secs(&self) -> f64 {
        let times: Vec<f64> = self
            .jobs
            .iter()
            .filter_map(|j| j.response().map(|d| d.as_secs_f64()))
            .collect();
        if times.is_empty() {
            0.0
        } else {
            times.iter().sum::<f64>() / times.len() as f64
        }
    }

    /// Jobs that succeeded.
    pub fn jobs_succeeded(&self) -> usize {
        self.jobs.iter().filter(|j| j.succeeded).count()
    }

    /// Jain fairness index over per-pool executed map assignments —
    /// 1.0 when every pool did equal work, 1/n when one pool did it all.
    pub fn pool_fairness(&self) -> f64 {
        let xs: Vec<f64> = self
            .pools
            .iter()
            .map(|p| (p.jt.node_local + p.jt.site_local + p.jt.remote) as f64)
            .collect();
        jain(&xs)
    }
}

/// Jain's fairness index; 1.0 for the empty/all-zero vector (nothing to
/// be unfair about).
pub fn jain(xs: &[f64]) -> f64 {
    let sum: f64 = xs.iter().sum();
    let sq: f64 = xs.iter().map(|x| x * x).sum();
    if sq == 0.0 {
        1.0
    } else {
        sum * sum / (xs.len() as f64 * sq)
    }
}

/// The federated executor. Build with [`Federation::new`], run with
/// [`Federation::run`].
pub struct Federation {
    cfg: FedConfig,
    schedule: SubmissionSchedule,
    pools: Vec<Pool>,
    fed_queue: EventQueue<FedEvent>,
    wan: WanTier,
    meta: MetaScheduler,

    /// Dataset home pool per schedule index.
    home: Vec<usize>,
    /// Peer pools holding (or due to hold) a shared copy, per index.
    peers: Vec<Vec<usize>>,
    /// Pools where each dataset is fully resident.
    residency: Vec<BTreeSet<usize>>,
    phase: Vec<JobPhase>,
    /// (job, destination pool) → why it is staging there.
    awaiting: BTreeMap<(usize, usize), StageKind>,
    /// In-flight WAN transfer → (job, destination pool, kind).
    wan_pending: BTreeMap<WanTransferId, (usize, usize, StageKind)>,

    staging_started: bool,
    initial_pending: usize,
    workload_base: Option<SimTime>,
    /// Jobs not yet terminal.
    remaining: usize,

    /// Decayed per-pool attempt-failure score (meta-scheduler input).
    health: Vec<f64>,
    last_failures: Vec<u64>,

    registry: MetricsRegistry,
    gauges: Vec<PoolGauges>,
    auditor: Auditor,
    chaos_failure: Option<ChaosFailure>,

    routed_to: Vec<Option<usize>>,
    routed_counts: Vec<u64>,
    staged_bytes_in: Vec<u64>,
    route_stagings: u64,
    initial_stagings: u64,
    partitions: u64,

    /// Earliest armed WanTick (dedup; stale later ticks are harmless).
    armed_wan: Option<SimTime>,
    events: u64,
    fed_events: u64,
}

impl Federation {
    /// Build the federation: stamp a [`hog_core::config::PoolRole`] on
    /// every pool config (home datasets are dealt round-robin by schedule
    /// index), draw the shared-dataset set from the federation seed, and
    /// bootstrap every pool at `t = 0`.
    pub fn new(mut cfg: FedConfig, schedule: &SubmissionSchedule) -> Self {
        let n = cfg.pools.len();
        let n_jobs = schedule.len();

        // Dataset placement: home pool round-robin, shared tag by seeded
        // draw (index order, so the set is independent of pool count
        // changes only in the trivial 1-pool case).
        let home: Vec<usize> = (0..n_jobs).map(|i| i % n).collect();
        let mut rng = SimRng::seed_from_u64(cfg.seed ^ SHARE_SALT);
        let peer_count = cfg.peer_count.min(n.saturating_sub(1));
        let peers: Vec<Vec<usize>> = (0..n_jobs)
            .map(|i| {
                let shared = rng.chance(cfg.shared_fraction);
                if !shared || peer_count == 0 {
                    Vec::new()
                } else {
                    (1..=peer_count).map(|k| (home[i] + k) % n).collect()
                }
            })
            .collect();
        let residency: Vec<BTreeSet<usize>> =
            home.iter().map(|&h| BTreeSet::from([h])).collect();

        // Stamp pool roles and build the member stacks.
        let mut pools = Vec::with_capacity(n);
        for (p, pool_cfg) in cfg.pools.iter_mut().enumerate() {
            let home_jobs: Vec<usize> =
                (0..n_jobs).filter(|&i| home[i] == p).collect();
            pool_cfg.pool = Some(hog_core::config::PoolRole {
                pool_id: p,
                home_jobs,
            });
            let cluster = Cluster::new(pool_cfg.clone(), schedule);
            pools.push(Pool {
                cluster,
                queue: EventQueue::new(),
                events: 0,
                inflight: Vec::new(),
            });
        }
        for pool in &mut pools {
            let mut sched = Scheduler::over(SimTime::ZERO, &mut pool.queue);
            pool.cluster.bootstrap_sched(&mut sched);
        }

        let mut registry = MetricsRegistry::new();
        let gauges: Vec<PoolGauges> = (0..n)
            .map(|p| PoolGauges {
                backlog: registry.register_owned(Layer::Fed, format!("pool{p}_backlog")),
                size: registry.register_owned(Layer::Fed, format!("pool{p}_size")),
                routed: registry.register_owned(Layer::Fed, format!("pool{p}_routed")),
                staged_bytes: registry
                    .register_owned(Layer::Fed, format!("pool{p}_staged_bytes")),
            })
            .collect();

        let mut fed_queue = EventQueue::new();
        fed_queue.push(SimTime::ZERO + cfg.tick_interval, FedEvent::FedTick);

        let meta = MetaScheduler::new(cfg.routing, cfg.seed);
        let wan = WanTier::new(cfg.wan_capacity, cfg.wan_latency);
        Federation {
            schedule: schedule.clone(),
            pools,
            fed_queue,
            wan,
            meta,
            home,
            peers,
            residency,
            phase: vec![JobPhase::Scheduled; n_jobs],
            awaiting: BTreeMap::new(),
            wan_pending: BTreeMap::new(),
            staging_started: false,
            initial_pending: 0,
            workload_base: None,
            remaining: n_jobs,
            health: vec![0.0; n],
            last_failures: vec![0; n],
            registry,
            gauges,
            auditor: Auditor::new(),
            chaos_failure: None,
            routed_to: vec![None; n_jobs],
            routed_counts: vec![0; n],
            staged_bytes_in: vec![0; n],
            route_stagings: 0,
            initial_stagings: 0,
            partitions: 0,
            armed_wan: None,
            events: 0,
            fed_events: 0,
            cfg,
        }
    }

    /// Drive the co-simulation to completion (all jobs terminal), the
    /// horizon, the event budget, or an audit failure — whichever first.
    pub fn run(mut self, horizon: SimDuration) -> FedResult {
        let end = SimTime::ZERO + horizon;
        let mut now = SimTime::ZERO;
        let stop;
        loop {
            if self.remaining == 0 {
                stop = StopReason::ModelFinished;
                break;
            }
            if self.chaos_failure.is_some() {
                // The audit aborts the run like chaos supervision does in
                // a standalone cluster.
                stop = StopReason::ModelFinished;
                break;
            }
            if self.events >= EVENT_BUDGET {
                stop = StopReason::EventBudgetExhausted;
                break;
            }
            let Some((t, who)) = self.earliest() else {
                stop = StopReason::QueueEmpty;
                break;
            };
            if t > end {
                now = end;
                stop = StopReason::HorizonReached;
                break;
            }
            now = t;
            if who == self.pools.len() {
                let (_, fe) = self.fed_queue.pop().expect("peeked");
                self.fed_events += 1;
                self.handle_fed_event(now, fe);
            } else {
                let pool = &mut self.pools[who];
                let (_, ev) = pool.queue.pop().expect("peeked");
                pool.events += 1;
                self.events += 1;
                self.intercept_partition(now, who, &ev);
                let pool = &mut self.pools[who];
                let mut sched = Scheduler::over(now, &mut pool.queue);
                pool.cluster.handle(ev, &mut sched);
                self.drain_pool_notes(now, who);
            }
        }
        self.finish(now, stop)
    }

    /// Earliest pending event: `(time, pool index)`, with
    /// `pools.len()` standing for the federation queue. Ties break to the
    /// lower pool index, federation last.
    fn earliest(&self) -> Option<(SimTime, usize)> {
        let mut best: Option<(SimTime, usize)> = None;
        for (p, pool) in self.pools.iter().enumerate() {
            if let Some(t) = pool.queue.peek_time() {
                if best.is_none_or(|(bt, _)| t < bt) {
                    best = Some((t, p));
                }
            }
        }
        if let Some(t) = self.fed_queue.peek_time() {
            if best.is_none_or(|(bt, _)| t < bt) {
                best = Some((t, self.pools.len()));
            }
        }
        best
    }

    /// `PoolPartition` faults live in a pool's chaos plan but act on the
    /// *federation's* WAN tier, so the executor intercepts them on the
    /// way to the pool (the cluster's own handler treats them as no-ops).
    fn intercept_partition(&mut self, now: SimTime, who: usize, ev: &Event) {
        let (index, freeze) = match ev {
            Event::Chaos { index } => (*index, true),
            Event::ChaosEnd { index } => (*index, false),
            _ => return,
        };
        let plan = &self.pools[who].cluster.config().chaos.plan;
        let Some(tf) = plan.faults().get(index as usize) else {
            return;
        };
        if !matches!(tf.fault, Fault::PoolPartition { .. }) {
            return;
        }
        if freeze && !self.wan.frozen() {
            self.partitions += 1;
        }
        self.wan.set_frozen(now, freeze);
        self.arm_wan_tick(now);
    }

    fn handle_fed_event(&mut self, now: SimTime, fe: FedEvent) {
        match fe {
            FedEvent::WanTick => {
                if self.armed_wan == Some(now) {
                    self.armed_wan = None;
                }
                for done in self.wan.advance(now) {
                    self.on_wan_done(now, done);
                }
                self.arm_wan_tick(now);
            }
            FedEvent::FedTick => {
                self.sample(now);
                if self.cfg.audit {
                    let violations = self.audit_no_lost_jobs();
                    if let Some(fail) = self.auditor.observe(now, violations) {
                        self.chaos_failure = Some(fail);
                    }
                }
                if self.remaining > 0 {
                    self.fed_queue
                        .push(now + self.cfg.tick_interval, FedEvent::FedTick);
                }
            }
        }
    }

    /// Keep a `WanTick` pending at the earliest possible WAN completion.
    /// Completions only move *later* while the flow set is stable, so an
    /// early tick is at worst a no-op `advance`.
    fn arm_wan_tick(&mut self, now: SimTime) {
        if let Some(t) = self.wan.next_completion() {
            debug_assert!(t >= now);
            if self.armed_wan.is_none_or(|a| t < a) {
                self.fed_queue.push(t, FedEvent::WanTick);
                self.armed_wan = Some(t);
            }
        }
    }

    /// A dataset finished crossing the WAN: write it onto the destination
    /// pool's datanodes (replication `r_remote`). Completion flows back
    /// through [`Cluster::take_completed_stagings`].
    fn on_wan_done(&mut self, now: SimTime, done: WanDone) {
        let Some((job, to, kind)) = self.wan_pending.remove(&done.id) else {
            return;
        };
        debug_assert_eq!(done.tag, job as u64);
        self.staged_bytes_in[to] += done.bytes;
        let r = self.cfg.r_remote;
        let pool = &mut self.pools[to];
        let mut sched = Scheduler::over(now, &mut pool.queue);
        pool.cluster.stage_dataset(job, r, &mut sched);
        let _ = kind; // resolution happens at stage completion
        self.drain_pool_notes(now, to);
    }

    /// Pick up everything pool `who` noted during its last handler:
    /// readiness, completed stagings, fired submissions, finished jobs.
    fn drain_pool_notes(&mut self, now: SimTime, who: usize) {
        if !self.staging_started
            && self.pools.iter().all(|p| p.cluster.pool_ready())
        {
            self.begin_initial_staging(now);
        }
        loop {
            let staged = self.pools[who].cluster.take_completed_stagings();
            let routes = self.pools[who].cluster.take_pending_routes();
            if staged.is_empty() && routes.is_empty() {
                break;
            }
            for job in staged {
                self.on_stage_complete(now, who, job);
            }
            for job in routes {
                self.route_job(now, job);
            }
        }
        // Terminal-state scan, cheap: only this pool's in-flight jobs.
        let done: Vec<usize> = {
            let pool = &self.pools[who];
            pool.inflight
                .iter()
                .copied()
                .filter(|&i| pool.cluster.job_results[i].is_some())
                .collect()
        };
        if !done.is_empty() {
            self.pools[who].inflight.retain(|i| !done.contains(i));
            for i in done {
                self.phase[i] = JobPhase::Done { pool: who };
                self.remaining -= 1;
            }
        }
    }

    /// All pools formed and uploaded their home datasets: fire the
    /// up-front shared-dataset replication, or start the workload
    /// immediately if there is nothing to share.
    fn begin_initial_staging(&mut self, now: SimTime) {
        self.staging_started = true;
        for i in 0..self.schedule.len() {
            for &q in &self.peers[i].clone() {
                if self.residency[i].contains(&q) {
                    continue;
                }
                self.start_stage(now, i, q, StageKind::Initial);
                self.initial_pending += 1;
                self.initial_stagings += 1;
            }
        }
        if self.initial_pending == 0 {
            self.start_workload(now);
        } else {
            self.arm_wan_tick(now);
        }
    }

    /// Launch one dataset transfer over the WAN.
    fn start_stage(&mut self, now: SimTime, job: usize, to: usize, kind: StageKind) {
        let from = self.home[job];
        let bytes = self.schedule.jobs()[job].maps as u64
            * self.cfg.pools[from].hdfs.block_size;
        let id = self.wan.start_transfer(now, from, to, bytes, job as u64);
        self.wan_pending.insert(id, (job, to, kind));
        self.awaiting.insert((job, to), kind);
    }

    /// A staged dataset is fully written in pool `who`.
    fn on_stage_complete(&mut self, now: SimTime, who: usize, job: usize) {
        self.residency[job].insert(who);
        let kind = self.awaiting.remove(&(job, who));
        match kind {
            Some(StageKind::Initial) => {
                self.initial_pending -= 1;
                if self.initial_pending == 0 && !self.workload_started() {
                    self.start_workload(now);
                }
            }
            Some(StageKind::Route) => {
                debug_assert_eq!(
                    self.phase[job],
                    JobPhase::AwaitingStage { pool: who }
                );
                self.submit_to(now, job, who);
            }
            // A home upload completing is not tracked here.
            None => {}
        }
    }

    fn workload_started(&self) -> bool {
        self.workload_base.is_some()
    }

    /// Anchor every pool's submission + fault timeline at the same
    /// instant and let them rip.
    fn start_workload(&mut self, base: SimTime) {
        self.workload_base = Some(base);
        for pool in &mut self.pools {
            let mut sched = Scheduler::over(base, &mut pool.queue);
            pool.cluster.begin_workload(base, &mut sched);
        }
    }

    /// A submission fired in its home pool: score every pool and route.
    fn route_job(&mut self, now: SimTime, job: usize) {
        let snaps: Vec<PoolSnapshot> = self
            .pools
            .iter()
            .enumerate()
            .map(|(p, pool)| {
                let jt = pool.cluster.jobtracker();
                let b = jt.backlog();
                let tasks = (b.pending_maps
                    + b.running_maps
                    + b.pending_reduces
                    + b.running_reduces) as f64;
                let live = jt.reported_live().max(1) as f64;
                PoolSnapshot {
                    locality: if self.residency[job].contains(&p) {
                        1.0
                    } else {
                        0.0
                    },
                    backlog_per_slot: tasks / live,
                    health_penalty: self.health[p],
                }
            })
            .collect();
        let bytes = self.schedule.jobs()[job].maps as u64
            * self.cfg.pools[self.home[job]].hdfs.block_size;
        let stage_units = bytes as f64 / self.cfg.wan_capacity / BACKLOG_UNIT_SECS;
        let picked = self.meta.route(self.home[job], stage_units, &snaps);
        self.routed_to[job] = Some(picked);
        self.routed_counts[picked] += 1;
        if self.residency[job].contains(&picked) {
            self.submit_to(now, job, picked);
        } else if let Some(kind) = self.awaiting.get_mut(&(job, picked)) {
            // Already staging there (shared copy still in flight): the
            // job rides that transfer instead of starting another.
            *kind = StageKind::Route;
            if let Some(entry) = self
                .wan_pending
                .values_mut()
                .find(|(j, t, _)| *j == job && *t == picked)
            {
                entry.2 = StageKind::Route;
            }
            self.phase[job] = JobPhase::AwaitingStage { pool: picked };
        } else {
            self.start_stage(now, job, picked, StageKind::Route);
            self.route_stagings += 1;
            self.phase[job] = JobPhase::AwaitingStage { pool: picked };
            self.arm_wan_tick(now);
        }
    }

    fn submit_to(&mut self, now: SimTime, job: usize, pool_ix: usize) {
        self.phase[job] = JobPhase::Submitted { pool: pool_ix };
        let pool = &mut self.pools[pool_ix];
        pool.inflight.push(job);
        let mut sched = Scheduler::over(now, &mut pool.queue);
        pool.cluster.external_submit(job, &mut sched);
    }

    /// Periodic sampling: decay pool health, fold in fresh attempt
    /// failures, publish per-pool gauges.
    fn sample(&mut self, now: SimTime) {
        for (p, pool) in self.pools.iter().enumerate() {
            let jt = pool.cluster.jobtracker();
            let failures = jt.counters().failures;
            let delta = failures.saturating_sub(self.last_failures[p]);
            self.last_failures[p] = failures;
            self.health[p] =
                self.health[p] * HEALTH_DECAY + delta as f64 * HEALTH_SCALE;
            let b = jt.backlog();
            let tasks = b.pending_maps
                + b.running_maps
                + b.pending_reduces
                + b.running_reduces;
            let g = &self.gauges[p];
            self.registry.set(g.backlog, tasks as f64);
            self.registry.set(g.size, jt.reported_live() as f64);
            self.registry.set(g.routed, self.routed_counts[p] as f64);
            self.registry
                .set(g.staged_bytes, self.staged_bytes_in[p] as f64);
        }
        self.registry.snapshot(now);
    }

    /// The federation-level invariant: **no job is ever lost**. Every
    /// schedule index is accounted for in exactly one lifecycle state,
    /// every `AwaitingStage` has a live staging (WAN transfer in flight —
    /// even across a `PoolPartition` freeze — or blocks being written in
    /// the destination pool), and every `Done` has a recorded result.
    fn audit_no_lost_jobs(&self) -> Vec<Violation> {
        let mut v = Vec::new();
        let mut terminal = 0usize;
        for (i, ph) in self.phase.iter().enumerate() {
            match *ph {
                JobPhase::Scheduled => {}
                JobPhase::AwaitingStage { pool } => {
                    if !self.awaiting.contains_key(&(i, pool)) {
                        v.push(Violation::new(
                            "fed",
                            format!(
                                "job {i} awaits staging to pool {pool} but no staging is tracked"
                            ),
                        ));
                    }
                }
                JobPhase::Submitted { pool } => {
                    if !self.pools[pool].inflight.contains(&i)
                        && self.pools[pool].cluster.job_results[i].is_none()
                    {
                        v.push(Violation::new(
                            "fed",
                            format!("job {i} submitted to pool {pool} but not in flight there"),
                        ));
                    }
                }
                JobPhase::Done { pool } => {
                    terminal += 1;
                    if self.pools[pool].cluster.job_results[i].is_none() {
                        v.push(Violation::new(
                            "fed",
                            format!("job {i} marked done in pool {pool} without a result"),
                        ));
                    }
                }
            }
        }
        if self.schedule.len() - terminal != self.remaining {
            v.push(Violation::new(
                "fed",
                format!(
                    "job accounting drift: {} non-terminal phases vs remaining={}",
                    self.schedule.len() - terminal,
                    self.remaining
                ),
            ));
        }
        // Every tracked transfer must still exist in the WAN tier
        // (partitions freeze transfers; they must never drop them).
        if self.wan.active_transfers() != self.wan_pending.len() {
            v.push(Violation::new(
                "fed",
                format!(
                    "WAN tier holds {} transfers but the federation tracks {}",
                    self.wan.active_transfers(),
                    self.wan_pending.len()
                ),
            ));
        }
        v
    }

    /// Assemble the [`FedResult`]: per-pool [`RunResult`]s via the same
    /// collector standalone runs use (with synthesized per-pool
    /// [`RunStats`]), then the merged job view.
    fn finish(self, now: SimTime, stop: StopReason) -> FedResult {
        let Federation {
            cfg,
            schedule,
            pools,
            meta,
            routed_to,
            routed_counts,
            staged_bytes_in,
            route_stagings,
            initial_stagings,
            partitions,
            wan,
            registry,
            chaos_failure,
            remaining,
            home,
            events,
            fed_events,
            workload_base,
            ..
        } = self;
        let pool_results: Vec<RunResult> = pools
            .into_iter()
            .map(|pool| {
                let stats = RunStats {
                    end_time: now,
                    events_handled: pool.events,
                    peak_queue: pool.queue.peak_len(),
                    stop,
                };
                collect_result(pool.cluster, &schedule, stats)
            })
            .collect();
        let jobs: Vec<JobOutcome> = (0..schedule.len())
            .map(|i| {
                let p = routed_to[i].unwrap_or(home[i]);
                pool_results[p].jobs[i]
            })
            .collect();
        let completed = remaining == 0 && chaos_failure.is_none();
        let response_time = if completed {
            let first = workload_base
                .map(|b| b + (schedule.jobs()[0].submit_at - SimTime::ZERO));
            let last = jobs.iter().filter_map(|j| j.finished).max();
            match (first, last) {
                (Some(f), Some(l)) => Some(l.saturating_since(f)),
                _ => None,
            }
        } else {
            None
        };
        FedResult {
            name: cfg.name.clone(),
            seed: cfg.seed,
            policy: meta.policy().name(),
            pools: pool_results,
            jobs,
            routed_to,
            routed_counts,
            staged_bytes_in,
            route_stagings,
            initial_stagings,
            wan_bytes: wan.delivered_bytes(),
            wan_transfers: wan.started_transfers(),
            partitions,
            response_time,
            end_time: now,
            events,
            fed_events,
            completed,
            chaos_failure,
            metrics: registry,
        }
    }
}

/// Run a federation built from `cfg` over `schedule` to the given
/// horizon. The federated sibling of [`hog_core::run_workload`].
pub fn run_federation(
    cfg: FedConfig,
    schedule: &SubmissionSchedule,
    horizon: SimDuration,
) -> FedResult {
    Federation::new(cfg, schedule).run(horizon)
}

/// Convenience: assert a federation run finished (tests, drills).
pub fn assert_fed_finished(r: &FedResult) {
    if let Some(f) = &r.chaos_failure {
        panic!("federation {} audit failure:\n{}", r.name, f.dump());
    }
    assert!(
        r.completed,
        "federation {} did not finish: {} jobs incomplete",
        r.name,
        r.jobs.iter().filter(|j| j.finished.is_none()).count()
    );
}
