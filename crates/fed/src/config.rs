//! Federation configuration: pool layout, dataset sharing, WAN tier.

use crate::meta::RoutingPolicy;
use hog_core::ClusterConfig;
use hog_sim_core::units::mbit_per_s;
use hog_sim_core::SimDuration;

/// Everything needed to build a [`crate::Federation`].
#[derive(Clone, Debug)]
pub struct FedConfig {
    /// Label for reports.
    pub name: String,
    /// Federation-level seed: dataset sharing draws and the `Random`
    /// routing stream fork from it. Pool-internal randomness comes from
    /// each pool config's own seed.
    pub seed: u64,
    /// One cluster config per pool. Each gets a
    /// [`hog_core::config::PoolRole`] stamped on it by
    /// [`crate::Federation::new`]; any role already present is replaced.
    pub pools: Vec<ClusterConfig>,
    /// How jobs are routed to pools.
    pub routing: RoutingPolicy,
    /// Fraction of datasets tagged *shared*: replicated into peer pools
    /// up front so locality-aware routing has somewhere to spread load.
    pub shared_fraction: f64,
    /// How many peer pools receive a copy of each shared dataset.
    pub peer_count: usize,
    /// Replication factor for cross-pool copies (`r_remote`): lower than
    /// the home pool's factor — the remote copy is a locality/spill-over
    /// asset, not the durability anchor.
    pub r_remote: u16,
    /// Inter-pool WAN backbone capacity, bytes/s (shared by all
    /// transfers; slower than any pool's site uplinks).
    pub wan_capacity: f64,
    /// Inter-pool one-way latency.
    pub wan_latency: SimDuration,
    /// How often the federation samples pool health and per-pool gauges.
    pub tick_interval: SimDuration,
    /// Run the federation-level no-lost-jobs audit every tick.
    pub audit: bool,
}

impl FedConfig {
    /// A federation over the given pool configs with the default WAN
    /// (250 Mbps shared, 100 ms one-way — an order of magnitude under
    /// the 6 Gbps site uplinks, so cross-pool staging is a real cost),
    /// locality-aware routing, and no dataset sharing.
    pub fn new(pools: Vec<ClusterConfig>, seed: u64) -> Self {
        assert!(!pools.is_empty(), "a federation needs at least one pool");
        FedConfig {
            name: format!("fed-{}p", pools.len()),
            seed,
            pools,
            routing: RoutingPolicy::locality_default(),
            shared_fraction: 0.0,
            peer_count: 1,
            r_remote: 3,
            wan_capacity: mbit_per_s(250.0),
            wan_latency: SimDuration::from_millis(100),
            tick_interval: SimDuration::from_secs(60),
            audit: false,
        }
    }

    /// Select the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Tag `fraction` of datasets shared, each copied to `peers` peer
    /// pools at replication `r_remote`.
    pub fn with_sharing(mut self, fraction: f64, peers: usize, r_remote: u16) -> Self {
        self.shared_fraction = fraction;
        self.peer_count = peers;
        self.r_remote = r_remote;
        self
    }

    /// Override the inter-pool WAN tier.
    pub fn with_wan(mut self, capacity: f64, latency: SimDuration) -> Self {
        self.wan_capacity = capacity;
        self.wan_latency = latency;
        self
    }

    /// Enable the federation-level no-lost-jobs invariant audit.
    pub fn with_audit(mut self, on: bool) -> Self {
        self.audit = on;
        self
    }

    /// Rename (report labelling).
    pub fn named(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }
}
