//! Property tests on namenode consistency: after arbitrary interleavings
//! of writes, node deaths, bad-replica reports and repairs, the block map
//! and the datanode accounting must agree and every invariant must hold.

use hog_hdfs::placement::SiteAwarePolicy;
use hog_hdfs::{HdfsConfig, Namenode};
use hog_net::{NodeId, Topology};
use hog_sim_core::{SimRng, SimTime};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Clone, Debug)]
enum Op {
    /// Write a new block to a fresh file.
    Write { size: u64 },
    /// Silence node (idx modulo live nodes).
    Kill { idx: usize },
    /// Report one replica of a random block bad.
    BadReplica { block_idx: usize, rep_idx: usize },
    /// Run one namenode tick and complete every issued order.
    TickAndRepair,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (1u64..64_000_000).prop_map(|size| Op::Write { size }),
        (0usize..64).prop_map(|idx| Op::Kill { idx }),
        ((0usize..64), (0usize..8)).prop_map(|(block_idx, rep_idx)| Op::BadReplica {
            block_idx,
            rep_idx
        }),
        Just(Op::TickAndRepair),
    ]
}

/// Cross-check: every replica in the block map is accounted on the
/// datanode, and vice versa; used bytes match; no block exceeds its
/// expected replication by more than the in-flight window.
fn check_consistency(nn: &Namenode, blocks: &[hog_hdfs::BlockId]) {
    // datanode -> accounted blocks
    let mut dn_blocks: HashMap<NodeId, Vec<hog_hdfs::BlockId>> = HashMap::new();
    for (node, info) in nn.datanodes() {
        let mut sum = 0u64;
        for &b in &info.blocks {
            sum += nn.block(b).size;
            dn_blocks.entry(node).or_default().push(b);
        }
        assert_eq!(info.used, sum, "used bytes out of sync on {node:?}");
        assert!(info.used <= info.capacity, "overfull datanode {node:?}");
    }
    for &b in blocks {
        let meta = nn.block(b);
        for &r in &meta.replicas {
            assert!(
                dn_blocks
                    .get(&r)
                    .is_some_and(|v| v.contains(&b)),
                "replica {r:?} of {b:?} missing from datanode accounting"
            );
        }
        assert!(
            meta.replicas.len() <= meta.expected as usize,
            "block {b:?} over-replicated: {} > {}",
            meta.replicas.len(),
            meta.expected
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn namenode_invariants_hold_under_chaos(ops in proptest::collection::vec(op_strategy(), 1..80)) {
        let mut topo = Topology::new();
        let mut nodes = Vec::new();
        for s in 0..4 {
            let site = topo.add_site(format!("S{s}"), format!("s{s}.edu"));
            for _ in 0..6 {
                nodes.push(topo.add_node(site));
            }
        }
        let cfg = HdfsConfig::hog().with_replication(4);
        let mut nn = Namenode::new(cfg, Box::new(SiteAwarePolicy), SimRng::seed_from_u64(7));
        for &n in &nodes {
            nn.register_datanode(SimTime::ZERO, n);
        }
        let mut blocks = Vec::new();
        let mut t = 0u64;
        let mut file_no = 0u32;
        let mut killed: Vec<NodeId> = Vec::new();
        for op in ops {
            t += 60; // one minute between operations: past the 30 s timeout
            let now = SimTime::from_secs(t);
            match op {
                Op::Write { size } => {
                    let f = nn.create_file_default(format!("/f{file_no}"));
                    file_no += 1;
                    if let Some((b, targets)) = nn.allocate_block(f, size, None, &topo) {
                        nn.commit_block(b, &targets);
                        blocks.push(b);
                    }
                    nn.complete_file(f);
                }
                Op::Kill { idx } => {
                    let live: Vec<NodeId> = nodes
                        .iter()
                        .copied()
                        .filter(|n| nn.is_live(*n) && !killed.contains(n))
                        .collect();
                    // Keep at least 5 nodes so writes keep succeeding.
                    if live.len() > 5 {
                        let victim = live[idx % live.len()];
                        nn.mark_silent(now, victim);
                        killed.push(victim);
                    }
                }
                Op::BadReplica { block_idx, rep_idx } => {
                    if !blocks.is_empty() {
                        let b = blocks[block_idx % blocks.len()];
                        let reps: Vec<NodeId> = nn.block(b).replicas.iter().copied().collect();
                        if !reps.is_empty() {
                            nn.report_bad_replica(b, reps[rep_idx % reps.len()]);
                        }
                    }
                }
                Op::TickAndRepair => {
                    let out = nn.tick(now, &topo);
                    for o in out.orders {
                        nn.repl_done(o.block, o.src, o.dst, true);
                    }
                }
            }
            check_consistency(&nn, &blocks);
        }
        // Final deep repair: ticks until quiescent must clear every
        // repairable deficit.
        for i in 0..200 {
            let out = nn.tick(SimTime::from_secs(t + 60 + i), &topo);
            if out.orders.is_empty() && out.newly_dead.is_empty() {
                break;
            }
            for o in out.orders {
                nn.repl_done(o.block, o.src, o.dst, true);
            }
        }
        check_consistency(&nn, &blocks);
        for &b in &blocks {
            let meta = nn.block(b);
            // Any block that still has one replica must be repairable to
            // min(expected, live datanodes with room).
            if !meta.is_missing() && meta.expected > 0 {
                prop_assert!(
                    meta.deficit() == 0 || nn.under_replicated_count() == 0,
                    "block {b:?} left deficient after quiescence: {}/{} replicas",
                    meta.replicas.len(),
                    meta.expected
                );
            }
        }
    }
}

#[test]
fn allocation_respects_exclusions() {
    use std::collections::BTreeSet;
    let mut topo = Topology::new();
    let site = topo.add_site("S0", "s0.edu");
    let nodes: Vec<NodeId> = (0..6).map(|_| topo.add_node(site)).collect();
    let mut nn = Namenode::new(
        HdfsConfig::hog().with_replication(3),
        Box::new(SiteAwarePolicy),
        SimRng::seed_from_u64(5),
    );
    for &n in &nodes {
        nn.register_datanode(SimTime::ZERO, n);
    }
    let f = nn.create_file_default("/x");
    // Exclude three specific nodes: they must never appear as targets.
    let excluded: BTreeSet<NodeId> = nodes[..3].iter().copied().collect();
    for _ in 0..10 {
        let (b, targets) = nn
            .allocate_block_excluding(f, 1024, None, &excluded, &topo)
            .expect("three nodes remain");
        assert!(targets.iter().all(|t| !excluded.contains(t)), "{targets:?}");
        nn.commit_block(b, &targets);
    }
    // Excluding everything yields None.
    let all: BTreeSet<NodeId> = nodes.iter().copied().collect();
    assert!(nn
        .allocate_block_excluding(f, 1024, None, &all, &topo)
        .is_none());
}
