//! Datanode-side state as tracked by the namenode and the mediator.

use crate::types::BlockId;
use hog_sim_core::SimTime;
use std::collections::BTreeSet;

/// Liveness classification of a datanode from the namenode's viewpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DnLiveness {
    /// Heartbeating normally.
    Live,
    /// Stopped heartbeating but not yet past the dead-node timeout — the
    /// window in which Figure 5's "reported nodes" momentarily exceeds the
    /// real pool.
    Silent,
    /// Declared dead; blocks are being re-replicated.
    Dead,
}

/// Per-datanode record.
#[derive(Clone, Debug)]
pub struct DatanodeInfo {
    /// Usable HDFS capacity in bytes.
    pub capacity: u64,
    /// Bytes of block data currently stored.
    pub used: u64,
    /// Blocks hosted here.
    pub blocks: BTreeSet<BlockId>,
    /// Instant of the last heartbeat the namenode saw.
    pub last_heartbeat: SimTime,
    /// Current liveness classification.
    pub liveness: DnLiveness,
    /// The zombie failure mode (§IV-D.1): the site preempted the glidein
    /// but the double-forked daemon survived; its working directory is
    /// gone, so the daemon keeps heartbeating while every disk operation
    /// fails.
    pub storage_failed: bool,
    /// In-flight replication transfers this node is sourcing or sinking.
    pub repl_streams: u8,
}

impl DatanodeInfo {
    /// A fresh, healthy datanode registered at `now`.
    pub fn new(capacity: u64, now: SimTime) -> Self {
        DatanodeInfo {
            capacity,
            used: 0,
            blocks: BTreeSet::new(),
            last_heartbeat: now,
            liveness: DnLiveness::Live,
            storage_failed: false,
            repl_streams: 0,
        }
    }

    /// Free capacity.
    pub fn free(&self) -> u64 {
        self.capacity.saturating_sub(self.used)
    }

    /// Whether this node can accept `bytes` more block data. A zombie
    /// claims it can (its heartbeats look healthy) — the namenode finds out
    /// when the write fails.
    pub fn can_accept(&self, bytes: u64) -> bool {
        self.liveness == DnLiveness::Live && self.free() >= bytes
    }

    /// Account a stored block.
    pub fn add_block(&mut self, block: BlockId, bytes: u64) {
        if self.blocks.insert(block) {
            self.used += bytes;
        }
    }

    /// Remove a block's accounting.
    pub fn remove_block(&mut self, block: BlockId, bytes: u64) {
        if self.blocks.remove(&block) {
            self.used = self.used.saturating_sub(bytes);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_accounting() {
        let mut dn = DatanodeInfo::new(100, SimTime::ZERO);
        dn.add_block(BlockId(1), 40);
        dn.add_block(BlockId(2), 40);
        assert_eq!(dn.free(), 20);
        assert!(dn.can_accept(20));
        assert!(!dn.can_accept(21));
        dn.remove_block(BlockId(1), 40);
        assert_eq!(dn.free(), 60);
    }

    #[test]
    fn double_add_is_idempotent() {
        let mut dn = DatanodeInfo::new(100, SimTime::ZERO);
        dn.add_block(BlockId(1), 40);
        dn.add_block(BlockId(1), 40);
        assert_eq!(dn.used, 40);
        dn.remove_block(BlockId(9), 40); // not present: no-op
        assert_eq!(dn.used, 40);
    }

    #[test]
    fn dead_nodes_accept_nothing() {
        let mut dn = DatanodeInfo::new(100, SimTime::ZERO);
        dn.liveness = DnLiveness::Dead;
        assert!(!dn.can_accept(1));
    }
}
