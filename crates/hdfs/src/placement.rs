//! Block placement policies.
//!
//! HOG's contribution is extending rack awareness to **site awareness**:
//! sites are common failure domains (whole-site outages, correlated
//! preemption bursts) and intra-site bandwidth dwarfs inter-site bandwidth,
//! so replicas must spread across sites exactly like stock HDFS spreads
//! them across racks. Three policies are provided:
//!
//! * [`SiteAwarePolicy`] — HOG §III-B.1: first replica local to the
//!   writer, the rest spread over the sites currently holding the fewest
//!   replicas of the block, preferring emptier nodes inside a site.
//! * [`RackAwarePolicy`] — stock Hadoop 0.20 default (writer, remote
//!   rack, same remote rack, then random); used on the dedicated cluster
//!   where racks are the failure domain.
//! * [`RackObliviousPolicy`] — uniform random placement, the ablation
//!   baseline showing what site awareness buys (experiment X7).

use hog_net::{NodeId, SiteId};
use hog_sim_core::SimRng;

/// A datanode eligible to receive a replica.
#[derive(Clone, Copy, Debug)]
pub struct Candidate {
    /// The node.
    pub node: NodeId,
    /// Its site.
    pub site: SiteId,
    /// Free bytes on its HDFS partition.
    pub free: u64,
}

/// A replica-target chooser. Implementations must return distinct nodes
/// drawn from `candidates` (never one listed in `existing`), at most `n`
/// of them; fewer when the cluster cannot satisfy the request.
pub trait PlacementPolicy: Send {
    /// Human-readable policy name (report labelling).
    fn name(&self) -> &'static str;

    /// Choose up to `n` targets for a block.
    ///
    /// * `writer` — the datanode co-located with the writing client, if
    ///   any (map outputs written to HDFS, or a datanode-local upload).
    /// * `existing` — `(node, site)` of current replicas (non-empty for
    ///   re-replication).
    /// * `candidates` — eligible datanodes (live, storage OK, enough free
    ///   space); never contains nodes from `existing`.
    fn choose(
        &self,
        writer: Option<NodeId>,
        n: usize,
        existing: &[(NodeId, SiteId)],
        candidates: &[Candidate],
        rng: &mut SimRng,
    ) -> Vec<NodeId>;

    /// Clone this policy into a fresh box. Master checkpointing clones
    /// the whole Namenode, boxed policy included, through this hook.
    fn box_clone(&self) -> Box<dyn PlacementPolicy>;
}

impl Clone for Box<dyn PlacementPolicy> {
    fn clone(&self) -> Self {
        self.box_clone()
    }
}

/// HOG's site-aware placement.
#[derive(Clone, Copy, Debug, Default)]
pub struct SiteAwarePolicy;

impl PlacementPolicy for SiteAwarePolicy {
    fn name(&self) -> &'static str {
        "site-aware"
    }

    fn choose(
        &self,
        writer: Option<NodeId>,
        n: usize,
        existing: &[(NodeId, SiteId)],
        candidates: &[Candidate],
        rng: &mut SimRng,
    ) -> Vec<NodeId> {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(n);
        if n == 0 || candidates.is_empty() {
            return chosen;
        }
        // This runs on every block allocation with n = the replication
        // factor (10 under the HOG preset), so it stays allocation-lean:
        // a `taken` bitmap plus dense per-site replica counts replace the
        // per-replica bucketing-into-HashMap-and-sort formulation. Every
        // selection below is the unique minimum of a total order, so the
        // chosen pipeline is identical to what that code produced.
        let max_site = candidates
            .iter()
            .map(|c| c.site.0)
            .chain(existing.iter().map(|&(_, s)| s.0))
            .max()
            .unwrap_or(0) as usize;
        let mut site_count = vec![0u32; max_site + 1];
        for &(_, s) in existing {
            site_count[s.0 as usize] += 1;
        }
        let mut taken = vec![false; candidates.len()];
        // First replica: data locality — the writer's own datanode, when
        // it is a candidate and this is a fresh write.
        if existing.is_empty() {
            if let Some(w) = writer {
                if let Some(i) = candidates.iter().position(|c| c.node == w) {
                    chosen.push(w);
                    taken[i] = true;
                    site_count[candidates[i].site.0 as usize] += 1;
                }
            }
        }
        let mut ties: Vec<usize> = Vec::new();
        while chosen.len() < n {
            // Pick the site with the fewest replicas so far; break count
            // ties by site id for determinism. Only sites that still have
            // an unchosen candidate qualify.
            let mut best: Option<(u32, SiteId)> = None;
            for (i, c) in candidates.iter().enumerate() {
                if taken[i] {
                    continue;
                }
                let key = (site_count[c.site.0 as usize], c.site);
                if best.is_none_or(|b| key < b) {
                    best = Some(key);
                }
            }
            let Some((_, site)) = best else { break };
            // Inside the site prefer the emptiest node, tie-broken
            // randomly (via node id shuffle under the run rng). Ties are
            // ordered by ascending node id — what a stable sort by
            // `(Reverse(free), node)` yields — so the draw below lands on
            // the same node the sort-based code picked.
            let mut top_free = 0u64;
            ties.clear();
            for (i, c) in candidates.iter().enumerate() {
                if taken[i] || c.site != site {
                    continue;
                }
                if ties.is_empty() || c.free > top_free {
                    top_free = c.free;
                    ties.clear();
                    ties.push(i);
                } else if c.free == top_free {
                    ties.push(i);
                }
            }
            ties.sort_unstable_by_key(|&i| candidates[i].node);
            let pick = ties[rng.index(ties.len())];
            taken[pick] = true;
            site_count[site.0 as usize] += 1;
            chosen.push(candidates[pick].node);
        }
        chosen
    }

    fn box_clone(&self) -> Box<dyn PlacementPolicy> {
        Box::new(*self)
    }
}

/// Stock Hadoop 0.20 rack-aware placement (racks == our sites).
#[derive(Clone, Copy, Debug, Default)]
pub struct RackAwarePolicy;

impl PlacementPolicy for RackAwarePolicy {
    fn name(&self) -> &'static str {
        "rack-aware"
    }

    fn choose(
        &self,
        writer: Option<NodeId>,
        n: usize,
        existing: &[(NodeId, SiteId)],
        candidates: &[Candidate],
        rng: &mut SimRng,
    ) -> Vec<NodeId> {
        let mut chosen: Vec<NodeId> = Vec::with_capacity(n);
        let mut remaining: Vec<&Candidate> = candidates.iter().collect();
        let site_of = |node: NodeId, cands: &[Candidate]| {
            cands.iter().find(|c| c.node == node).map(|c| c.site)
        };
        let take = |pred: &dyn Fn(&Candidate) -> bool,
                    remaining: &mut Vec<&Candidate>,
                    rng: &mut SimRng|
         -> Option<NodeId> {
            let idxs: Vec<usize> = remaining
                .iter()
                .enumerate()
                .filter(|(_, c)| pred(c))
                .map(|(i, _)| i)
                .collect();
            if idxs.is_empty() {
                return None;
            }
            let i = idxs[rng.index(idxs.len())];
            Some(remaining.swap_remove(i).node)
        };

        // Replica 1: the writer's node, else random.
        if chosen.len() < n && existing.is_empty() {
            let first = writer
                .and_then(|w| take(&|c: &Candidate| c.node == w, &mut remaining, rng))
                .or_else(|| take(&|_| true, &mut remaining, rng));
            if let Some(f) = first {
                chosen.push(f);
            }
        }
        // Replica 2: a different rack/site than replica 1 (or than any
        // existing replica, for re-replication).
        if chosen.len() < n {
            let first_site = chosen
                .first()
                .and_then(|&f| site_of(f, candidates))
                .or_else(|| existing.first().map(|&(_, s)| s));
            let second = match first_site {
                Some(fs) => take(&|c: &Candidate| c.site != fs, &mut remaining, rng)
                    .or_else(|| take(&|_| true, &mut remaining, rng)),
                None => take(&|_| true, &mut remaining, rng),
            };
            if let Some(s) = second {
                chosen.push(s);
            }
        }
        // Replica 3: same rack as replica 2, different node.
        if chosen.len() < n {
            let second_site = chosen.last().and_then(|&s| site_of(s, candidates));
            let third = match second_site {
                Some(ss) => take(&|c: &Candidate| c.site == ss, &mut remaining, rng)
                    .or_else(|| take(&|_| true, &mut remaining, rng)),
                None => take(&|_| true, &mut remaining, rng),
            };
            if let Some(t) = third {
                chosen.push(t);
            }
        }
        // The rest: random.
        while chosen.len() < n {
            match take(&|_| true, &mut remaining, rng) {
                Some(x) => chosen.push(x),
                None => break,
            }
        }
        chosen
    }

    fn box_clone(&self) -> Box<dyn PlacementPolicy> {
        Box::new(*self)
    }
}

/// MOON-style anchor placement: the first replica is pinned to a
/// dedicated *anchor* site (nodes that are never preempted), the rest
/// spread site-aware over the opportunistic pool. Models Lin et al.'s
/// MOON, which the paper contrasts with HOG in §V: data durability comes
/// from the anchor, so the opportunistic replication factor can stay low,
/// but the anchor's capacity and bandwidth bound the system.
#[derive(Clone, Copy, Debug)]
pub struct AnchorFirstPolicy {
    /// The dedicated anchor site.
    pub anchor: SiteId,
}

impl PlacementPolicy for AnchorFirstPolicy {
    fn name(&self) -> &'static str {
        "anchor-first"
    }

    fn choose(
        &self,
        writer: Option<NodeId>,
        n: usize,
        existing: &[(NodeId, SiteId)],
        candidates: &[Candidate],
        rng: &mut SimRng,
    ) -> Vec<NodeId> {
        if n == 0 || candidates.is_empty() {
            return Vec::new();
        }
        let mut chosen = Vec::with_capacity(n);
        let anchor_has_replica = existing.iter().any(|&(_, s)| s == self.anchor);
        if !anchor_has_replica {
            // Pin one replica to the emptiest anchor node.
            let mut anchors: Vec<&Candidate> = candidates
                .iter()
                .filter(|c| c.site == self.anchor)
                .collect();
            anchors.sort_by_key(|c| (std::cmp::Reverse(c.free), c.node));
            if let Some(a) = anchors.first() {
                chosen.push(a.node);
            }
        }
        // Remaining replicas: site-aware spread over non-anchor nodes.
        let rest: Vec<Candidate> = candidates
            .iter()
            .filter(|c| c.site != self.anchor && !chosen.contains(&c.node))
            .copied()
            .collect();
        let mut existing_rest: Vec<(NodeId, SiteId)> = existing.to_vec();
        for &c in &chosen {
            existing_rest.push((c, self.anchor));
        }
        let more = SiteAwarePolicy.choose(
            writer,
            n.saturating_sub(chosen.len()),
            &existing_rest,
            &rest,
            rng,
        );
        chosen.extend(more);
        chosen.truncate(n);
        chosen
    }

    fn box_clone(&self) -> Box<dyn PlacementPolicy> {
        Box::new(*self)
    }
}

/// Uniform random placement, ignoring topology entirely (ablation).
#[derive(Clone, Copy, Debug, Default)]
pub struct RackObliviousPolicy;

impl PlacementPolicy for RackObliviousPolicy {
    fn name(&self) -> &'static str {
        "rack-oblivious"
    }

    fn choose(
        &self,
        _writer: Option<NodeId>,
        n: usize,
        _existing: &[(NodeId, SiteId)],
        candidates: &[Candidate],
        rng: &mut SimRng,
    ) -> Vec<NodeId> {
        let mut pool: Vec<NodeId> = candidates.iter().map(|c| c.node).collect();
        rng.shuffle(&mut pool);
        pool.truncate(n);
        pool
    }

    fn box_clone(&self) -> Box<dyn PlacementPolicy> {
        Box::new(*self)
    }
}

/// Restrict `candidates` to stable sites when placing availability-
/// boosted *extra* copies (Trua-style targets above the birth target):
/// an extra copy parked on a churn-prone site would be preempted before
/// it earns its bytes. Falls back to the full set when no candidate
/// sits on a stable site — durability first, placement preference
/// second. Relative candidate order is preserved, so downstream policy
/// choices stay deterministic.
pub fn stable_first<F: Fn(SiteId) -> bool>(candidates: Vec<Candidate>, is_stable: F) -> Vec<Candidate> {
    if candidates.iter().any(|c| is_stable(c.site)) {
        candidates.into_iter().filter(|c| is_stable(c.site)).collect()
    } else {
        candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    /// `sites` nodes spread round-robin over `n_sites` sites.
    fn cluster(n_nodes: u32, n_sites: u16) -> Vec<Candidate> {
        (0..n_nodes)
            .map(|i| Candidate {
                node: NodeId(i),
                site: SiteId((i % n_sites as u32) as u16),
                free: 1_000_000,
            })
            .collect()
    }

    fn sites_of(chosen: &[NodeId], cands: &[Candidate]) -> Vec<SiteId> {
        chosen
            .iter()
            .map(|&n| cands.iter().find(|c| c.node == n).unwrap().site)
            .collect()
    }

    #[test]
    fn site_aware_prefers_writer_first() {
        let cands = cluster(20, 5);
        let mut rng = SimRng::seed_from_u64(1);
        let chosen = SiteAwarePolicy.choose(Some(NodeId(7)), 3, &[], &cands, &mut rng);
        assert_eq!(chosen[0], NodeId(7));
        assert_eq!(chosen.len(), 3);
    }

    #[test]
    fn site_aware_spreads_across_sites() {
        let cands = cluster(25, 5);
        let mut rng = SimRng::seed_from_u64(2);
        let chosen = SiteAwarePolicy.choose(None, 5, &[], &cands, &mut rng);
        let mut sites = sites_of(&chosen, &cands);
        sites.sort();
        sites.dedup();
        assert_eq!(sites.len(), 5, "5 replicas over 5 sites must use all 5");
    }

    #[test]
    fn site_aware_ten_replicas_balance_sites() {
        // Replication 10 over 5 sites: exactly 2 per site.
        let cands = cluster(50, 5);
        let mut rng = SimRng::seed_from_u64(3);
        let chosen = SiteAwarePolicy.choose(None, 10, &[], &cands, &mut rng);
        assert_eq!(chosen.len(), 10);
        let sites = sites_of(&chosen, &cands);
        for s in 0..5u16 {
            let k = sites.iter().filter(|&&x| x == SiteId(s)).count();
            assert_eq!(k, 2, "site {s} should hold 2 of 10 replicas");
        }
    }

    #[test]
    fn site_aware_rereplication_avoids_loaded_sites() {
        let cands: Vec<Candidate> = cluster(20, 4)
            .into_iter()
            .filter(|c| c.node != NodeId(0))
            .collect();
        // Existing replicas pile on sites 0 and 1.
        let existing = vec![
            (NodeId(0), SiteId(0)),
            (NodeId(100), SiteId(0)),
            (NodeId(101), SiteId(1)),
        ];
        let mut rng = SimRng::seed_from_u64(4);
        let chosen = SiteAwarePolicy.choose(None, 2, &existing, &cands, &mut rng);
        let sites = sites_of(&chosen, &cands);
        assert!(sites.contains(&SiteId(2)));
        assert!(sites.contains(&SiteId(3)));
    }

    #[test]
    fn site_aware_prefers_empty_nodes_within_site() {
        let mut cands = cluster(10, 1);
        for (i, c) in cands.iter_mut().enumerate() {
            c.free = (i as u64) * 100; // node 9 is emptiest
        }
        let mut rng = SimRng::seed_from_u64(5);
        let chosen = SiteAwarePolicy.choose(None, 1, &[], &cands, &mut rng);
        assert_eq!(chosen, vec![NodeId(9)]);
    }

    #[test]
    fn rack_aware_classic_pattern() {
        let cands = cluster(30, 3);
        let mut rng = SimRng::seed_from_u64(6);
        let chosen = RackAwarePolicy.choose(Some(NodeId(0)), 3, &[], &cands, &mut rng);
        assert_eq!(chosen.len(), 3);
        assert_eq!(chosen[0], NodeId(0));
        let s = sites_of(&chosen, &cands);
        assert_ne!(s[0], s[1], "replica 2 on a different rack");
        assert_eq!(s[1], s[2], "replica 3 on the same rack as replica 2");
        assert_ne!(chosen[1], chosen[2]);
    }

    #[test]
    fn rack_aware_single_site_degenerates_gracefully() {
        let cands = cluster(10, 1);
        let mut rng = SimRng::seed_from_u64(7);
        let chosen = RackAwarePolicy.choose(Some(NodeId(2)), 3, &[], &cands, &mut rng);
        assert_eq!(chosen.len(), 3);
        let mut c = chosen.clone();
        c.dedup();
        assert_eq!(c.len(), 3, "distinct nodes even in one rack");
    }

    #[test]
    fn anchor_first_pins_one_replica() {
        let cands = cluster(20, 4); // site 0 is the anchor
        let policy = AnchorFirstPolicy { anchor: SiteId(0) };
        let mut rng = SimRng::seed_from_u64(17);
        let chosen = policy.choose(None, 3, &[], &cands, &mut rng);
        assert_eq!(chosen.len(), 3);
        let sites = sites_of(&chosen, &cands);
        assert_eq!(
            sites.iter().filter(|&&s| s == SiteId(0)).count(),
            1,
            "exactly one anchor replica: {sites:?}"
        );
    }

    #[test]
    fn anchor_first_skips_anchor_when_already_covered() {
        let cands: Vec<Candidate> = cluster(20, 4)
            .into_iter()
            .filter(|c| c.site != SiteId(0))
            .collect();
        let policy = AnchorFirstPolicy { anchor: SiteId(0) };
        let mut rng = SimRng::seed_from_u64(18);
        // Re-replication with the anchor already holding a copy.
        let existing = vec![(NodeId(100), SiteId(0))];
        let chosen = policy.choose(None, 2, &existing, &cands, &mut rng);
        assert_eq!(chosen.len(), 2);
        let sites = sites_of(&chosen, &cands);
        assert!(sites.iter().all(|&s| s != SiteId(0)));
    }

    #[test]
    fn anchor_first_survives_empty_anchor() {
        // No anchor nodes available: all replicas go opportunistic.
        let cands: Vec<Candidate> = cluster(12, 3)
            .into_iter()
            .map(|mut c| {
                c.site = SiteId(c.site.0 + 1); // sites 1..3, no site 0
                c
            })
            .collect();
        let policy = AnchorFirstPolicy { anchor: SiteId(0) };
        let mut rng = SimRng::seed_from_u64(19);
        let chosen = policy.choose(None, 3, &[], &cands, &mut rng);
        assert_eq!(chosen.len(), 3);
    }

    #[test]
    fn oblivious_ignores_writer() {
        let cands = cluster(100, 5);
        let mut hits = 0;
        for seed in 0..50 {
            let mut rng = SimRng::seed_from_u64(seed);
            let chosen = RackObliviousPolicy.choose(Some(NodeId(3)), 1, &[], &cands, &mut rng);
            if chosen[0] == NodeId(3) {
                hits += 1;
            }
        }
        assert!(hits <= 5, "writer shouldn't be systematically preferred");
    }

    #[test]
    fn all_policies_handle_tiny_clusters() {
        let cands = cluster(2, 1);
        let mut rng = SimRng::seed_from_u64(8);
        for policy in [
            &SiteAwarePolicy as &dyn PlacementPolicy,
            &RackAwarePolicy,
            &RackObliviousPolicy,
        ] {
            let chosen = policy.choose(None, 10, &[], &cands, &mut rng);
            assert_eq!(chosen.len(), 2, "{}: give what exists", policy.name());
            assert_ne!(chosen[0], chosen[1]);
        }
    }

    #[test]
    fn empty_candidates_yield_empty() {
        let mut rng = SimRng::seed_from_u64(9);
        for policy in [
            &SiteAwarePolicy as &dyn PlacementPolicy,
            &RackAwarePolicy,
            &RackObliviousPolicy,
        ] {
            assert!(policy.choose(None, 3, &[], &[], &mut rng).is_empty());
        }
    }

    #[test]
    fn stable_first_filters_and_falls_back() {
        let cands = cluster(12, 4); // sites 0..4, 3 nodes each
        // Sites 1 and 3 stable: only their nodes survive, order kept.
        let filtered = stable_first(cands.clone(), |s| s.0 % 2 == 1);
        assert_eq!(filtered.len(), 6);
        assert!(filtered.iter().all(|c| c.site.0 % 2 == 1));
        let ids: Vec<u32> = filtered.iter().map(|c| c.node.0).collect();
        let mut sorted = ids.clone();
        sorted.sort_unstable();
        assert_eq!(ids, sorted, "relative order preserved");
        // No stable site at all: full set returned unchanged.
        let fallback = stable_first(cands.clone(), |_| false);
        assert_eq!(fallback.len(), cands.len());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Every policy returns distinct nodes drawn from the candidates,
        /// never more than requested or available.
        #[test]
        fn prop_policies_return_valid_sets(
            n_nodes in 1u32..60,
            n_sites in 1u16..6,
            want in 0usize..15,
            seed in 0u64..1000,
            which in 0u8..3,
        ) {
            let cands = cluster(n_nodes, n_sites);
            let mut rng = SimRng::seed_from_u64(seed);
            let policy: &dyn PlacementPolicy = match which {
                0 => &SiteAwarePolicy,
                1 => &RackAwarePolicy,
                _ => &RackObliviousPolicy,
            };
            let chosen = policy.choose(Some(NodeId(0)), want, &[], &cands, &mut rng);
            prop_assert!(chosen.len() <= want);
            prop_assert!(chosen.len() <= cands.len());
            if want > 0 && !cands.is_empty() {
                prop_assert!(!chosen.is_empty(), "{} returned nothing", policy.name());
            }
            let mut uniq = chosen.clone();
            uniq.sort();
            uniq.dedup();
            prop_assert_eq!(uniq.len(), chosen.len(), "duplicates returned");
            for c in &chosen {
                prop_assert!(cands.iter().any(|x| x.node == *c));
            }
        }

        /// Site-aware invariant: replica counts across sites never differ
        /// by more than one when every site has spare nodes.
        #[test]
        fn prop_site_aware_balances(
            per_site in 3u32..8,
            n_sites in 2u16..6,
            want in 1usize..12,
            seed in 0u64..500,
        ) {
            let n_nodes = per_site * n_sites as u32;
            let cands = cluster(n_nodes, n_sites);
            let want = want.min(n_nodes as usize);
            let mut rng = SimRng::seed_from_u64(seed);
            let chosen = SiteAwarePolicy.choose(None, want, &[], &cands, &mut rng);
            let sites = sites_of(&chosen, &cands);
            let mut counts = vec![0usize; n_sites as usize];
            for s in sites { counts[s.0 as usize] += 1; }
            let max = *counts.iter().max().unwrap();
            let min = *counts.iter().min().unwrap();
            // Only enforce when no site ran out of candidate nodes.
            if max <= per_site as usize {
                prop_assert!(max - min <= 1, "unbalanced: {counts:?}");
            }
        }
    }
}
