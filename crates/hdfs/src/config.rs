//! HDFS configuration.

use crate::availability::AvailabilityPolicy;
use hog_sim_core::units::{GIB, MIB};
use hog_sim_core::SimDuration;

/// Tunables of the HDFS model. Two presets matter: [`HdfsConfig::hog`]
/// (replication 10, 30 s dead-node timeout — §III-B) and
/// [`HdfsConfig::stock`] (replication 3, ~10 min recheck, as on the
/// dedicated cluster).
#[derive(Clone, Debug)]
pub struct HdfsConfig {
    /// Fixed block size files are split into (64 MB in the paper).
    pub block_size: u64,
    /// Default replication factor for new files.
    pub replication: u16,
    /// Datanode heartbeat period.
    pub heartbeat_interval: SimDuration,
    /// Silence after which the namenode declares a datanode dead. The
    /// paper: "If the worker nodes do not report every 30 seconds, then the
    /// node is marked dead for both the namenode and jobtracker", versus
    /// the traditional 10+ minute recheck interval.
    pub dead_node_timeout: SimDuration,
    /// Period of the namenode's replication monitor scan.
    pub replication_monitor_interval: SimDuration,
    /// Max concurrent replication transfers a single datanode may source
    /// or sink (`dfs.max-repl-streams` analogue).
    pub max_repl_streams_per_node: u8,
    /// Max replication orders issued per monitor tick (work limiter).
    pub max_repl_orders_per_tick: usize,
    /// Disk capacity HDFS may use on each worker node.
    pub datanode_capacity: u64,
    /// Period of the zombie-fix working-directory self-check (§IV-D.1:
    /// "we add the disk availability check in service code and do the
    /// check every 3 minutes"). `None` reproduces the *first iteration* of
    /// HOG, where zombie datanodes linger.
    pub disk_check_interval: Option<SimDuration>,
    /// Trua-style per-block replication targets. `None` (the default)
    /// keeps the flat factor and is bit-identical to the pre-policy
    /// namenode.
    pub availability: Option<AvailabilityPolicy>,
    /// Rotate the replication monitor's dispatch order across ticks so
    /// a standing stream of critical (1-replica) blocks cannot starve
    /// higher buckets when the per-tick order budget runs out. Off by
    /// default to preserve the legacy lowest-bucket-first order
    /// bit-for-bit; armed automatically with the availability policy.
    pub repl_fairness: bool,
}

impl HdfsConfig {
    /// HOG settings: replication 10, 30 s failure detection, 3-minute
    /// zombie self-check.
    pub fn hog() -> Self {
        HdfsConfig {
            block_size: 64 * MIB,
            replication: 10,
            heartbeat_interval: SimDuration::from_secs(3),
            dead_node_timeout: SimDuration::from_secs(30),
            replication_monitor_interval: SimDuration::from_secs(3),
            max_repl_streams_per_node: 2,
            max_repl_orders_per_tick: 64,
            datanode_capacity: 40 * GIB,
            disk_check_interval: Some(SimDuration::from_secs(180)),
            availability: None,
            repl_fairness: false,
        }
    }

    /// Stock Hadoop 0.20 settings as used on the dedicated cluster:
    /// replication 3, ~10 minute dead-node detection.
    pub fn stock() -> Self {
        HdfsConfig {
            block_size: 64 * MIB,
            replication: 3,
            heartbeat_interval: SimDuration::from_secs(3),
            dead_node_timeout: SimDuration::from_secs(630),
            replication_monitor_interval: SimDuration::from_secs(3),
            max_repl_streams_per_node: 2,
            max_repl_orders_per_tick: 64,
            datanode_capacity: 400 * GIB,
            disk_check_interval: None,
            availability: None,
            repl_fairness: false,
        }
    }

    /// Override the replication factor (ablation X2 sweeps this 3..12).
    pub fn with_replication(mut self, r: u16) -> Self {
        self.replication = r;
        self
    }

    /// Override the dead-node timeout (ablation X1).
    pub fn with_dead_timeout(mut self, t: SimDuration) -> Self {
        self.dead_node_timeout = t;
        self
    }

    /// Override per-datanode capacity (disk-overflow experiment X4).
    pub fn with_capacity(mut self, c: u64) -> Self {
        self.datanode_capacity = c;
        self
    }

    /// Arm the Trua-style per-block availability policy. Also turns on
    /// fair replication dispatch: adaptive targets widen the bucket
    /// spread, which makes budget-induced starvation of high buckets
    /// much more likely.
    pub fn with_availability(mut self, p: AvailabilityPolicy) -> Self {
        self.availability = Some(p);
        self.repl_fairness = true;
        self
    }

    /// Arm fair (rotating) replication dispatch on its own.
    pub fn with_repl_fairness(mut self) -> Self {
        self.repl_fairness = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let hog = HdfsConfig::hog();
        assert_eq!(hog.replication, 10);
        assert_eq!(hog.dead_node_timeout, SimDuration::from_secs(30));
        assert_eq!(hog.block_size, 64 * MIB);
        assert!(hog.disk_check_interval.is_some());
        let stock = HdfsConfig::stock();
        assert_eq!(stock.replication, 3);
        assert!(stock.dead_node_timeout >= SimDuration::from_secs(600));
        assert!(stock.disk_check_interval.is_none());
    }

    #[test]
    fn builders_override() {
        let c = HdfsConfig::hog()
            .with_replication(5)
            .with_dead_timeout(SimDuration::from_secs(60))
            .with_capacity(GIB);
        assert_eq!(c.replication, 5);
        assert_eq!(c.dead_node_timeout, SimDuration::from_secs(60));
        assert_eq!(c.datanode_capacity, GIB);
    }

    #[test]
    fn availability_defaults_off_and_builder_arms_fairness() {
        assert!(HdfsConfig::hog().availability.is_none());
        assert!(!HdfsConfig::hog().repl_fairness);
        assert!(HdfsConfig::stock().availability.is_none());
        let c = HdfsConfig::hog().with_availability(AvailabilityPolicy::trua_default());
        assert!(c.availability.is_some());
        assert!(c.repl_fairness);
        assert!(HdfsConfig::hog().with_repl_fairness().repl_fairness);
    }
}
