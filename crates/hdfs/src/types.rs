//! Core identifiers and metadata records.

use hog_net::NodeId;
use std::collections::BTreeSet;

/// A file in the (flat) HDFS namespace.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u32);

/// A fixed-size data block. Ids are dense per-namenode.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockId(pub u64);

/// Namespace record for one file.
#[derive(Clone, Debug)]
pub struct FileMeta {
    /// Path (flat namespace; HDFS directory semantics are irrelevant to
    /// the paper's experiments).
    pub path: String,
    /// Block list in file order.
    pub blocks: Vec<BlockId>,
    /// Target replication factor for this file's blocks.
    pub replication: u16,
    /// Whether the writer has completed the file.
    pub complete: bool,
}

/// Block record: size, location set and the replication target inherited
/// from its file.
#[derive(Clone, Debug)]
pub struct BlockMeta {
    /// Owning file.
    pub file: FileId,
    /// Bytes in this block (≤ the configured block size).
    pub size: u64,
    /// Datanodes currently holding a valid replica.
    pub replicas: BTreeSet<NodeId>,
    /// Desired replica count.
    pub expected: u16,
}

impl BlockMeta {
    /// How many replicas are missing relative to target.
    pub fn deficit(&self) -> usize {
        (self.expected as usize).saturating_sub(self.replicas.len())
    }

    /// How many replicas exceed target.
    pub fn excess(&self) -> usize {
        self.replicas.len().saturating_sub(self.expected as usize)
    }

    /// A block with no replicas is *missing* — readers fail (the paper's
    /// data-availability failure under simultaneous preemption).
    pub fn is_missing(&self) -> bool {
        self.replicas.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(expected: u16, reps: &[u32]) -> BlockMeta {
        BlockMeta {
            file: FileId(0),
            size: 1,
            replicas: reps.iter().map(|&n| NodeId(n)).collect(),
            expected,
        }
    }

    #[test]
    fn deficit_and_excess() {
        assert_eq!(meta(3, &[1]).deficit(), 2);
        assert_eq!(meta(3, &[1, 2, 3]).deficit(), 0);
        assert_eq!(meta(3, &[1, 2, 3, 4, 5]).excess(), 2);
        assert_eq!(meta(3, &[1]).excess(), 0);
    }

    #[test]
    fn missing() {
        assert!(meta(3, &[]).is_missing());
        assert!(!meta(3, &[1]).is_missing());
    }
}
