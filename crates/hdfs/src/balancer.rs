//! The HDFS balancer.
//!
//! The paper: "If users want to increase the number of nodes in the HOG,
//! they can submit more Condor jobs for extra nodes. They can use the HDFS
//! balancer to balance the data distribution." The balancer plans block
//! moves from over-utilised to under-utilised datanodes until every node
//! is within a threshold of the cluster-mean utilisation.

use crate::namenode::{Namenode, ReplOrder};
use crate::types::BlockId;
use hog_net::{NodeId, Topology};
use std::collections::{BTreeSet, HashMap};

/// A planned balancer iteration: block moves (copy then delete source —
/// here compressed to a move) to bring utilisation within `threshold`,
/// plus excess-replica trims on over-utilised nodes (free space without
/// moving a byte — only non-empty when the availability policy lowered
/// per-block targets).
#[derive(Clone, Debug, Default)]
pub struct BalancerPlan {
    /// Transfers to perform, in order.
    pub moves: Vec<ReplOrder>,
    /// `(block, holder)` excess replicas to drop, in order. Applied
    /// before the moves: shedding is strictly cheaper than copying.
    pub trims: Vec<(BlockId, NodeId)>,
}

/// Compute one balancer iteration.
///
/// `threshold` is the allowed deviation from mean utilisation (Hadoop
/// default 0.10 = 10 percentage points). `max_moves` bounds the plan so
/// each iteration stays cheap, like the real balancer's bandwidth cap.
pub fn plan(nn: &Namenode, topo: &Topology, threshold: f64, max_moves: usize) -> BalancerPlan {
    // Utilisation per live datanode.
    let mut nodes: Vec<(NodeId, u64, u64)> = nn
        .datanodes()
        .filter(|(n, d)| nn.is_live(*n) && d.capacity > 0 && !d.storage_failed)
        .map(|(n, d)| (n, d.used, d.capacity))
        .collect();
    if nodes.len() < 2 {
        return BalancerPlan::default();
    }
    let total_used: u64 = nodes.iter().map(|&(_, u, _)| u).sum();
    let total_cap: u64 = nodes.iter().map(|&(_, _, c)| c).sum();
    let mean = total_used as f64 / total_cap as f64;

    let util = |used: u64, cap: u64| used as f64 / cap as f64;
    // Sort descending by utilisation: fullest first (sources), emptiest
    // last (sinks).
    nodes.sort_by(|a, b| {
        util(b.1, b.2)
            .partial_cmp(&util(a.1, a.2))
            .unwrap()
            .then(a.0.cmp(&b.0))
    });

    let mut moves = Vec::new();
    let mut used: HashMap<NodeId, u64> = nodes.iter().map(|&(n, u, _)| (n, u)).collect();
    let cap: HashMap<NodeId, u64> = nodes.iter().map(|&(n, _, c)| (n, c)).collect();
    // Blocks already scheduled to move (don't move one block twice).
    let mut moved: BTreeSet<BlockId> = BTreeSet::new();

    let over: Vec<NodeId> = nodes
        .iter()
        .filter(|&&(n, u, c)| util(u, c) > mean + threshold && n.0 < u32::MAX)
        .map(|&(n, _, _)| n)
        .collect();

    // Shed excess replicas (per-block targets lowered by the
    // availability policy) from over-utilised nodes before copying
    // anything: a trim frees the same bytes as a move at zero transfer
    // cost. Flat runs never have excess, so this plans nothing there.
    let mut trims: Vec<(BlockId, NodeId)> = Vec::new();
    let mut trimmed: HashMap<BlockId, usize> = HashMap::new();
    for &src in &over {
        if trims.len() >= max_moves {
            break;
        }
        let src_blocks: Vec<BlockId> = nn
            .datanode(src)
            .map(|d| d.blocks.iter().copied().collect())
            .unwrap_or_default();
        for b in src_blocks {
            if trims.len() >= max_moves {
                break;
            }
            if util(used[&src], cap[&src]) <= mean + threshold {
                break; // source is balanced now
            }
            let meta = nn.block(b);
            let excess = meta.excess().saturating_sub(trimmed.get(&b).copied().unwrap_or(0));
            if excess == 0 {
                continue;
            }
            trims.push((b, src));
            *trimmed.entry(b).or_default() += 1;
            *used.get_mut(&src).unwrap() -= meta.size;
        }
    }

    for src in over {
        if moves.len() >= max_moves {
            break;
        }
        let src_blocks: Vec<BlockId> = nn
            .datanode(src)
            .map(|d| d.blocks.iter().copied().collect())
            .unwrap_or_default();
        for b in src_blocks {
            if moves.len() >= max_moves {
                break;
            }
            if util(used[&src], cap[&src]) <= mean + threshold {
                break; // source is balanced now
            }
            if moved.contains(&b) {
                continue;
            }
            // Already planned to be trimmed off this node: not a move
            // source any more.
            if trims.iter().any(|&(tb, tn)| tb == b && tn == src) {
                continue;
            }
            let size = nn.block(b).size;
            // The sink: the emptiest live node that does not already hold
            // the block and has room; prefer a different node in the same
            // site to preserve the placement's site spread.
            let replica_sites: BTreeSet<_> = nn
                .block(b)
                .replicas
                .iter()
                .map(|&r| topo.site_of(r))
                .collect();
            let src_site = topo.site_of(src);
            let mut sinks: Vec<NodeId> = used
                .keys()
                .copied()
                .filter(|&n| {
                    n != src
                        && !nn.block(b).replicas.contains(&n)
                        && cap[&n].saturating_sub(used[&n]) >= size
                })
                .collect();
            // Same-site sinks keep the replica's failure-domain layout
            // identical; otherwise a site not yet holding the block is
            // fine too (it only improves spread).
            sinks.sort_by_key(|&n| {
                let same_site = topo.site_of(n) == src_site;
                let new_site = !replica_sites.contains(&topo.site_of(n));
                (
                    std::cmp::Reverse(same_site),
                    std::cmp::Reverse(new_site),
                    used[&n],
                    n,
                )
            });
            let Some(&dst) = sinks.first() else { continue };
            if util(used[&dst], cap[&dst]) >= mean {
                continue; // no under-utilised sink available
            }
            moves.push(ReplOrder {
                block: b,
                src,
                dst,
                bytes: size,
            });
            moved.insert(b);
            *used.get_mut(&src).unwrap() -= size;
            *used.get_mut(&dst).unwrap() += size;
        }
    }
    BalancerPlan { moves, trims }
}

/// Apply one completed balancer move to the namenode: the destination now
/// holds the block and the source drops it.
pub fn apply_move(nn: &mut Namenode, mv: &ReplOrder) {
    nn.repl_done(mv.block, mv.src, mv.dst, true);
    nn.report_bad_replica(mv.block, mv.src);
    // `report_bad_replica` queues re-replication if the drop made the
    // block deficient, which cannot happen here because we just added a
    // replica; the pair is a net-zero move.
}

/// Apply one planned excess trim: the holder drops its copy. Instant
/// metadata operation — no transfer, no counter noise beyond the trim
/// counter itself.
pub fn apply_trim(nn: &mut Namenode, block: BlockId, node: NodeId) {
    nn.trim_replica(block, node);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HdfsConfig;
    use crate::placement::SiteAwarePolicy;
    use hog_sim_core::{SimRng, SimTime};

    fn setup_unbalanced() -> (Namenode, Topology, Vec<NodeId>) {
        let mut topo = Topology::new();
        let site = topo.add_site("S0", "s0.edu");
        let old: Vec<NodeId> = (0..4).map(|_| topo.add_node(site)).collect();
        let cfg = HdfsConfig::hog().with_replication(2).with_capacity(1 << 30);
        let mut nn = Namenode::new(cfg, Box::new(SiteAwarePolicy), SimRng::seed_from_u64(3));
        for &n in &old {
            nn.register_datanode(SimTime::ZERO, n);
        }
        // Fill the old nodes with data.
        let f = nn.create_file_default("/data");
        for _ in 0..20 {
            let (b, t) = nn.allocate_block(f, 32 << 20, None, &topo).unwrap();
            nn.commit_block(b, &t);
        }
        nn.complete_file(f);
        // New empty nodes join (pool grew).
        let new: Vec<NodeId> = (0..4).map(|_| topo.add_node(site)).collect();
        for &n in &new {
            nn.register_datanode(SimTime::from_secs(100), n);
        }
        (nn, topo, new)
    }

    fn spread(nn: &Namenode) -> (u64, u64) {
        let used: Vec<u64> = nn
            .datanodes()
            .filter(|(n, _)| nn.is_live(*n))
            .map(|(_, d)| d.used)
            .collect();
        (*used.iter().min().unwrap(), *used.iter().max().unwrap())
    }

    #[test]
    fn balancer_moves_data_to_new_nodes() {
        let (mut nn, topo, new) = setup_unbalanced();
        let (min_before, max_before) = spread(&nn);
        assert_eq!(min_before, 0, "new nodes start empty");
        let plan = plan(&nn, &topo, 0.10, 100);
        assert!(!plan.moves.is_empty(), "unbalanced cluster needs moves");
        for mv in &plan.moves {
            apply_move(&mut nn, mv);
        }
        let (min_after, max_after) = spread(&nn);
        assert!(min_after > min_before, "new nodes received data");
        assert!(max_after <= max_before, "old nodes shed data");
        // New nodes now host blocks.
        assert!(new.iter().any(|&n| nn.datanode(n).unwrap().used > 0));
        // No block lost replicas in the process.
        assert_eq!(nn.missing_block_count(), 0);
        assert_eq!(nn.under_replicated_count(), 0);
    }

    #[test]
    fn balanced_cluster_needs_no_moves() {
        let (mut nn, topo, _) = setup_unbalanced();
        // Run the balancer to convergence first.
        for _ in 0..10 {
            let p = plan(&nn, &topo, 0.10, 100);
            if p.moves.is_empty() {
                break;
            }
            for mv in &p.moves {
                apply_move(&mut nn, mv);
            }
        }
        let p = plan(&nn, &topo, 0.10, 100);
        assert!(p.moves.is_empty(), "already balanced: {:?}", p.moves);
    }

    #[test]
    fn max_moves_bounds_plan() {
        let (nn, topo, _) = setup_unbalanced();
        let p = plan(&nn, &topo, 0.10, 3);
        assert!(p.moves.len() <= 3);
    }

    #[test]
    fn plan_trims_excess_replicas_before_moving() {
        let (mut nn, topo, _) = setup_unbalanced();
        // Lower every block's target below its replica count: the
        // balancer should shed copies from the full nodes, not move them.
        let f = nn.file_by_path("/data").unwrap();
        let blocks: Vec<BlockId> = nn.blocks_of(f).to_vec();
        for &b in &blocks {
            nn.set_block_replication(b, 1);
        }
        let p = plan(&nn, &topo, 0.10, 100);
        assert!(!p.trims.is_empty(), "excess replicas should be shed");
        let used_before = nn.total_used();
        for &(b, n) in &p.trims {
            apply_trim(&mut nn, b, n);
        }
        assert!(nn.total_used() < used_before);
        // Never trimmed below target.
        for &b in &blocks {
            assert!(!nn.block(b).replicas.is_empty());
        }
        assert_eq!(nn.missing_block_count(), 0);
        // Flat runs (no lowered targets) plan no trims.
        let (nn2, topo2, _) = setup_unbalanced();
        assert!(plan(&nn2, &topo2, 0.10, 100).trims.is_empty());
    }

    #[test]
    fn single_node_cluster_has_no_plan() {
        let mut topo = Topology::new();
        let site = topo.add_site("S0", "s0.edu");
        let n = topo.add_node(site);
        let cfg = HdfsConfig::hog().with_replication(1);
        let mut nn = Namenode::new(cfg, Box::new(SiteAwarePolicy), SimRng::seed_from_u64(1));
        nn.register_datanode(SimTime::ZERO, n);
        assert!(plan(&nn, &topo, 0.1, 10).moves.is_empty());
    }
}
